"""Legacy setup shim: lets ``pip install -e .`` work without the ``wheel``
package in offline environments (PEP 660 editable installs need it)."""

from setuptools import setup

setup()
