#!/usr/bin/env python
"""Figure 1: finding the dining-philosophers livelock.

The philosophers acquire their first fork, *try* the second, and release
and retry on failure.  The retry cycle in which everyone acquires, fails
and releases in lockstep is a *fair* cycle — every thread keeps running —
so no amount of plain depth-bounded search can call it an error.  The
fair scheduler generates it in the limit and the checker reports a
livelock with the cycle in the trace.

Run:  python examples/dining_philosophers.py
"""

from repro import Checker, format_trace
from repro.workloads.dining import (
    dining_philosophers,
    dining_philosophers_livelock,
)


def main():
    print("=== Figure 1 program (all philosophers try-and-retry) ===")
    checker = Checker(dining_philosophers_livelock(2), depth_bound=400)
    result = checker.run()
    assert not result.ok
    livelock = result.livelock
    print(f"verdict: {livelock.divergence}")
    print("\nthe livelock cycle (last transitions of the divergent run):")
    print(format_trace(livelock.trace, limit=12))

    print("\n=== Harnessed variant (one blocking philosopher) ===")
    result = Checker(dining_philosophers(2), depth_bound=400,
                     collect_coverage=True).run()
    print(f"fair search explored {result.exploration.executions} executions,"
          f" covered {result.exploration.states_covered} states: "
          f"{'PASS' if result.ok else 'FAIL'}")
    assert result.ok


if __name__ == "__main__":
    main()
