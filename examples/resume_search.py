#!/usr/bin/env python
"""Resilience: interrupt a search, then resume it from its checkpoint.

A long CHESS run must survive Ctrl-C and machine reboots: with
``checkpoint_path`` set, the checker periodically snapshots the search
frontier plus the aggregated results, and ``run(resume_from=...)``
continues exactly where the interrupted search stopped.  Because
executions are deterministic, the resumed search produces the *same*
totals as an uninterrupted one.

This script stands in for the operator's Ctrl-C programmatically: a
listener requests a graceful stop after a few executions (exactly what
the SIGINT handler does), then a second checker resumes from the flushed
checkpoint.  The same flow from the CLI:

    python -m repro check repro.workloads.dining:dining_philosophers \\
        -a 2 --checkpoint search.ckpt --checkpoint-interval 100
    # Ctrl-C ... then:
    python -m repro check repro.workloads.dining:dining_philosophers \\
        -a 2 --checkpoint search.ckpt --resume

Run:  python examples/resume_search.py
"""

import tempfile
from pathlib import Path

from repro import Checker
from repro.engine.strategies import DfsStrategy
from repro.resilience import (
    ResilienceController,
    ResilienceOptions,
    load_checkpoint,
)
from repro.core.policies import fair_policy
from repro.engine.executor import ExecutorConfig
from repro.workloads.dining import dining_philosophers

INTERRUPT_AFTER = 9


def main():
    config = ExecutorConfig(depth_bound=300)
    ckpt = Path(tempfile.mkdtemp()) / "search.ckpt"

    # Reference: the uninterrupted search.
    reference = Checker(dining_philosophers(2), depth_bound=300,
                        handle_signals=False).run()
    ref = reference.exploration
    print(f"uninterrupted: {ref.executions} executions, "
          f"{ref.transitions} transitions, complete={ref.complete}")

    # Interrupted run: a listener plays the operator and requests a
    # graceful stop mid-search (SIGINT does the same through run()).
    controller = ResilienceController(
        ResilienceOptions(checkpoint_path=ckpt, checkpoint_interval=5),
        program=dining_philosophers(2), policy_name="fair", config=config,
    )
    seen = [0]

    def press_ctrl_c(record):
        seen[0] += 1
        if seen[0] >= INTERRUPT_AFTER:
            controller.request_stop("SIGINT")

    partial = DfsStrategy(dining_philosophers(2), fair_policy(), config,
                          listener=press_ctrl_c,
                          resilience=controller).explore()
    print(f"interrupted:   {partial.executions} executions, "
          f"stop_reason={partial.stop_reason!r}, checkpoint at {ckpt.name}")
    assert partial.stop_reason == "interrupted"

    # Resume: a fresh checker continues from the snapshot.
    resumed = Checker(dining_philosophers(2), depth_bound=300,
                      handle_signals=False).run(resume_from=str(ckpt))
    res = resumed.exploration
    print(f"resumed:       {res.executions} executions, "
          f"{res.transitions} transitions, complete={res.complete}")

    assert (res.executions, res.transitions) == (ref.executions,
                                                 ref.transitions)
    print("resumed search matches the uninterrupted one exactly")

    # The checkpoint itself is plain (versioned) JSON.
    payload = load_checkpoint(ckpt)
    print(f"checkpoint: format={payload['format']} "
          f"strategy={payload['strategy']} "
          f"executions={payload['state']['aggregator']['executions']}")


if __name__ == "__main__":
    main()
