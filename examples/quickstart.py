#!/usr/bin/env python
"""Quickstart: check your first concurrent program.

Write thread bodies as generator functions that ``yield from`` the
instrumented sync API, wrap them in a :class:`~repro.VMProgram`, and hand
the program to the :class:`~repro.Checker`.  The checker systematically
explores thread interleavings under the paper's fair scheduler and
reports safety violations, deadlocks, livelocks and good-samaritan
violations with replayable schedules.

Run:  python examples/quickstart.py
"""

from repro import Checker, VMProgram, sync


def make_broken_counter():
    """Two threads increment a shared counter without holding the lock
    consistently — a classic lost-update race."""

    def setup(env):
        lock = sync.Mutex(name="lock")
        counter = sync.SharedVar(0, name="counter")

        def safe_increment():
            yield from lock.acquire()
            value = yield from counter.get()
            yield from counter.set(value + 1)
            yield from lock.release()

        def racy_increment():  # forgets the lock!
            value = yield from counter.get()
            yield from counter.set(value + 1)

        def auditor(workers):
            for worker in workers:
                yield from sync.join(worker)
            sync.check((yield from counter.get()) == 2,
                       "an increment was lost")

        workers = [
            env.spawn(safe_increment, name="safe"),
            env.spawn(racy_increment, name="racy"),
        ]
        env.spawn(auditor, workers, name="auditor")

    return VMProgram(setup, name="broken-counter")


def main():
    result = Checker(make_broken_counter()).run()
    print(result.report())
    assert not result.ok, "the checker should find the lost update"

    record = result.violation
    print("\nThe failing schedule can be replayed deterministically:")
    print(f"  schedule = {record.schedule}")


if __name__ == "__main__":
    main()
