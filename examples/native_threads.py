#!/usr/bin/env python
"""Checking real OS threads (the CHESS execution model).

Thread bodies here are plain Python functions running on real
``threading.Thread`` instances; the runtime serializes them with
per-thread handshakes (the GIL makes this cheap and exact), so the full
fair stateless search applies unchanged — systematic schedules,
replayable counterexamples, livelock detection, everything.

Run:  python examples/native_threads.py
"""

from repro import Checker
from repro.runtime.native import (
    NativeMutex,
    NativeProgram,
    NativeSharedVar,
    join,
    yield_now,
)


def make_bank_transfer(locked: bool):
    """Two accounts, two concurrent transfers; the unlocked variant loses
    money on the right interleaving."""

    def setup(env):
        lock = NativeMutex(name="ledger")
        accounts = NativeSharedVar((100, 100), name="accounts")

        def transfer(src, dst, amount):
            if locked:
                lock.acquire()
            balances = list(accounts.get())
            balances[src] -= amount
            balances[dst] += amount
            accounts.set(tuple(balances))
            if locked:
                lock.release()

        workers = [
            env.spawn(transfer, 0, 1, 30, name="t0->1"),
            env.spawn(transfer, 1, 0, 10, name="t1->0"),
        ]

        def auditor():
            from repro.runtime.errors import AssertionViolation

            for worker in workers:
                join(worker)
            final = accounts.peek()
            if final != (80, 120):
                raise AssertionViolation(
                    f"a transfer was lost: balances {final}, "
                    f"expected (80, 120)"
                )

        env.spawn(auditor, name="auditor")
        env.set_state_fn(lambda: (accounts.peek(), lock.owner_name()))

    label = "locked" if locked else "racy"
    return NativeProgram(setup, name=f"bank-{label}")


def main():
    print("=== racy transfers on real threads ===")
    checker = Checker(make_bank_transfer(locked=False), depth_bound=200)
    result = checker.run()
    assert not result.ok
    print(f"found after {result.exploration.first_violation_execution} "
          f"schedules: {result.violation.violation}")
    replayed = checker.replay(result.violation)
    print(f"replayed deterministically across real threads: "
          f"{replayed.violation}")

    print("\n=== with the ledger lock ===")
    result = Checker(make_bank_transfer(locked=True), depth_bound=200).run()
    print(f"{result.exploration.executions} schedules: "
          f"{'PASS' if result.ok else 'FAIL'}")
    assert result.ok


if __name__ == "__main__":
    main()
