#!/usr/bin/env python
"""Figure 8: the Promise stale-read livelock.

The optimized consumer caches the completion flag in a local and spins on
the *stale copy* — with a polite ``Sleep(1)`` in the loop.  Because the
spin yields, the divergence is a fair execution: only a checker that can
distinguish fair from unfair divergence (Theorem 1) can call this a bug
rather than scheduler noise.

Run:  python examples/promise_livelock.py
"""

from repro import Checker, format_trace
from repro.workloads.promise import promise_program


def main():
    print("=== correct promise library ===")
    result = Checker(promise_program(1), depth_bound=300,
                     max_executions=2000).run()
    print(f"{result.exploration.executions} executions: "
          f"{'PASS' if result.ok else 'FAIL'}")
    assert result.ok

    print("\n=== Figure 8 bug: spin on a stale local copy ===")
    result = Checker(promise_program(2, stale_read_bug=True),
                     depth_bound=300).run()
    assert not result.ok
    livelock = result.livelock
    print(f"verdict: {livelock.divergence}")
    print("\nthe spinning suffix (note the yielding sleeps — the loop is "
          "a good samaritan, yet stuck):")
    print(format_trace(livelock.trace, limit=10))


if __name__ == "__main__":
    main()
