#!/usr/bin/env python
"""Section 4.1's headline result, in miniature: boot an OS under the
checker.

The mini-Singularity kernel boots services in dependency order (spin
loops on ready flags), runs channel-based IPC between application
processes and the IO manager, and shuts down in reverse order — all of it
nonterminating without fairness, none of it modified for the checker.
An ``EventuallyMonitor`` states the boot-progress liveness property.

Run:  python examples/singularity_boot.py
"""

from repro import Checker
from repro.workloads.singularity import singularity_boot


def main():
    print("=== 25 random fair boots (3 apps, 2 IPC requests each) ===")
    result = Checker(singularity_boot(apps=3, requests_per_app=2),
                     strategy="random", random_executions=25,
                     depth_bound=20_000).run()
    stats = result.exploration
    print(f"{stats.executions} boots, {stats.transitions} transitions, "
          f"{'all clean' if result.ok else 'FAILURES'}")
    assert result.ok

    print("\n=== systematic search, context bound 1 (1 app) ===")
    result = Checker(singularity_boot(apps=1), depth_bound=800,
                     preemption_bound=1, max_executions=3000).run()
    print(f"{result.exploration.executions} schedules explored: "
          f"{'PASS' if result.ok else 'FAIL'}")
    assert result.ok

    print("\nBefore fair scheduling, a program like this had to be "
          "manually\nrewritten to terminate under all schedules — "
          "'several weeks' per\nprogram, per the paper. Here it runs "
          "unmodified.")


if __name__ == "__main__":
    main()
