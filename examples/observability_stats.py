#!/usr/bin/env python
"""Observability: watch the checker find Figure 1's livelock.

Attaches an :class:`~repro.Observer` to the checker and prints the
telemetry the search produced: where the wall time went (phase timers),
what the search did (metrics), and the event narrative of the failing
execution.  The same data is available from the CLI:

    python -m repro check repro.workloads.dining:dining_philosophers_livelock \\
        -a 2 --stats --metrics-json metrics.json

Run:  python examples/observability_stats.py
"""

from repro import Checker
from repro.obs import CollectingSink, DivergenceClassified, Observer
from repro.workloads.dining import dining_philosophers_livelock


def main():
    sink = CollectingSink()
    observer = Observer(sink=sink)
    result = Checker(dining_philosophers_livelock(2), depth_bound=400,
                     observer=observer).run()

    print(f"verdict: {'PASS' if result.ok else 'FAIL'}")
    print()
    print(observer.summary())
    print()

    # The event stream doubles as a narrative of the search.  Pull out
    # the classification of the divergence the fair scheduler exposed.
    [classified] = sink.of_type(DivergenceClassified)
    print(f"execution {classified.execution} diverged: {classified.kind}")
    print(f"  culprits: {', '.join(classified.culprits)}")
    print(f"  {classified.detail}")

    # A taste of the numbers the registry tracked: how much the fair
    # policy constrained scheduling, per decision.
    hist = observer.metrics.histogram("schedulable_set_size")
    print()
    print(f"schedulable threads per decision: mean {hist.mean:.2f} "
          f"(min {hist.min}, max {hist.max})")


if __name__ == "__main__":
    main()
