#!/usr/bin/env python
"""Figure 7: the worker pool's good-samaritan violation.

During shutdown there is a window where the worker group's stop flag is
set but the worker's own flag is not; the worker then spins through its
outer loop without ever yielding, burning its time slice and starving
the very thread that would stop it.  Not a hang, not a crash — a
performance bug only the good-samaritan rule can name.

Run:  python examples/good_samaritan_worker_pool.py
"""

from repro import Checker, format_trace
from repro.workloads.workerpool import worker_pool


def main():
    print("=== buggy pool (Idle returns without yielding on stop) ===")
    result = Checker(worker_pool(tasks=1, workers=1), depth_bound=300).run()
    assert not result.ok
    violation = result.gs_violation
    print(f"verdict: {violation.divergence}")
    print("\nthe non-yielding spin (tail of the divergent run):")
    print(format_trace(violation.trace, limit=10))

    print("\n=== fixed pool (yield on the idle stop path) ===")
    result = Checker(worker_pool(tasks=1, workers=1, fixed=True),
                     depth_bound=300, max_executions=4000).run()
    print(f"{result.exploration.executions} executions: "
          f"{'PASS' if result.ok else 'FAIL'}")
    assert result.ok


if __name__ == "__main__":
    main()
