#!/usr/bin/env python
"""Checking the work-stealing queue (Cilk THE protocol).

The correct protocol passes a context-bounded systematic search; seeding
the Table 3 bugs makes the checker produce counterexample schedules in
seconds.  Bug 1 — reading ``head`` before publishing the decremented
``tail`` — needs a steal serialized *inside* the owner's pop, an
interleaving stress testing essentially never hits.

Run:  python examples/work_stealing.py
"""

from repro import Checker, format_trace
from repro.workloads.wsq import work_stealing_queue


def main():
    print("=== correct protocol, context bound 1 (exhaustive) ===")
    result = Checker(work_stealing_queue(items=1, stealers=1),
                     depth_bound=400, preemption_bound=1).run()
    print(f"{result.exploration.executions} executions: "
          f"{'PASS' if result.ok else 'FAIL'}")
    assert result.ok

    print("\n=== bug 1: missing publication order in Pop ===")
    checker = Checker(work_stealing_queue(items=1, stealers=1, bug=1),
                      depth_bound=400, preemption_bound=2)
    result = checker.run()
    assert result.violation is not None
    print(f"found after {result.exploration.first_violation_execution} "
          f"executions: {result.violation.violation}")
    print("\ncounterexample (tail of the schedule):")
    print(format_trace(result.violation.trace, limit=14))
    print(f"\nreplay schedule: {result.violation.schedule}")

    # Reproduce it deterministically.
    replayed = checker.replay(result.violation)
    assert str(replayed.violation) == str(result.violation.violation)
    print("replayed: same violation reproduced ✓")


if __name__ == "__main__":
    main()
