#!/usr/bin/env python
"""Checking a cache-coherence protocol — and finding a livelock in it
both dynamically and statically.

Section 2 of the paper names coherence protocols as systems "designed to
run forever", made checkable by a harness that bounds the external
requests.  This example checks a snooping MSI protocol:

1. the correct protocol passes a systematic search (single-writer and
   value-coherence invariants hold on every explored state);
2. a "polite" upgrade variant — writers that back off when they see a
   concurrent write intent — livelocks, found by the fair scheduler;
3. the same livelock is found *statically*: the fair cycles of the
   extracted state graph (`find_livelock_candidates`) are exactly the
   livelock witnesses of Theorem 6.

Run:  python examples/cache_coherence.py
"""

from repro import Checker
from repro.statespace import find_livelock_candidates
from repro.workloads.coherence import coherence_program

WRITERS = [[("w", 10)], [("w", 20)]]


def main():
    print("=== correct MSI protocol, systematic search ===")
    result = Checker(coherence_program(), depth_bound=300,
                     preemption_bound=2, max_executions=8000).run()
    print(f"{result.exploration.executions} schedules: "
          f"{'PASS' if result.ok else 'FAIL'}")
    assert result.ok

    print("\n=== polite-upgrade variant (dynamic check) ===")
    result = Checker(coherence_program(WRITERS, bug="upgrade-livelock"),
                     depth_bound=300).run()
    assert not result.ok
    print(f"verdict: {result.livelock.divergence}")

    print("\n=== the same defect, statically ===")
    candidates = find_livelock_candidates(
        coherence_program(WRITERS, bug="upgrade-livelock"),
        depth_bound=300,
    )
    shortest = min(candidates, key=len)
    print(f"{len(candidates)} fair cycles in the state graph; "
          f"shortest has {len(shortest)} transitions:")
    print("  " + " -> ".join(tid for _, tid in shortest))

    clean = find_livelock_candidates(coherence_program(WRITERS),
                                     depth_bound=300)
    print(f"\ncorrect protocol's graph has {len(clean)} fair cycles — "
          f"fair-terminating, as the checker concluded dynamically.")
    assert not clean


if __name__ == "__main__":
    main()
