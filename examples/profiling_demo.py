#!/usr/bin/env python
"""Profiling: where does the search spend its time?

Runs one counted DFS sweep with the deep-profiling layer attached and
shows the three views docs/profiling.md describes:

* the decision-tree cost profile — which choice-tree prefixes burn the
  wall clock (exported as folded stacks for flamegraph.pl/speedscope);
* the span timeline — what the process was doing and when (exported as
  Chrome trace-event JSON for Perfetto / chrome://tracing);
* the snapshot-cache amortization report — does the prefix cache pay
  for itself on this workload?

The same data is available from the CLI:

    python -m repro check repro.workloads.dining:dining_philosophers \\
        -a 2 --profile-out profile.folded --chrome-trace trace.json
    python -m repro profile snapshots

Run:  python examples/profiling_demo.py
"""

import json
import tempfile

from repro import Checker
from repro.obs import Observer
from repro.obs.profile import (
    DecisionProfiler,
    format_snapshot_report,
    snapshot_amortization,
    write_chrome_trace,
)
from repro.workloads.boundedbuffer import bounded_buffer_program
from repro.workloads.dining import dining_philosophers


def main():
    profiler = DecisionProfiler()
    observer = Observer(profiler=profiler)
    result = Checker(dining_philosophers(2), depth_bound=300,
                     stop_on_first_violation=False,
                     stop_on_first_divergence=False,
                     handle_signals=False,
                     observer=observer).run()
    print(f"verdict: {'PASS' if result.ok else 'FAIL'} "
          f"({result.exploration.executions} executions)")

    print("\nhottest decision prefixes (subtree seconds):")
    for prefix, seconds in profiler.hottest(5):
        frames = "root" + "".join(f";{i}" for i in prefix)
        print(f"  {frames:<24} {seconds * 1e3:8.2f}ms")

    with tempfile.NamedTemporaryFile(suffix=".folded", delete=False) as f:
        folded_path = f.name
    with open(folded_path, "w", encoding="utf-8") as f:
        f.write(profiler.to_folded())
    print(f"\nfolded stacks written to {folded_path}")
    print("  render: flamegraph.pl " + folded_path + " > profile.svg")

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as f:
        trace_path = f.name
    write_chrome_trace(trace_path, observer.spans.spans,
                       timers=observer.timers.to_dict(),
                       lane_names=observer.spans.lane_names)
    with open(trace_path, encoding="utf-8") as f:
        events = len(json.load(f)["traceEvents"])
    print(f"chrome trace ({events} events) written to {trace_path}")
    print("  open in https://ui.perfetto.dev or chrome://tracing")

    print("\n" + "=" * 60)
    report = snapshot_amortization(
        lambda: bounded_buffer_program(items=2, consumers=2),
        max_executions=80)
    print(format_snapshot_report(report))


if __name__ == "__main__":
    main()
