#!/usr/bin/env python
"""Checking arbitrary liveness properties (the paper's future work, §6).

Beyond fair termination and the good-samaritan rule, the library ships
temporal monitors for **response** properties (``GF trigger ⇒ GF
response``) and **eventuality** (``F goal``), judged on the suffix of
divergent executions.  This example states "every request posted to the
queue is eventually served" over a tiny server and shows the monitor
firing when the server has a starvation bug.

Run:  python examples/temporal_properties.py
"""

from repro import Checker, VMProgram, sync
from repro.engine.liveness import ResponseMonitor


def make_server(serve_all: bool):
    """A server draining a request channel; with ``serve_all=False`` it
    only serves even-numbered requests and spins past the others."""

    def setup(env):
        requests = sync.Channel(name="requests")
        served = []

        def client():
            for i in range(4):
                yield from requests.send(i)

        def server():
            while True:
                ok, request = yield from requests.try_recv()
                if ok:
                    if serve_all or request % 2 == 0:
                        served.append(request)
                    else:
                        # Bug: re-queue odd requests forever.
                        yield from requests.send(request)
                yield from sync.yield_now()

        env.spawn(client, name="client")
        env.spawn(server, name="server")
        env.add_temporal_monitor(ResponseMonitor(
            trigger=lambda: requests.size() > 0,
            response=lambda: requests.size() == 0,
            name="queue-eventually-drains",
            min_occurrences=16,
        ))

    return VMProgram(setup, name=f"server(serve_all={serve_all})")


def main():
    print("=== starving server (odd requests re-queued forever) ===")
    result = Checker(make_server(serve_all=False), depth_bound=400).run()
    assert not result.ok
    print(f"verdict: {result.divergence.divergence}")

    print("\n=== correct server ===")
    # The correct server still loops forever (servers do); the response
    # property holds on its divergent suffix, so the remaining divergence
    # is reported as what it is.
    result = Checker(make_server(serve_all=True), depth_bound=400,
                     max_executions=500).run()
    first = result.divergence
    if first is not None:
        print(f"divergence classified as: {first.divergence.kind.value}")
        assert "temporal" not in first.divergence.kind.value
    print("the response property held on every explored divergence ✓")


if __name__ == "__main__":
    main()
