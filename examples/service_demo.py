#!/usr/bin/env python
"""Checking as a service: async jobs + inter-job fair scheduling.

A `CheckServer` fronts a small worker fleet with a job API: submit a
program + config, get a durable job id, poll/stream/cancel it.  A
deficit-weighted round-robin scheduler slices the fleet across all
live jobs in execution-budget quanta, so the quick `smoke` check below
finishes while the huge `bulk` sweep is still grinding — and the
scheduler *measures* starvation-freedom rather than assuming it.

The same flow from the CLI:

    python -m repro serve --data-dir /tmp/svc --fleet 2 &
    python -m repro job submit --data-dir /tmp/svc \\
        repro.workloads.dining:dining_philosophers -a 2 \\
        --config strategy="'dfs'" --priority smoke --wait

Run:  python examples/service_demo.py
"""

import tempfile

from repro.service import CheckServer, JobSpec

#: An effectively endless background sweep: the bug-free work-stealing
#: queue has a six-digit dfs space; the cap keeps it saturated for the
#: whole demo without ever finishing.
BULK_SWEEP = JobSpec(
    program="repro.workloads.wsq:work_stealing_queue",
    factory_args=["1", "1"],
    config={"strategy": "dfs", "max_executions": 100_000},
    priority="bulk", client="nightly")

#: A real smoke check: dining(2) under dfs completes in 42 executions.
SMOKE_CHECK = JobSpec(
    program="repro.workloads.dining:dining_philosophers",
    factory_args=["2"], config={"strategy": "dfs"},
    priority="smoke", client="dev")

#: A buggy workload: icb finds the work-stealing queue's seeded bug in
#: a couple hundred executions; the job ends `done` with verdict=fail
#: and a replayable counterexample schedule in its result payload.
BUG_HUNT = JobSpec(
    program="repro.workloads.wsq:work_stealing_queue",
    factory_args=["1", "1", "1"],
    config={"strategy": "icb"},
    priority="default", client="dev")


def main():
    server = CheckServer(tempfile.mkdtemp(), fleet=2,
                         quantum_executions=25)

    # The bulk sweep goes in first and would hog both workers forever
    # under FIFO; DWRR (smoke:default:bulk = 6:3:1) slices around it.
    bulk = server.submit(BULK_SWEEP)
    smoke = server.submit(SMOKE_CHECK)
    hunt = server.submit(BUG_HUNT)
    server.start()
    try:
        done = server.wait(smoke.id, timeout=120)
        print(f"smoke: state={done.state.value} verdict={done.verdict} "
              f"({done.executions} executions in {done.quanta} quanta)")
        assert done.verdict == "pass"

        found = server.wait(hunt.id, timeout=300)
        result = server.result(hunt.id)
        print(f"bug hunt: state={found.state.value} "
              f"verdict={found.verdict} — first violation at "
              f"execution {result['first_violation_execution']}, "
              f"repro schedule in {result['repro_file']}")
        assert found.verdict == "fail"

        # The bulk sweep is still running — it competed for the fleet
        # the whole time, it just couldn't starve anyone.
        big = server.job(bulk.id)
        print(f"bulk sweep: still {big.state.value} at "
              f"{big.executions} executions; cancelling")
        server.cancel(bulk.id)
        print(f"bulk sweep: {server.wait(bulk.id, timeout=60).state.value}")
    finally:
        server.stop()

    counters = server.metrics.to_dict()["counters"]
    print(f"fleet served {counters['scheduler.quanta']} quanta, "
          f"starvation-bound violations: "
          f"{counters.get('scheduler.starvation', 0)}")
    assert counters.get("scheduler.starvation", 0) == 0


if __name__ == "__main__":
    main()
