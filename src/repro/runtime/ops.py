"""Operation descriptors: the scheduling points of the runtime.

A task (one thread of the program under test) is a Python generator that
*yields* :class:`Operation` objects.  The virtual machine holds the pending
operation of every task, which gives the engine exactly the paper's state
predicates without executing anything:

* ``enabled(t)``  — ``task.pending.enabled(vm, task)``;
* ``yield(t)``    — ``task.pending.is_yielding(vm, task)`` (true for explicit
  processor yields / sleeps, and for waits with a finite timeout *that would
  time out now*, matching CHESS's yield inference in Section 4).

Executing a transition of ``t`` means: run ``pending.execute(vm, task)``,
then resume the generator with the produced value up to its next yield.
Synchronization-specific operations live next to their primitives in
:mod:`repro.sync`; this module defines the base class and the runtime-level
operations (spawn, join, explicit yields, data nondeterminism).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.task import Task
    from repro.runtime.vm import VirtualMachine


class Operation:
    """Base class of everything a task may yield to the scheduler."""

    __slots__ = ()

    #: Static hint: does executing this operation constitute a yield?
    yields_processor = False

    #: Name of the attribute holding the shared object this operation
    #: touches (e.g. ``"mutex"``), or the sentinel values ``None``
    #: (unknown effects — dependent with everything) and ``"local"``
    #: (touches nothing shared — independent of everything).  Consumed by
    #: the partial-order-reduction extension.
    resource_attr: "str | None" = None

    def resources(self) -> "Tuple[Any, ...] | None":
        """Identities of shared objects this operation may touch.

        ``None`` means unknown (conservatively dependent); an empty tuple
        means purely thread-local.  Two transitions of *different*
        threads are independent iff both resource sets are known and
        disjoint.
        """
        if self.resource_attr is None:
            return None
        if self.resource_attr == "local":
            return ()
        return (id(getattr(self, self.resource_attr)),)

    def enabled(self, vm: "VirtualMachine", task: "Task") -> bool:
        """May this operation execute in the current state?"""
        return True

    def is_yielding(self, vm: "VirtualMachine", task: "Task") -> bool:
        """The paper's ``yield(t)`` predicate for the current state.

        Only meaningful when :meth:`enabled` holds.  The default is the
        static :attr:`yields_processor` flag; timeout-waits override this to
        yield exactly when the wait would time out.
        """
        return self.yields_processor

    def execute(self, vm: "VirtualMachine", task: "Task") -> Any:
        """Perform the operation; the return value is sent into the task."""
        return None

    def describe(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return f"<op {self.describe()}>"


class StartOp(Operation):
    """Implicit first operation of every task.

    Tasks are created lazily: their generator is not primed at creation, so
    spawning has no side effects.  The code before the task's first real
    yield runs as part of its first transition, when the scheduler first
    picks it.
    """

    __slots__ = ()

    def describe(self) -> str:
        return "start"


class YieldOp(Operation):
    """An explicit processor yield — ``yield_now()`` or ``sleep()``.

    These are the operations Algorithm 1 keys on: a yielding transition
    closes the thread's window and may deprioritize it.
    """

    __slots__ = ("label",)
    yields_processor = True
    resource_attr = "local"

    def __init__(self, label: str = "yield") -> None:
        self.label = label

    def describe(self) -> str:
        return self.label


class PauseOp(Operation):
    """A pure scheduling point with no effect and no yield semantics.

    Used to model an interleaving point at a local action (e.g. between two
    instructions the checker should be able to preempt).
    """

    __slots__ = ("label",)
    resource_attr = "local"

    def __init__(self, label: str = "pause") -> None:
        self.label = label

    def describe(self) -> str:
        return self.label


class ChooseOp(Operation):
    """Data nondeterminism: ask the engine to pick a value in ``range(n)``.

    Verisoft-style input nondeterminism; the engine records this as a choice
    point exactly like a scheduling choice, so replay covers it.
    """

    __slots__ = ("n",)
    resource_attr = "local"

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("choose() needs at least one alternative")
        self.n = n

    def execute(self, vm: "VirtualMachine", task: "Task") -> int:
        return vm.request_data_choice(self.n)

    def describe(self) -> str:
        return f"choose({self.n})"


class CreateThreadOp(Operation):
    """Spawn a new task; evaluates to its :class:`~repro.runtime.task.Task`."""

    __slots__ = ("fn", "args", "kwargs", "name")

    def __init__(self, fn: Callable[..., Any], args: Tuple[Any, ...],
                 kwargs: Optional[dict] = None, name: Optional[str] = None) -> None:
        self.fn = fn
        self.args = args
        self.kwargs = kwargs or {}
        self.name = name

    def execute(self, vm: "VirtualMachine", task: "Task") -> "Task":
        return vm.spawn_task(self.fn, self.args, self.kwargs, self.name)

    def describe(self) -> str:
        target = self.name or getattr(self.fn, "__name__", "task")
        return f"spawn({target})"


class JoinOp(Operation):
    """Wait for another task to finish.

    Without a timeout the join blocks (disabled until the target finishes).
    With a finite timeout it is always enabled and *yields* whenever it
    would time out, per the paper's yield-inference rule.  Evaluates to
    ``True`` on successful join, ``False`` on timeout.
    """

    __slots__ = ("target", "timeout")
    # Joins are enabled by the target's *finishing transition*, whatever
    # operation that happens to be — not capturable as a resource, so
    # joins stay conservatively dependent with everything.
    resource_attr = None

    def __init__(self, target: "Task", timeout: Optional[float] = None) -> None:
        self.target = target
        self.timeout = timeout

    def enabled(self, vm: "VirtualMachine", task: "Task") -> bool:
        return self.target.done or self.timeout is not None

    def is_yielding(self, vm: "VirtualMachine", task: "Task") -> bool:
        return self.timeout is not None and not self.target.done

    def execute(self, vm: "VirtualMachine", task: "Task") -> bool:
        return self.target.done

    def describe(self) -> str:
        suffix = "" if self.timeout is None else f", timeout={self.timeout}"
        return f"join({self.target.name}{suffix})"
