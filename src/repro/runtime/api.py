"""Coroutine helpers used inside thread bodies.

Thread bodies are generator functions; these helpers are the runtime-level
verbs (sync-object verbs live on the objects themselves)::

    def worker(queue, other):
        yield from sleep()                 # yielding transition
        child = yield from spawn(helper, queue, name="helper")
        lane = yield from choose(3)        # data nondeterminism
        yield from join(child)
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.runtime.errors import AssertionViolation
from repro.runtime.ops import (
    ChooseOp,
    CreateThreadOp,
    JoinOp,
    Operation,
    PauseOp,
    YieldOp,
)
from repro.runtime.task import Task


def yield_now() -> Generator[Operation, Any, None]:
    """Explicitly yield the processor (a yielding transition).

    The good-samaritan discipline: place this on the back edge of every
    spin loop.  Algorithm 1 keys its priority updates on these points.
    """
    yield YieldOp("yield")


def sleep(duration: float = 1.0) -> Generator[Operation, Any, None]:
    """Sleep — semantically identical to :func:`yield_now` for the checker
    (CHESS treats ``Sleep`` as a processor yield), with a nicer trace label."""
    yield YieldOp(f"sleep({duration:g})")


def pause(label: str = "pause") -> Generator[Operation, Any, None]:
    """A pure scheduling point: lets the scheduler preempt here without
    marking the transition as yielding."""
    yield PauseOp(label)


def spawn(fn: Callable[..., Any], *args: Any, name: Optional[str] = None,
          **kwargs: Any) -> Generator[Operation, Any, Task]:
    """Create a new thread; evaluates to its :class:`Task` handle."""
    task = yield CreateThreadOp(fn, args, kwargs, name)
    return task


def join(task: Task, timeout: Optional[float] = None) -> Generator[Operation, Any, bool]:
    """Wait for ``task``; returns ``True`` on join, ``False`` on timeout.

    A finite ``timeout`` makes this a *yielding* operation whenever the
    target has not finished (the paper's yield-inference rule).
    """
    joined = yield JoinOp(task, timeout)
    return joined


def choose(n: int) -> Generator[Operation, Any, int]:
    """Nondeterministically pick a value in ``range(n)`` (explored
    exhaustively by the engine, like a scheduling choice)."""
    value = yield ChooseOp(n)
    return value


def check(condition: bool, message: str = "assertion failed") -> None:
    """Assert a safety property from inside a thread body.

    Unlike a bare ``assert`` this survives ``python -O`` and produces an
    :class:`AssertionViolation` with a clean message.
    """
    if not condition:
        raise AssertionViolation(message)
