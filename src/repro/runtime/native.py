"""Native-thread runtime: CHESS-style control of real OS threads.

The generator VM (:mod:`repro.runtime.vm`) is the primary substrate, but
CHESS itself controls *real* threads: every synchronization call traps
into the scheduler, which serializes the program so exactly one thread
runs between scheduling points.  CPython makes this practical — the GIL
already serializes bytecode, so a pair of semaphores per thread gives a
fully deterministic handshake.

Thread bodies here are **plain functions** (no generators, no ``yield
from``); they call blocking methods on the ``Native*`` primitives, which
publish the same :class:`~repro.runtime.ops.Operation` descriptors the VM
uses and block until the exploration engine schedules them.  The engine
is completely unaware of the difference: :class:`NativeProgram` instances
implement the same :class:`~repro.core.model.ProgramInstance` interface,
so every policy and strategy — fair scheduling included — applies
unchanged.

Determinism contract: code between scheduling points must be
deterministic and must touch shared state only through the ``Native*``
primitives (the same contract CHESS imposes via instrumentation).

Example::

    from repro import Checker
    from repro.runtime.native import NativeMutex, NativeProgram, native_env

    def make_program():
        def setup(env):
            lock = NativeMutex(name="L")

            def worker():
                lock.acquire()
                lock.release()

            env.spawn(worker, name="w1")
            env.spawn(worker, name="w2")

        return NativeProgram(setup, name="native-demo")

    assert Checker(make_program()).run().ok
"""

from __future__ import annotations

import threading
from typing import Any, Callable, FrozenSet, Hashable, List, Optional, Tuple

from repro.core.model import ProgramInstance, Program, StepInfo
from repro.runtime.errors import (
    ExecutionHung,
    PropertyViolation,
    ScheduleError,
    TaskCrash,
)
from repro.runtime.ops import ChooseOp, Operation, StartOp, YieldOp
from repro.runtime.task import TaskState
from repro.sync.atomics import _LoadOp, _StoreOp, AtomicCell
from repro.sync.event import _EventSetOp, _EventWaitOp, Event
from repro.sync.mutex import (
    Mutex,
    MutexAcquireOp,
    MutexReleaseOp,
    MutexTryAcquireOp,
)
from repro.sync.semaphore import _SemReleaseOp, _SemWaitOp, Semaphore

_current = threading.local()


class _ExecutionAborted(BaseException):
    """Raised inside controlled threads to unwind them at teardown.

    Derives from BaseException so user ``except Exception`` blocks cannot
    swallow it.
    """


class _NativeTask:
    """Controller-side record of one controlled OS thread."""

    def __init__(self, tid: int, name: str, runtime: "NativeInstance",
                 fn: Callable[..., Any], args: Tuple[Any, ...]) -> None:
        self.tid = tid
        self.name = name
        self.state = TaskState.READY
        self.pending: Optional[Operation] = None
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self._runtime = runtime
        self._go = threading.Semaphore(0)
        self._ready = threading.Semaphore(0)
        self._op_result: Any = None
        self._aborted = False
        self.hung = False
        self._thread = threading.Thread(
            target=self._run, args=(fn, args), name=name, daemon=True,
        )

    @property
    def done(self) -> bool:
        return self.state is not TaskState.READY

    @property
    def failed(self) -> bool:
        return self.state is TaskState.FAILED

    # ------------------------------------------------------------------
    # Thread side
    # ------------------------------------------------------------------
    def _run(self, fn: Callable[..., Any], args: Tuple[Any, ...]) -> None:
        _current.task = self
        try:
            self.perform(StartOp())
            self.result = fn(*args)
            self.state = TaskState.FINISHED
        except _ExecutionAborted:
            self.state = TaskState.FAILED
        except BaseException as exc:  # noqa: BLE001 - report to controller
            self.exception = exc
            self.state = TaskState.FAILED
        finally:
            self.pending = None
            _current.task = None
            self._ready.release()  # wake the controller one last time

    def perform(self, op: Operation) -> Any:
        """Publish an operation and block until the engine schedules it."""
        self.pending = op
        self._ready.release()
        self._go.acquire()
        if self._aborted:
            raise _ExecutionAborted()
        return self._op_result

    # ------------------------------------------------------------------
    # Controller side
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._thread.start()
        self._ready.acquire()  # wait until the StartOp is published

    def resume_with(self, value: Any,
                    timeout: Optional[float] = None) -> None:
        """Hand the operation result to the thread; wait for it to reach
        its next scheduling point (or finish).

        With a ``timeout``, a thread that fails to come back in time is
        marked hung and :class:`ExecutionHung` is raised — cooperative
        cancellation for the execution watchdog.  The thread itself keeps
        running (Python cannot kill it); teardown in :meth:`abort` then
        detects whether it ever unwound.
        """
        self.pending = None
        self._op_result = value
        self._go.release()
        if timeout is None:
            self._ready.acquire()
            return
        if not self._ready.acquire(timeout=timeout):
            self.hung = True
            raise ExecutionHung(
                f"thread {self.name!r} did not reach its next scheduling "
                f"point within {timeout:g}s",
                tid=self.tid,
            )

    def abort(self, join_timeout: float = 5.0) -> bool:
        """Unwind the thread at teardown; True if it is still alive after
        (a leaked thread the caller should report)."""
        if self.state is TaskState.READY and (self.pending is not None
                                              or self.hung):
            self._aborted = True
            self._go.release()
        self._thread.join(timeout=join_timeout)
        return self._thread.is_alive()


def current_task() -> _NativeTask:
    task = getattr(_current, "task", None)
    if task is None:
        raise ScheduleError(
            "native primitives may only be used inside threads spawned "
            "through a NativeProgram"
        )
    return task


def _perform(op: Operation) -> Any:
    return current_task().perform(op)


class NativeInstance(ProgramInstance):
    """One execution of a native-thread program."""

    def __init__(self, setup: Callable[["NativeEnv"], Any]) -> None:
        self._tasks: dict = {}
        self._next_tid = 0
        self.data_choice_handler: Optional[Callable[[int], int]] = None
        self._state_fn: Optional[Callable[[], Any]] = None
        self._spawned_this_step: List[int] = []
        self.monitors: List[Callable[[], None]] = []
        self.temporal_monitors: List[Any] = []
        self._closed = False
        #: Per-step wall-clock timeout set by the executor's watchdog;
        #: None (the default) blocks indefinitely, as before.
        self.step_timeout: Optional[float] = None
        #: Optional telemetry observer (set by the executor); used to
        #: report leaked threads at teardown.
        self.observer: Any = None
        #: Upper bound on the per-thread join at teardown.
        self.join_timeout: float = 5.0
        #: Names of threads that survived :meth:`close` (hung in user
        #: code that never unwound).
        self.leaked_threads: Tuple[str, ...] = ()
        setup(NativeEnv(self))

    # ------------------------------------------------------------------
    def spawn_task(self, fn: Callable[..., Any], args: Tuple[Any, ...] = (),
                   kwargs: Optional[dict] = None,
                   name: Optional[str] = None) -> _NativeTask:
        if kwargs:
            fn_orig = fn
            fn = lambda *a: fn_orig(*a, **kwargs)  # noqa: E731
        tid = self._next_tid
        self._next_tid += 1
        task_name = name if name is not None else \
            f"{getattr(fn, '__name__', 'thread')}-{tid}"
        task = _NativeTask(tid, task_name, self, fn, args)
        self._tasks[tid] = task
        self._spawned_this_step.append(tid)
        task.start()
        return task

    def set_state_fn(self, fn: Callable[[], Any]) -> None:
        self._state_fn = fn

    # ------------------------------------------------------------------
    # ProgramInstance interface
    # ------------------------------------------------------------------
    def thread_ids(self) -> FrozenSet[int]:
        return frozenset(self._tasks)

    def task(self, tid: int):
        return self._tasks[tid]

    def is_enabled(self, tid: int) -> bool:
        task = self._tasks[tid]
        if task.done or task.pending is None:
            return False
        return task.pending.enabled(self, task)

    def enabled_threads(self) -> FrozenSet[int]:
        return frozenset(t for t in self._tasks if self.is_enabled(t))

    def is_yielding(self, tid: int) -> bool:
        task = self._tasks[tid]
        return (self.is_enabled(tid)
                and task.pending.is_yielding(self, task))

    def has_live_threads(self) -> bool:
        return any(not t.done for t in self._tasks.values())

    def step(self, tid: int) -> StepInfo:
        task = self._tasks.get(tid)
        if task is None or not self.is_enabled(tid):
            raise ScheduleError(f"thread {tid} is not enabled")
        enabled_before = self.enabled_threads()
        op = task.pending
        yielded = op.is_yielding(self, task)
        op_desc = op.describe()
        self._spawned_this_step = []
        value = op.execute(self, task)
        task.resume_with(value, timeout=self.step_timeout)
        if task.failed and task.exception is not None:
            exc = task.exception
            if isinstance(exc, PropertyViolation):
                if exc.tid is None:
                    exc.tid = tid
                raise exc
            raise TaskCrash(
                f"thread {task.name!r} crashed: {exc!r}", tid=tid,
                original=exc,
            ) from exc
        return StepInfo(
            tid=tid,
            enabled_before=enabled_before,
            enabled_after=self.enabled_threads(),
            yielded=yielded,
            spawned=tuple(self._spawned_this_step),
            operation=op_desc,
        )

    def request_data_choice(self, n: int) -> int:
        if self.data_choice_handler is None:
            raise ScheduleError("choose() used outside the engine")
        return self.data_choice_handler(n)

    # ------------------------------------------------------------------
    def fast_forward(self, decisions, *,
                     per_step: Optional[Callable[["NativeInstance"], None]] = None,
                     run_monitors: bool = True) -> int:
        """Replay a recorded decision prefix without the engine loop.

        The native runtime's prefix-snapshot restore.  Real OS threads
        cannot be checkpointed in-process — ``fork(2)`` preserves only
        the calling thread, so a forked image of this instance would
        lose every controlled thread parked in its semaphore handshake —
        but they don't need to be: the determinism contract makes the
        instance state a function of the decision sequence alone, so
        driving a *fresh* set of threads through the recorded
        transitions reproduces it exactly.  What the snapshot saves is
        every engine-side cost of the prefix (policy updates, chooser,
        trace recording, coverage hashing, observer hooks), which on the
        native runtime sits on top of two thread handshakes per step —
        the most expensive replay in the repo and the one the cache
        helps most.

        Semantics mirror :meth:`repro.runtime.vm.VirtualMachine.fast_forward`:
        ``"thread"`` decisions name the tid to step, ``"data"`` decisions
        carry the values the prefix's ``choose()`` calls returned and are
        fed back in recorded order through a temporary data-choice
        handler.  Raises whatever the replayed prefix raises — any
        exception means the program broke the determinism contract and
        the caller must fall back to a full replay.
        """
        data_values = [d.chosen for d in decisions if d.kind == "data"]
        cursor = 0

        def feed(n: int) -> int:
            nonlocal cursor
            if cursor >= len(data_values):
                raise ScheduleError(
                    "fast-forward requested more data choices than the "
                    "snapshot recorded"
                )
            value = data_values[cursor]
            cursor += 1
            return value

        saved_handler = self.data_choice_handler
        self.data_choice_handler = feed
        executed = 0
        try:
            for decision in decisions:
                if decision.kind != "thread":
                    continue
                self.step(decision.chosen)
                if per_step is not None:
                    per_step(self)
                if run_monitors:
                    for monitor in self.monitors:
                        monitor()
                    for temporal in self.temporal_monitors:
                        temporal.observe()
                executed += 1
        finally:
            self.data_choice_handler = saved_handler
        return executed

    def state_signature(self) -> Optional[Hashable]:
        from repro.statespace.canonical import canonicalize

        pendings = tuple(
            (task.name, task.state.value,
             task.pending.describe() if task.pending else "-")
            for _, task in sorted(self._tasks.items())
        )
        if self._state_fn is not None:
            return (canonicalize(self._state_fn()), pendings)
        return pendings

    def precise_signature(self) -> Hashable:
        return self.state_signature()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Abort all still-blocked threads (end of one exploration run).

        Threads that fail to unwind within ``join_timeout`` are recorded
        in :attr:`leaked_threads` and reported through the observer — a
        leaked OS thread is a real resource loss worth surfacing, not
        something to time out on silently.
        """
        if self._closed:
            return
        self._closed = True
        timeout = self.join_timeout
        if self.step_timeout is not None:
            # Under a watchdog, teardown should not out-wait the budget.
            timeout = min(timeout, self.step_timeout)
        leaked = tuple(task.name for task in self._tasks.values()
                       if task.abort(join_timeout=timeout))
        self.leaked_threads = leaked
        if leaked and self.observer is not None:
            self.observer.thread_leaked(leaked)


class NativeEnv:
    """Setup-time facade (mirrors :class:`repro.runtime.program.ProgramEnv`)."""

    def __init__(self, instance: NativeInstance) -> None:
        self._instance = instance

    def spawn(self, fn: Callable[..., Any], *args: Any,
              name: Optional[str] = None, **kwargs: Any) -> _NativeTask:
        return self._instance.spawn_task(fn, args, kwargs, name)

    def set_state_fn(self, fn: Callable[[], Any]) -> None:
        self._instance.set_state_fn(fn)

    def add_monitor(self, monitor: Callable[[], None]) -> None:
        self._instance.monitors.append(monitor)

    def add_temporal_monitor(self, monitor: Any) -> None:
        self._instance.temporal_monitors.append(monitor)


class NativeProgram(Program):
    """Program factory over real threads."""

    #: Prefix snapshots apply here the same way they do on the VM: a
    #: cached entry is restored by instantiating fresh threads and
    #: driving them through the recorded decision log with
    #: :meth:`NativeInstance.fast_forward`.  The threads themselves are
    #: re-executed (in-process checkpointing of OS threads is impossible;
    #: see ``fast_forward``'s docstring on why ``fork(2)`` cannot help),
    #: but all engine-side prefix costs are skipped — and because each
    #: native step pays two semaphore handshakes, that replayed prefix
    #: is the most expensive in the repo, making the cache's savings
    #: largest exactly here.  Any restore failure falls back to a full
    #: replay, as everywhere else.
    supports_snapshot = True

    def __init__(self, setup: Callable[[NativeEnv], Any],
                 name: str = "native-program") -> None:
        self._setup = setup
        self.name = name

    def instantiate(self) -> NativeInstance:
        return NativeInstance(self._setup)


# ----------------------------------------------------------------------
# Blocking primitives for controlled threads
# ----------------------------------------------------------------------

def spawn(fn: Callable[..., Any], *args: Any,
          name: Optional[str] = None) -> _NativeTask:
    """Spawn a controlled thread from inside a controlled thread."""
    from repro.runtime.ops import CreateThreadOp

    return _perform(CreateThreadOp(fn, args, None, name))


def join(task: _NativeTask, timeout: Optional[float] = None) -> bool:
    from repro.runtime.ops import JoinOp

    return _perform(JoinOp(task, timeout))


def yield_now() -> None:
    _perform(YieldOp("yield"))


def sleep(duration: float = 1.0) -> None:
    _perform(YieldOp(f"sleep({duration:g})"))


def choose(n: int) -> int:
    return _perform(ChooseOp(n))


class NativeMutex:
    """Blocking facade over :class:`repro.sync.mutex.Mutex`."""

    def __init__(self, name: Optional[str] = None) -> None:
        self._impl = Mutex(name)
        self.name = self._impl.name

    def acquire(self, timeout: Optional[float] = None) -> bool:
        return _perform(MutexAcquireOp(self._impl, timeout))

    def try_acquire(self) -> bool:
        return _perform(MutexTryAcquireOp(self._impl))

    def release(self) -> None:
        _perform(MutexReleaseOp(self._impl))

    def held(self) -> bool:
        return self._impl.held()

    def owner_name(self) -> Optional[str]:
        return self._impl.owner_name()

    def state_signature(self) -> Any:
        return self._impl.state_signature()


class NativeSharedVar:
    """Blocking facade over :class:`repro.sync.atomics.SharedVar`."""

    def __init__(self, value: Any = None, name: Optional[str] = None) -> None:
        self._impl = AtomicCell(value, name)
        self.name = self._impl.name

    def get(self) -> Any:
        return _perform(_LoadOp(self._impl))

    def set(self, value: Any) -> None:
        _perform(_StoreOp(self._impl, value))

    def peek(self) -> Any:
        return self._impl.peek()

    def state_signature(self) -> Any:
        return self._impl.state_signature()


class NativeSemaphore:
    """Blocking facade over :class:`repro.sync.semaphore.Semaphore`."""

    def __init__(self, initial: int = 0, maximum: Optional[int] = None,
                 name: Optional[str] = None) -> None:
        self._impl = Semaphore(initial, maximum, name)
        self.name = self._impl.name

    def wait(self, timeout: Optional[float] = None) -> bool:
        return _perform(_SemWaitOp(self._impl, timeout))

    def release(self, n: int = 1) -> None:
        _perform(_SemReleaseOp(self._impl, n))

    def count(self) -> int:
        return self._impl.count()


class NativeEvent:
    """Blocking facade over :class:`repro.sync.event.Event`."""

    def __init__(self, signaled: bool = False, auto_reset: bool = False,
                 name: Optional[str] = None) -> None:
        self._impl = Event(signaled, auto_reset, name)
        self.name = self._impl.name

    def wait(self, timeout: Optional[float] = None) -> bool:
        return _perform(_EventWaitOp(self._impl, timeout))

    def set(self) -> None:
        _perform(_EventSetOp(self._impl))

    def is_signaled(self) -> bool:
        return self._impl.is_signaled()
