"""Exception hierarchy for the runtime and the checker.

Safety violations detected during an execution are raised as subclasses of
:class:`PropertyViolation`; the exploration engine catches them, attaches
the replayable schedule, and reports them as counterexamples.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ScheduleError(ReproError):
    """The engine asked the runtime to do something impossible (internal).

    E.g. scheduling a disabled thread — indicates a bug in the caller, not
    in the program under test.
    """


class PropertyViolation(ReproError):
    """A safety property of the program under test was violated."""

    kind = "safety"

    def __init__(self, message: str, *, tid: Optional[object] = None) -> None:
        super().__init__(message)
        self.message = message
        self.tid = tid


class AssertionViolation(PropertyViolation):
    """An assertion in the program under test failed."""

    kind = "assertion"


class SyncUsageError(PropertyViolation):
    """A synchronization primitive was misused.

    Examples: releasing a mutex the thread does not own, releasing a
    semaphore above its maximum count, re-setting a completed promise.
    """

    kind = "sync-usage"


class DeadlockViolation(PropertyViolation):
    """All live threads are disabled (the paper's terminating-state check
    when unfinished threads remain)."""

    kind = "deadlock"


class ExecutionHung(ReproError):
    """A controlled thread failed to reach its next scheduling point
    within the execution watchdog's budget.

    Raised by the native runtime when a cooperative handshake times out;
    the executor converts it into an aborted execution
    (:attr:`repro.engine.results.Outcome.ABORTED`) instead of a verdict —
    a hung execution means the *test* could not be completed, not that a
    property failed.
    """

    def __init__(self, message: str, *, tid: Optional[object] = None) -> None:
        super().__init__(message)
        self.message = message
        self.tid = tid


class TaskCrash(PropertyViolation):
    """The program under test raised an unexpected exception."""

    kind = "crash"

    def __init__(self, message: str, *, tid: Optional[object] = None,
                 original: Optional[BaseException] = None) -> None:
        super().__init__(message, tid=tid)
        self.original = original
