"""Tasks: the threads of a program under test.

A task wraps a Python generator.  The generator yields
:class:`~repro.runtime.ops.Operation` descriptors; between yields it runs
ordinary Python code, which the checker treats as atomic (a transition is
"execute the pending operation, then run to the next scheduling point").
"""

from __future__ import annotations

import enum
from typing import Any, Generator, Optional

from repro.runtime.errors import TaskCrash
from repro.runtime.ops import Operation, StartOp

_START = StartOp()


class TaskState(enum.Enum):
    READY = "ready"
    FINISHED = "finished"
    FAILED = "failed"


class Task:
    """One thread of the program under test."""

    __slots__ = ("tid", "name", "_gen", "pending", "state", "result",
                 "exception", "_started")

    def __init__(self, tid: int, name: str,
                 gen: Generator[Operation, Any, Any]) -> None:
        self.tid = tid
        self.name = name
        self._gen = gen
        #: Operation the task will perform when next scheduled.
        self.pending: Optional[Operation] = _START
        self.state = TaskState.READY
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self._started = False

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """True once the task finished, normally or by crashing."""
        return self.state is not TaskState.READY

    @property
    def failed(self) -> bool:
        return self.state is TaskState.FAILED

    # ------------------------------------------------------------------
    def advance(self, send_value: Any) -> None:
        """Resume the generator until its next yield (or completion).

        ``send_value`` is the result of the operation just executed.  A
        normal ``return`` finishes the task; any exception marks it failed
        and is re-raised wrapped in :class:`TaskCrash` unless it is already
        a :class:`~repro.runtime.errors.PropertyViolation`.
        """
        from repro.runtime.errors import PropertyViolation

        try:
            if self._started:
                self.pending = self._gen.send(send_value)
            else:
                self._started = True
                self.pending = next(self._gen)
        except StopIteration as stop:
            self.state = TaskState.FINISHED
            self.pending = None
            self.result = stop.value
        except PropertyViolation as violation:
            self.state = TaskState.FAILED
            self.pending = None
            self.exception = violation
            if violation.tid is None:
                violation.tid = self.tid
            raise
        except Exception as exc:  # noqa: BLE001 - program under test crashed
            self.state = TaskState.FAILED
            self.pending = None
            self.exception = exc
            raise TaskCrash(
                f"thread {self.name!r} crashed: {exc!r}",
                tid=self.tid,
                original=exc,
            ) from exc
        else:
            if not isinstance(self.pending, Operation):
                bad = self.pending
                self.state = TaskState.FAILED
                self.pending = None
                raise TaskCrash(
                    f"thread {self.name!r} yielded {bad!r}, which is not an "
                    f"Operation — did you forget 'yield from' on a sync call?",
                    tid=self.tid,
                )

    def __repr__(self) -> str:
        op = self.pending.describe() if self.pending else "-"
        return f"<Task {self.tid} {self.name!r} {self.state.value} pending={op}>"
