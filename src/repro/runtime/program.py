"""Program factories for the VM runtime.

A :class:`VMProgram` bundles a *setup function* that builds one fresh
execution: it creates the shared objects, spawns the initial threads, and
optionally installs manual state extraction.  The exploration engine calls
:meth:`VMProgram.instantiate` once per explored execution — the setup
function must therefore be deterministic and self-contained (no module-level
mutable state).

Example::

    from repro import VMProgram, sync

    def counter_program():
        def setup(env):
            lock = sync.Mutex(name="lock")
            cell = sync.SharedVar(0, name="n")

            def worker():
                yield from lock.acquire()
                v = yield from cell.get()
                yield from cell.set(v + 1)
                yield from lock.release()

            env.spawn(worker, name="w1")
            env.spawn(worker, name="w2")
            env.set_state_fn(lambda: (cell.peek(), lock.owner_name()))

        return VMProgram(setup, name="counter")
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from repro.core.model import Program
from repro.runtime.task import Task
from repro.runtime.vm import VirtualMachine


class ProgramEnv:
    """Handed to the setup function; the only sanctioned way to touch the VM
    during program construction."""

    def __init__(self, vm: VirtualMachine) -> None:
        self._vm = vm

    def spawn(self, fn: Callable[..., Any], *args: Any,
              name: Optional[str] = None, **kwargs: Any) -> Task:
        """Create an initial thread running the generator function ``fn``."""
        return self._vm.spawn_task(fn, args, kwargs, name)

    def set_state_fn(self, fn: Callable[[], Any]) -> None:
        """Install manual state extraction (for coverage experiments).

        ``fn`` returns any structure; it is canonicalized (heap
        canonicalization per Iosif 2001) before being hashed.
        """
        self._vm.set_state_fn(fn)

    def add_monitor(self, monitor: Callable[[], None]) -> None:
        """Install a safety monitor checked after every transition.

        The monitor raises
        :class:`~repro.runtime.errors.PropertyViolation` to fail the
        execution; see :mod:`repro.engine.monitors` for helpers.
        """
        self._vm.monitors.append(monitor)

    def add_temporal_monitor(self, monitor: Any) -> None:
        """Install a liveness monitor (see :mod:`repro.engine.liveness`)."""
        self._vm.temporal_monitors.append(monitor)

    @property
    def vm(self) -> VirtualMachine:
        return self._vm


class VMProgram(Program):
    """A replayable multithreaded program defined by a setup function."""

    #: VM executions are a pure function of the decision sequence, so the
    #: engine's prefix-snapshot cache applies (docs/performance.md).  The
    #: native thread runtime advertises the same capability through its
    #: own replay-log ``fast_forward`` (see :mod:`repro.runtime.native`).
    supports_snapshot = True

    def __init__(self, setup: Callable[[ProgramEnv], Any],
                 name: str = "program") -> None:
        self._setup = setup
        self.name = name

    def instantiate(self) -> VirtualMachine:
        vm = VirtualMachine()
        self._setup(ProgramEnv(vm))
        return vm

    def __repr__(self) -> str:
        return f"VMProgram({self.name!r})"


def program(name: str = "program") -> Callable[[Callable[[ProgramEnv], Any]], VMProgram]:
    """Decorator sugar: turn a setup function into a :class:`VMProgram`.

    ::

        @program("spinloop")
        def spinloop(env):
            ...
    """

    def wrap(setup: Callable[[ProgramEnv], Any]) -> VMProgram:
        return VMProgram(setup, name=name)

    return wrap
