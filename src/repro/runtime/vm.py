"""The deterministic cooperative virtual machine.

One :class:`VirtualMachine` is one execution of a program under test.  It
owns the tasks, exposes the paper's state predicates (``ES``, ``yield(t)``)
by inspecting pending operations, and performs transitions on behalf of the
exploration engine.  It implements
:class:`repro.core.model.ProgramInstance`, the interface Algorithm 1 and the
search strategies are written against.

The VM is *stateless-checker friendly*: generator frames cannot be copied,
so there is no in-place rollback.  The engine revisits program states by
building a fresh VM (through a :class:`repro.runtime.program.VMProgram`
factory) and replaying choices.  Because every transition is deterministic,
the VM *does* support the engine's replay-log snapshot protocol
(:mod:`repro.engine.snapshots`): :meth:`fast_forward` drives a fresh VM
through a recorded decision prefix without the engine loop around it, which
is what the ``supports_snapshot`` capability flag advertises.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Hashable, List, Optional, Tuple

from repro.core.model import ProgramInstance, StepInfo
from repro.runtime.errors import ScheduleError
from repro.runtime.task import Task, TaskState
from repro.statespace.canonical import canonicalize


class VirtualMachine(ProgramInstance):
    """A live execution of a multithreaded program."""

    #: The VM's transitions are a pure function of the decision sequence,
    #: so the engine may restore prefix states via :meth:`fast_forward`
    #: (the native thread runtime sets this False and always fully
    #: replays).
    supports_snapshot = True

    def __init__(self) -> None:
        self._tasks: Dict[int, Task] = {}
        self._next_tid = 0
        self.step_count = 0
        #: Set by the engine; resolves ``choose(n)`` operations.
        self.data_choice_handler: Optional[Callable[[int], int]] = None
        #: Optional manual state extraction (Section 4.2.1 of the paper).
        self._state_fn: Optional[Callable[[], Any]] = None
        self._spawned_this_step: List[int] = []
        #: Zero-argument safety monitors run by the engine after each step.
        self.monitors: List[Callable[[], None]] = []
        #: Temporal liveness monitors (engine observes them every step and
        #: consults them when an execution diverges).
        self.temporal_monitors: List[Any] = []
        #: Cache of the enabled set; invalidated by every transition and
        #: spawn (the only mutations of shared state).
        self._enabled_cache: Optional[FrozenSet[int]] = None

    # ------------------------------------------------------------------
    # Construction API (used by program setup code and CreateThreadOp)
    # ------------------------------------------------------------------
    def spawn_task(self, fn: Callable[..., Any], args: Tuple[Any, ...] = (),
                   kwargs: Optional[dict] = None, name: Optional[str] = None) -> Task:
        tid = self._next_tid
        self._next_tid += 1
        task_name = name if name is not None else f"{getattr(fn, '__name__', 'task')}-{tid}"
        gen = fn(*args, **(kwargs or {}))
        if not hasattr(gen, "send"):
            raise TypeError(
                f"thread body {fn!r} must be a generator function "
                f"(use 'yield from' on sync operations)"
            )
        task = Task(tid, task_name, gen)
        self._tasks[tid] = task
        self._spawned_this_step.append(tid)
        self._enabled_cache = None
        return task

    def set_state_fn(self, fn: Callable[[], Any]) -> None:
        """Install manual state extraction for coverage measurement."""
        self._state_fn = fn

    # ------------------------------------------------------------------
    # ProgramInstance interface
    # ------------------------------------------------------------------
    def thread_ids(self) -> FrozenSet[int]:
        return frozenset(self._tasks)

    def task(self, tid: int) -> Task:
        return self._tasks[tid]

    def tasks(self) -> Tuple[Task, ...]:
        return tuple(self._tasks[tid] for tid in sorted(self._tasks))

    def is_enabled(self, tid: int) -> bool:
        task = self._tasks[tid]
        if task.state is not TaskState.READY or task.pending is None:
            return False
        return task.pending.enabled(self, task)

    def enabled_threads(self) -> FrozenSet[int]:
        if self._enabled_cache is None:
            self._enabled_cache = frozenset(
                tid for tid in self._tasks if self.is_enabled(tid)
            )
        return self._enabled_cache

    def is_yielding(self, tid: int) -> bool:
        task = self._tasks[tid]
        if not self.is_enabled(tid):
            return False
        return task.pending.is_yielding(self, task)

    def has_live_threads(self) -> bool:
        return any(t.state is TaskState.READY for t in self._tasks.values())

    def step(self, tid: int) -> StepInfo:
        """Execute one transition of thread ``tid``.

        The transition is: execute the pending operation, then run the task
        to its next scheduling point.  Property violations raised by either
        part propagate to the engine (the task is marked failed first, so a
        caller that catches the violation sees a consistent VM).
        """
        task = self._tasks.get(tid)
        if task is None:
            raise ScheduleError(f"no such thread: {tid}")
        if not self.is_enabled(tid):
            raise ScheduleError(
                f"thread {task.name!r} is not enabled (pending "
                f"{task.pending.describe() if task.pending else 'nothing'})"
            )
        enabled_before = self.enabled_threads()
        op = task.pending
        yielded = op.is_yielding(self, task)
        op_desc = op.describe()
        self._spawned_this_step = []
        self._enabled_cache = None
        try:
            value = op.execute(self, task)
            task.advance(value)
        finally:
            self._enabled_cache = None
            self.step_count += 1
        return StepInfo(
            tid=tid,
            enabled_before=enabled_before,
            enabled_after=self.enabled_threads(),
            yielded=yielded,
            spawned=tuple(self._spawned_this_step),
            operation=op_desc,
        )

    def fast_forward(self, decisions, *, per_step: Optional[Callable[["VirtualMachine"], None]] = None,
                     run_monitors: bool = True) -> int:
        """Replay a recorded decision prefix without the engine loop.

        This is the reference implementation of the replay-log snapshot
        restore; :meth:`repro.runtime.native.NativeInstance.fast_forward`
        mirrors it for real OS threads.

        ``decisions`` is a sequence of engine
        :class:`~repro.engine.results.Decision` records: ``"thread"``
        decisions name the tid to step (``chosen``), ``"data"`` decisions
        carry the value the prefix's ``choose()`` calls returned and are
        fed back in recorded order through a temporary data-choice
        handler.  ``per_step`` (engine-supplied) runs after each
        transition, before the VM-local monitors; ``run_monitors=False``
        skips local safety and temporal monitors for callers whose full
        loop never consults them (the sleep-set POR loop).

        Returns the number of transitions executed.  Raises whatever the
        replayed prefix raises — a clean prefix replays cleanly, so any
        exception here means the program broke the determinism contract
        and the caller must fall back to a full replay.
        """
        data_values = [d.chosen for d in decisions if d.kind == "data"]
        cursor = 0

        def feed(n: int) -> int:
            nonlocal cursor
            if cursor >= len(data_values):
                raise ScheduleError(
                    "fast-forward requested more data choices than the "
                    "snapshot recorded"
                )
            value = data_values[cursor]
            cursor += 1
            return value

        saved_handler = self.data_choice_handler
        self.data_choice_handler = feed
        executed = 0
        try:
            for decision in decisions:
                if decision.kind != "thread":
                    continue
                self.step(decision.chosen)
                if per_step is not None:
                    per_step(self)
                if run_monitors:
                    for monitor in self.monitors:
                        monitor()
                    for temporal in self.temporal_monitors:
                        temporal.observe()
                executed += 1
        finally:
            self.data_choice_handler = saved_handler
        return executed

    # ------------------------------------------------------------------
    # Data nondeterminism
    # ------------------------------------------------------------------
    def request_data_choice(self, n: int) -> int:
        if self.data_choice_handler is None:
            raise ScheduleError(
                "choose() used outside the exploration engine; "
                "run the program through a Checker or an explorer"
            )
        value = self.data_choice_handler(n)
        if not 0 <= value < n:
            raise ScheduleError(f"data choice {value} out of range({n})")
        return value

    # ------------------------------------------------------------------
    # Coverage support
    # ------------------------------------------------------------------
    def state_signature(self) -> Optional[Hashable]:
        """Manual state extraction if installed, else a generic abstraction.

        The generic fallback combines, per task: name, lifecycle state,
        pending-operation description and the generator's bytecode offset.
        It is sound for coverage *counting* within one process but coarser
        than the manual extraction the paper uses for its two measured
        programs; those workloads install precise signatures.
        """
        if self._state_fn is not None:
            return canonicalize(self._state_fn())
        return self._task_signature(include_frames=True)

    def precise_signature(self) -> Hashable:
        """Manual extraction *plus* per-task lifecycle and pending ops.

        Used as the visited key of the stateful ground-truth search: two VM
        states with equal precise signatures must behave identically, which
        holds whenever the installed state function captures all shared
        state and thread bodies keep no behavior-relevant generator locals
        across scheduling points (the contract of the measured workloads).
        """
        return (self.state_signature(), self._task_signature())

    def _task_signature(self, include_frames: bool = False) -> Hashable:
        parts = []
        for tid in sorted(self._tasks):
            task = self._tasks[tid]
            pending = task.pending.describe() if task.pending else "-"
            if include_frames:
                frame = getattr(task._gen, "gi_frame", None)
                lasti = frame.f_lasti if frame is not None else -1
                parts.append((task.name, task.state.value, pending, lasti))
            else:
                parts.append((task.name, task.state.value, pending))
        return tuple(parts)
