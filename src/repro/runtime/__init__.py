"""Deterministic cooperative runtime: the CHESS-style execution substrate.

Programs under test are built from generator-function thread bodies that
yield :class:`~repro.runtime.ops.Operation` descriptors; a
:class:`~repro.runtime.vm.VirtualMachine` executes them one transition at a
time under full control of the exploration engine.
"""

from repro.runtime.api import check, choose, join, pause, sleep, spawn, yield_now
from repro.runtime.errors import (
    AssertionViolation,
    DeadlockViolation,
    PropertyViolation,
    ReproError,
    ScheduleError,
    SyncUsageError,
    TaskCrash,
)
from repro.runtime.ops import Operation
from repro.runtime.program import ProgramEnv, VMProgram, program
from repro.runtime.task import Task, TaskState
from repro.runtime.vm import VirtualMachine

__all__ = [
    "AssertionViolation",
    "DeadlockViolation",
    "Operation",
    "ProgramEnv",
    "PropertyViolation",
    "ReproError",
    "ScheduleError",
    "SyncUsageError",
    "Task",
    "TaskCrash",
    "TaskState",
    "VMProgram",
    "VirtualMachine",
    "check",
    "choose",
    "join",
    "pause",
    "program",
    "sleep",
    "spawn",
    "yield_now",
]
