"""fairchess — Fair Stateless Model Checking (PLDI 2008) in Python.

A from-scratch reproduction of *Fair Stateless Model Checking* by
Madanlal Musuvathi and Shaz Qadeer: the CHESS stateless model checker with
the fair demonic scheduler (Algorithm 1), its search strategies, its
liveness detection (livelocks and good-samaritan violations) and the
workloads of the paper's evaluation.

Quickstart::

    from repro import Checker, VMProgram, sync

    def make_program():
        def setup(env):
            x = sync.SharedVar(0, name="x")

            def t():
                yield from x.set(1)

            def u():
                while (yield from x.get()) != 1:
                    yield from sync.yield_now()

            env.spawn(t, name="t")
            env.spawn(u, name="u")
        return VMProgram(setup, name="spinloop")

    result = Checker(make_program()).run()
    assert result.ok
"""

from repro import obs, sync
from repro.checker import Checker, CheckResult, check
from repro.obs import MetricsRegistry, Observer
from repro.core import (
    FairPolicy,
    FairSchedulerState,
    NonfairPolicy,
    PriorityRelation,
    Program,
    ProgramInstance,
    RoundRobinPolicy,
    SchedulingPolicy,
    StepInfo,
    fair_policy,
    nonfair_policy,
    round_robin_policy,
)
from repro.engine import (
    CoverageTracker,
    DivergenceKind,
    ExecutionResult,
    ExecutorConfig,
    ExplorationLimits,
    ExplorationResult,
    Outcome,
    explore_bfs,
    explore_context_bounded,
    explore_dfs,
    explore_random,
    format_trace,
    invariant,
    iterative_context_bounding,
    never,
    replay_schedule,
)
from repro.runtime import (
    AssertionViolation,
    PropertyViolation,
    SyncUsageError,
    TaskCrash,
    VMProgram,
    program,
)

__version__ = "1.0.0"

__all__ = [
    "AssertionViolation",
    "CheckResult",
    "Checker",
    "CoverageTracker",
    "DivergenceKind",
    "ExecutionResult",
    "ExecutorConfig",
    "ExplorationLimits",
    "ExplorationResult",
    "FairPolicy",
    "FairSchedulerState",
    "MetricsRegistry",
    "NonfairPolicy",
    "Observer",
    "Outcome",
    "PriorityRelation",
    "Program",
    "ProgramInstance",
    "PropertyViolation",
    "RoundRobinPolicy",
    "SchedulingPolicy",
    "StepInfo",
    "SyncUsageError",
    "TaskCrash",
    "VMProgram",
    "check",
    "explore_bfs",
    "explore_context_bounded",
    "explore_dfs",
    "explore_random",
    "fair_policy",
    "format_trace",
    "invariant",
    "iterative_context_bounding",
    "never",
    "nonfair_policy",
    "obs",
    "program",
    "replay_schedule",
    "round_robin_policy",
    "sync",
    "__version__",
]
