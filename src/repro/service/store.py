"""Durable job state: one directory per job, atomic JSON writes.

Layout under the service data directory::

    <data_dir>/
      inbox/                     filesystem-transport submissions
        <job_id>.json            (written atomically by clients)
      cancel/
        <job_id>                 cancel-request flag files
      jobs/<job_id>/
        job.json                 JobRecord (atomic tmp+rename writes)
        checkpoint.json          strategy checkpoint between quanta
        events.jsonl             live progress stream (JSONL tail)
        result.json              final verdict + totals + report
        repro.json               replayable counterexample schedule
        quarantine/              crash repro schedules

The invariant the whole service leans on: **the durable state is the
authority**.  A server crash between any two steps loses at most the
in-flight quantum — ``job.json`` still says RUNNING, ``checkpoint.json``
still holds the last flushed strategy state, and the next server boot
re-queues the job to resume from exactly there (the strategy layer's
checkpoint-at-iteration-start discipline makes the re-run of a
half-finished quantum deterministic and identical).
"""

from __future__ import annotations

import json
import os
import uuid
from pathlib import Path
from typing import Iterator, List, Optional, Union

from repro.durableio import atomic_write_text
from repro.resilience.checkpoint import CheckpointStore
from repro.service.jobs import JobRecord, JobSpec, JobState


class JobStore:
    """Filesystem persistence for job records and their artifacts."""

    def __init__(self, data_dir: Union[str, Path]) -> None:
        self.root = Path(data_dir)
        self.inbox_dir = self.root / "inbox"
        self.cancel_dir = self.root / "cancel"
        self.jobs_dir = self.root / "jobs"
        for directory in (self.root, self.inbox_dir, self.cancel_dir,
                          self.jobs_dir):
            directory.mkdir(parents=True, exist_ok=True)

    def verify_writable(self) -> None:
        """Probe that the store can actually persist job state.

        Raises ``OSError`` when the jobs directory refuses writes (read-
        only mount, permissions, full disk) — a server booting on such a
        store must fail loudly rather than idle while silently losing
        every submission.
        """
        probe = self.jobs_dir / f".writable-probe-{uuid.uuid4().hex}"
        try:
            probe.write_text("probe\n")
        finally:
            try:
                probe.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def job_dir(self, job_id: str) -> Path:
        return self.jobs_dir / job_id

    def record_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "job.json"

    def checkpoint_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "checkpoint.json"

    def events_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "events.jsonl"

    def result_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "result.json"

    def repro_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "repro.json"

    def quarantine_dir(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "quarantine"

    # ------------------------------------------------------------------
    # records
    # ------------------------------------------------------------------
    def create(self, record: JobRecord) -> None:
        path = self.job_dir(record.id)
        if path.exists():
            raise ValueError(f"job {record.id} already exists")
        path.mkdir(parents=True)
        self.save(record)

    def save(self, record: JobRecord) -> None:
        _atomic_write_json(self.record_path(record.id), record.to_dict())

    def load(self, job_id: str) -> JobRecord:
        path = self.record_path(job_id)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            raise KeyError(f"unknown job {job_id!r}") from None
        except json.JSONDecodeError as exc:
            raise ValueError(f"job record {path} is corrupt: {exc}") from exc
        return JobRecord.from_dict(payload)

    def exists(self, job_id: str) -> bool:
        return self.record_path(job_id).exists()

    def jobs(self) -> Iterator[JobRecord]:
        """All job records, oldest submission first (ids sort by time).

        A corrupt ``job.json`` (torn by a crashed writer on a pre-fsync
        build, eaten by the disk) is quarantined to ``job.json.corrupt``
        and skipped — one bad record must never take down a server boot
        and the healthy jobs around it.
        """
        for path in sorted(self.jobs_dir.iterdir()):
            if not path.is_dir() or not (path / "job.json").exists():
                continue
            try:
                yield self.load(path.name)
            except ValueError:
                bad = path / "job.json"
                try:
                    os.replace(bad, path / "job.json.corrupt")
                except OSError:
                    pass

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def save_result(self, job_id: str, payload: dict) -> None:
        _atomic_write_json(self.result_path(job_id), payload)

    def load_result(self, job_id: str) -> Optional[dict]:
        path = self.result_path(job_id)
        if not path.exists():
            return None
        return json.loads(path.read_text())

    # ------------------------------------------------------------------
    # transport surfaces (filesystem client <-> server)
    # ------------------------------------------------------------------
    def drop_submission(self, spec: JobSpec, job_id: str) -> Path:
        """Client side: atomically place a submission in the inbox."""
        path = self.inbox_dir / f"{job_id}.json"
        _atomic_write_json(path, {"id": job_id, "spec": spec.to_dict()})
        return path

    def take_submissions(self) -> List[dict]:
        """Server side: drain the inbox (each payload has id + spec)."""
        taken = []
        for path in sorted(self.inbox_dir.glob("*.json")):
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue  # mid-write or corrupt; retry next poll
            try:
                path.unlink()
            except OSError:
                continue  # another server instance won the race
            if isinstance(payload, dict):
                taken.append(payload)
        return taken

    def drop_cancel(self, job_id: str) -> Path:
        path = self.cancel_dir / job_id
        path.write_text("")
        return path

    def take_cancels(self) -> List[str]:
        taken = []
        for path in sorted(self.cancel_dir.iterdir()):
            if not path.is_file():
                continue
            try:
                path.unlink()
            except OSError:
                continue
            taken.append(path.name)
        return taken

    # ------------------------------------------------------------------
    # recovery & garbage collection
    # ------------------------------------------------------------------
    def recover(self) -> List[JobRecord]:
        """Jobs a fresh server must put back on the scheduler.

        QUEUED jobs never ran; RUNNING jobs resume from their
        checkpoint (or from scratch when the crash predated the first
        flush — same totals either way, the search is deterministic).
        """
        pending = []
        for record in self.jobs():
            if record.state in (JobState.QUEUED, JobState.RUNNING):
                pending.append(record)
        return pending

    def cleanup_job(self, job_id: str) -> None:
        """Drop the resume state of a terminal job (keep the artifacts)."""
        CheckpointStore(self.checkpoint_path(job_id)).delete()

    def stale_checkpoints(self) -> List[Path]:
        """Checkpoints belonging to already-terminal jobs (leaks)."""
        stale = []
        for record in self.jobs():
            if record.state.terminal:
                path = self.checkpoint_path(record.id)
                if path.exists():
                    stale.append(path)
        return stale

    def sweep_terminal_jobs(self, max_age: float, *,
                            now: Optional[float] = None) -> List[str]:
        """Delete whole job directories terminal for over ``max_age`` s."""
        import shutil
        import time as time_module

        reference = time_module.time() if now is None else now
        removed = []
        for record in self.jobs():
            finished = record.finished_at
            if (record.state.terminal and finished is not None
                    and reference - finished > max_age):
                shutil.rmtree(self.job_dir(record.id), ignore_errors=True)
                removed.append(record.id)
        return removed


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Durable JSON write via :func:`repro.durableio.atomic_write` —
    job records are the service's source of truth, so a write that
    returned must survive kill -9."""
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(payload, indent=2, sort_keys=True,
                      default=str) + "\n"
    atomic_write_text(path, text, label="job")
