"""Inter-job fair scheduling: deficit-weighted round robin over jobs.

The paper's scheduler keeps exploration of *one* program fair between
its threads; this module is the same idea one level up — fairness
*between jobs* sharing a bounded worker fleet, so a two-second smoke
check never starves behind a million-execution bulk sweep.

The policy is deficit-weighted round robin (DWRR) over the three
priority classes (``smoke`` 6 · ``default`` 3 · ``bulk`` 1):

* each class keeps a FIFO queue of runnable jobs and a *deficit* of
  quantum credits;
* when no runnable class has a credit left, every runnable class is
  replenished by its weight — one replenish cycle therefore dispatches
  quanta in the 6:3:1 ratio while all classes have work;
* within a class, jobs round-robin: a job that received a quantum
  re-enters at the tail;
* a class whose queue drains loses its remaining deficit (no hoarding
  bursts for later).

Starvation-freedom is not just a theorem here, it is a **measured
invariant**: every dispatch records how many dispatches the job waited
(``scheduler.wait_quanta`` histogram) and compares the wait against the
DWRR bound computed when the job was enqueued; a violation increments
``scheduler.starvation`` — which the test suite and the service's own
health report assert stays zero.

Admission control rides on top: a token bucket per client bounds the
submission rate, and ``max_active_per_client`` holds a client's excess
jobs in a backlog that is admitted as its earlier jobs finish.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.service.jobs import PRIORITY_WEIGHTS

#: Slack multiplier on the theoretical DWRR wait bound before a dispatch
#: counts as starvation (absorbs replenish-boundary rounding).
STARVATION_SLACK = 2.0


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity."""

    def __init__(self, rate: float, burst: float, *,
                 clock=time.monotonic) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = burst
        self._stamp = clock()

    def try_acquire(self, amount: float = 1.0) -> bool:
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now
        if self._tokens >= amount:
            self._tokens -= amount
            return True
        return False


class _ClassQueue:
    """One priority class: FIFO of job ids plus its DWRR deficit."""

    __slots__ = ("weight", "queue", "deficit")

    def __init__(self, weight: int) -> None:
        self.weight = weight
        self.queue: Deque[str] = deque()
        self.deficit = 0.0


class JobScheduler:
    """Thread-safe DWRR dispatcher for the service's worker fleet.

    Workers call :meth:`next_job` (blocking) to pull the next quantum's
    job; the server calls :meth:`submit` on admission, :meth:`requeue`
    when a quantum ends with work remaining, and :meth:`finish` when a
    job reaches a terminal state (releasing its client slot and
    admitting that client's backlog).
    """

    def __init__(
        self,
        *,
        weights: Optional[Dict[str, int]] = None,
        max_active_per_client: Optional[int] = None,
        submit_rate: Optional[float] = None,
        submit_burst: Optional[float] = None,
        metrics=None,
        clock=time.monotonic,
    ) -> None:
        self.weights = dict(weights or PRIORITY_WEIGHTS)
        if any(w <= 0 for w in self.weights.values()):
            raise ValueError("priority weights must be positive")
        self.max_active_per_client = max_active_per_client
        self._submit_rate = submit_rate
        self._submit_burst = submit_burst or (submit_rate or 0) * 2
        self._clock = clock
        self._metrics = metrics
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._classes: Dict[str, _ClassQueue] = {
            name: _ClassQueue(weight)
            for name, weight in self.weights.items()
        }
        #: job id -> (priority class, client); present while the job is
        #: active (queued, backlogged, or between/within quanta).
        self._jobs: Dict[str, tuple] = {}
        #: Monotonic dispatch counter — the "clock" waits are measured in.
        self._dispatches = 0
        #: job id -> (enqueue dispatch stamp, allowed wait bound).
        self._waiting: Dict[str, tuple] = {}
        self._buckets: Dict[str, TokenBucket] = {}
        self._backlog: Dict[str, Deque[str]] = {}
        self._active_per_client: Dict[str, int] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def try_admit_rate(self, client: str) -> bool:
        """Charge one submission against ``client``'s token bucket."""
        if self._submit_rate is None:
            return True
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = self._buckets[client] = TokenBucket(
                    self._submit_rate, self._submit_burst,
                    clock=self._clock)
            allowed = bucket.try_acquire()
        if not allowed and self._metrics is not None:
            self._metrics.counter("scheduler.rate_limited").inc()
        return allowed

    def submit(self, job_id: str, priority: str, client: str) -> None:
        """Make a job runnable (or backlog it past the client's cap)."""
        with self._work:
            if job_id in self._jobs:
                raise ValueError(f"job {job_id} already scheduled")
            if priority not in self._classes:
                raise ValueError(f"unknown priority {priority!r}")
            self._jobs[job_id] = (priority, client)
            cap = self.max_active_per_client
            if (cap is not None
                    and self._active_per_client.get(client, 0) >= cap):
                self._backlog.setdefault(client, deque()).append(job_id)
                if self._metrics is not None:
                    self._metrics.counter("scheduler.deferred").inc()
                return
            self._admit_locked(job_id, priority, client)

    def _admit_locked(self, job_id: str, priority: str,
                      client: str) -> None:
        self._active_per_client[client] = (
            self._active_per_client.get(client, 0) + 1)
        self._enqueue_locked(job_id, priority)

    def _enqueue_locked(self, job_id: str, priority: str) -> None:
        cls = self._classes[priority]
        cls.queue.append(job_id)
        self._waiting[job_id] = (
            self._dispatches, self._wait_bound_locked(priority))
        self._work.notify()

    def _wait_bound_locked(self, priority: str) -> float:
        """Conservative DWRR bound on dispatches before this job's turn.

        A job entering a class queue of length *L* is served after at
        most ``ceil((L+1)/w)`` replenish cycles; each cycle dispatches at
        most ``sum(weights)`` quanta (every class busy).  The slack
        multiplier absorbs mid-cycle entry.
        """
        cls = self._classes[priority]
        position = len(cls.queue)  # includes this job (just appended)
        total_weight = sum(c.weight for c in self._classes.values())
        cycles = -(-position // cls.weight)  # ceil
        return STARVATION_SLACK * cycles * total_weight

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def next_job(self, timeout: Optional[float] = None) -> Optional[str]:
        """Pop the next job to receive a quantum (None on timeout/close)."""
        with self._work:
            if not self._work.wait_for(
                    lambda: self._closed or self._has_runnable_locked(),
                    timeout=timeout):
                return None
            if self._closed:
                return None
            return self._dispatch_locked()

    def _has_runnable_locked(self) -> bool:
        return any(cls.queue for cls in self._classes.values())

    def _dispatch_locked(self) -> str:
        runnable = [name for name, cls in self._classes.items()
                    if cls.queue]
        # Replenish: when no runnable class can pay for a quantum, every
        # runnable class gains its weight in credits (one DWRR cycle).
        if all(self._classes[name].deficit < 1.0 for name in runnable):
            for name in runnable:
                self._classes[name].deficit += self._classes[name].weight
        # Serve the runnable class with the largest deficit; ties break
        # by weight (higher class first) then name for determinism.
        chosen = max(
            (name for name in runnable
             if self._classes[name].deficit >= 1.0),
            key=lambda name: (self._classes[name].deficit,
                              self._classes[name].weight, name),
        )
        cls = self._classes[chosen]
        cls.deficit -= 1.0
        job_id = cls.queue.popleft()
        self._dispatches += 1
        enqueued_at, bound = self._waiting.pop(job_id)
        wait = self._dispatches - 1 - enqueued_at
        if self._metrics is not None:
            self._metrics.histogram("scheduler.wait_quanta").record(wait)
            self._metrics.counter("scheduler.quanta").inc()
            if wait > bound:
                self._metrics.counter("scheduler.starvation").inc()
        return job_id

    # ------------------------------------------------------------------
    # post-quantum bookkeeping
    # ------------------------------------------------------------------
    def requeue(self, job_id: str) -> None:
        """The quantum ended with work left: back of the class queue."""
        with self._work:
            entry = self._jobs.get(job_id)
            if entry is None:
                raise ValueError(f"job {job_id} is not scheduled")
            self._enqueue_locked(job_id, entry[0])

    def finish(self, job_id: str) -> None:
        """The job reached a terminal state: release its client slot."""
        with self._work:
            entry = self._jobs.pop(job_id, None)
            if entry is None:
                return
            priority, client = entry
            cls = self._classes[priority]
            if job_id in cls.queue:  # cancelled while queued
                cls.queue.remove(job_id)
                self._waiting.pop(job_id, None)
                backlogged = False
            else:
                backlogged = self._remove_backlog_locked(client, job_id)
            if not backlogged:
                remaining = self._active_per_client.get(client, 0) - 1
                if remaining > 0:
                    self._active_per_client[client] = remaining
                else:
                    self._active_per_client.pop(client, None)
            # Admit the freed slot to the client's backlog, if any.
            queue = self._backlog.get(client)
            while queue and self._client_has_room_locked(client):
                next_id = queue.popleft()
                self._admit_locked(next_id, self._jobs[next_id][0], client)
            if queue is not None and not queue:
                self._backlog.pop(client, None)
            # A class with no jobs at all forfeits its leftover deficit
            # (classic DWRR inactive-flow rule); a momentarily empty
            # queue — its only job is mid-quantum — keeps its credit.
            if not any(entry[0] == priority
                       for entry in self._jobs.values()):
                cls.deficit = 0.0

    def _remove_backlog_locked(self, client: str, job_id: str) -> bool:
        queue = self._backlog.get(client)
        if queue and job_id in queue:
            queue.remove(job_id)
            return True
        return False

    def _client_has_room_locked(self, client: str) -> bool:
        cap = self.max_active_per_client
        return (cap is None
                or self._active_per_client.get(client, 0) < cap)

    # ------------------------------------------------------------------
    # introspection / shutdown
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Jobs currently runnable or backlogged (not mid-quantum)."""
        with self._lock:
            return (sum(len(cls.queue) for cls in self._classes.values())
                    + sum(len(q) for q in self._backlog.values()))

    def queue_lengths(self) -> Dict[str, int]:
        with self._lock:
            return {name: len(cls.queue)
                    for name, cls in self._classes.items()}

    def snapshot(self) -> List[str]:
        """Job ids known to the scheduler (active in any sense)."""
        with self._lock:
            return sorted(self._jobs)

    def close(self) -> None:
        """Wake every blocked :meth:`next_job` with None (shutdown)."""
        with self._work:
            self._closed = True
            self._work.notify_all()
