"""The checking service: a worker fleet multiplexed fairly across jobs.

One :class:`CheckServer` owns a data directory (durable job state), a
:class:`~repro.service.scheduler.JobScheduler` (inter-job DWRR
fairness), and a fleet of worker threads.  A job runs as a sequence of
*quanta*: each quantum resumes the job's search from its strategy
checkpoint, runs at most ``quantum_executions`` more executions through
the ordinary :class:`~repro.checker.Checker` (which may itself fan out
over the parallel pool when the job config asks for ``workers``), and
flushes a fresh checkpoint.  Because checkpoint/resume reproduces the
uninterrupted search exactly (docs/resilience.md), the final quantum's
result is bit-identical to a direct ``Checker.run()`` with the same
config and seed — slicing buys fairness without changing verdicts.

Durability: every state transition is written to ``job.json`` before it
becomes observable, and the checkpoint is flushed by the strategy loop
before the quantum returns.  Killing the server at any point therefore
loses at most the in-flight quantum, which the next server replays
deterministically from the durable frontier.

Crashing jobs quarantine through the existing
:class:`~repro.resilience.CrashQuarantine`; their replayable crash
schedules land in the job's ``quarantine/`` directory and the first
counterexample of any kind is also saved as ``repro.json`` next to the
verdict.
"""

from __future__ import annotations

import ast
import importlib
import json
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.checker import Checker
from repro.core.model import Program
from repro.engine.persistence import save_schedule
from repro.obs import JsonlTraceWriter, MetricsRegistry, Observer
from repro.obs.events import (
    CheckpointWritten,
    CrashQuarantined,
    DivergenceClassified,
    Event,
    EventSink,
    ExecutionAborted,
    ExecutionFinished,
    ExecutionStarted,
    ExplorationFinished,
    ExplorationStarted,
    IcbSweep,
    JobQuantumFinished,
    JobStateChanged,
    JobSubmitted,
    SearchInterrupted,
    ShardFinished,
    ShardStarted,
    ThreadLeaked,
    ViolationFound,
)
from repro.resilience.signals import GracefulStop
from repro.service.jobs import (
    JobRecord,
    JobSpec,
    JobState,
    new_job_id,
)
from repro.service.scheduler import JobScheduler
from repro.service.store import JobStore

#: Default executions per scheduler quantum.
DEFAULT_QUANTUM = 50

#: Engine events forwarded into a job's ``events.jsonl`` per stream mode.
_LIFECYCLE_EVENTS = (
    ExplorationStarted, ExplorationFinished, ViolationFound,
    DivergenceClassified, CrashQuarantined, CheckpointWritten,
    ExecutionAborted, SearchInterrupted, IcbSweep, ShardStarted,
    ShardFinished, ThreadLeaked,
)
_EXECUTION_EVENTS = _LIFECYCLE_EVENTS + (ExecutionStarted,
                                         ExecutionFinished)


class RateLimitedError(Exception):
    """The client exceeded its submission rate; retry later."""


class JobSetupError(Exception):
    """The job spec cannot be turned into a runnable checker."""


def build_program(spec: str, factory_args) -> Program:
    """Resolve ``package.module:factory`` and build the program.

    The service-side twin of the CLI's program resolution, raising
    :class:`JobSetupError` (a FAILED job) instead of ``SystemExit``.
    """
    if ":" not in spec:
        raise JobSetupError(
            f"program spec must look like 'package.module:factory', "
            f"got {spec!r}"
        )
    module_name, _, attr = spec.partition(":")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise JobSetupError(f"cannot import {module_name!r}: {exc}") from exc
    factory = getattr(module, attr, None)
    if factory is None:
        raise JobSetupError(f"{module_name!r} has no attribute {attr!r}")
    if not callable(factory):
        raise JobSetupError(f"{spec} is not callable")
    args = []
    for raw in factory_args:
        if isinstance(raw, str):
            try:
                args.append(ast.literal_eval(raw))
                continue
            except (ValueError, SyntaxError):
                pass
        args.append(raw)
    try:
        result = factory(*args)
    except Exception as exc:
        raise JobSetupError(f"factory {spec} raised: {exc!r}") from exc
    if not isinstance(result, Program):
        raise JobSetupError(
            f"{spec} returned {type(result).__name__}, expected a Program"
        )
    return result


class _FilteredJobSink(EventSink):
    """Forwards an allowlist of engine events to the job's JSONL tail."""

    def __init__(self, writer: JsonlTraceWriter, allowed) -> None:
        self._writer = writer
        self._allowed = allowed

    def emit(self, event: Event) -> None:
        if self._allowed is None or isinstance(event, self._allowed):
            self._writer.emit(event)

    def close(self) -> None:
        self._writer.close()


class CheckServer:
    """Checking-as-a-service over one durable data directory."""

    def __init__(
        self,
        data_dir: Union[str, Path],
        *,
        fleet: int = 2,
        quantum_executions: int = DEFAULT_QUANTUM,
        weights: Optional[Dict[str, int]] = None,
        max_active_per_client: Optional[int] = None,
        submit_rate: Optional[float] = None,
        submit_burst: Optional[float] = None,
        retention_seconds: Optional[float] = None,
        poll_interval: float = 0.1,
        observer: Optional[Observer] = None,
    ) -> None:
        if fleet < 1:
            raise ValueError("fleet must be positive")
        if quantum_executions < 1:
            raise ValueError("quantum_executions must be positive")
        self.store = JobStore(data_dir)
        # Fail at boot, not at first save: a server on an unwritable
        # jobs directory would otherwise idle forever while silently
        # losing every submission.  Raises OSError for the CLI to turn
        # into a nonzero exit (docs/service.md).
        self.store.verify_writable()
        self.fleet = fleet
        self.quantum_executions = quantum_executions
        self.retention_seconds = retention_seconds
        self.poll_interval = poll_interval
        self.observer = observer
        self.metrics: MetricsRegistry = (
            observer.metrics if observer is not None else MetricsRegistry())
        self.scheduler = JobScheduler(
            weights=weights,
            max_active_per_client=max_active_per_client,
            submit_rate=submit_rate,
            submit_burst=submit_burst,
            metrics=self.metrics,
        )
        self._lock = threading.RLock()
        self._idle = threading.Condition(self._lock)
        #: In-memory authority for active records (durably mirrored).
        self._records: Dict[str, JobRecord] = {}
        #: job id -> GracefulStop of the quantum in flight.
        self._running: Dict[str, GracefulStop] = {}
        self._threads: List[threading.Thread] = []
        self._shutdown = threading.Event()
        self._started = False
        self._recover()

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Re-queue every non-terminal job left by a previous server."""
        for record in self.store.recover():
            self._records[record.id] = record
            if record.cancel_requested:
                # The old server died between the cancel request and its
                # finalization; complete the cancel instead of resuming.
                with self._lock:
                    self.scheduler.submit(record.id, record.spec.priority,
                                          record.spec.client)
                    self._finalize_locked(record, JobState.CANCELLED,
                                          error="cancelled by client")
                continue
            self.scheduler.submit(record.id, record.spec.priority,
                                  record.spec.client)
            self.metrics.counter("jobs.recovered").inc()

    # ------------------------------------------------------------------
    # client surface (also used by the transports)
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec,
               job_id: Optional[str] = None) -> JobRecord:
        """Validate, persist, and enqueue one job; returns its record."""
        spec.validate()
        if not self.scheduler.try_admit_rate(spec.client):
            self.metrics.counter("jobs.rate_limited").inc()
            raise RateLimitedError(
                f"client {spec.client!r} exceeded the submission rate")
        record = JobRecord(id=job_id or new_job_id(), spec=spec)
        with self._lock:
            self.store.create(record)
            self._records[record.id] = record
            self.scheduler.submit(record.id, spec.priority, spec.client)
            self.metrics.counter("jobs.submitted").inc()
            self.metrics.counter(f"jobs.submitted.{spec.priority}").inc()
        self._emit_job_event(record.id, JobSubmitted(
            job=record.id, program=spec.program, priority=spec.priority,
            client=spec.client))
        return record

    def job(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._records.get(job_id)
            if record is not None:
                return record
        return self.store.load(job_id)

    def jobs(self) -> List[JobRecord]:
        with self._lock:
            active = dict(self._records)
        listed = []
        for record in self.store.jobs():
            listed.append(active.get(record.id, record))
        return listed

    def result(self, job_id: str) -> Optional[dict]:
        return self.store.load_result(job_id)

    def cancel(self, job_id: str) -> JobRecord:
        """Request cancellation; takes effect at the next execution
        boundary of the running quantum (immediately for queued jobs)."""
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                record = self.store.load(job_id)
            if record.state.terminal:
                return record
            record.cancel_requested = True
            stop = self._running.get(job_id)
            if stop is not None:
                stop.request("cancelled")
                self.store.save(record)
            else:
                # Queued (or between quanta): cancel without a worker.
                self._finalize_locked(record, JobState.CANCELLED,
                                      error="cancelled by client")
        return record

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker fleet and the transport poll thread."""
        with self._lock:
            if self._started:
                return
            self._started = True
        for index in range(self.fleet):
            thread = threading.Thread(
                target=self._worker_loop, name=f"check-worker-{index}",
                daemon=True)
            thread.start()
            self._threads.append(thread)
        poll = threading.Thread(target=self._poll_loop,
                                name="check-poll", daemon=True)
        poll.start()
        self._threads.append(poll)

    def stop(self, *, timeout: float = 30.0) -> None:
        """Graceful shutdown: running quanta checkpoint and requeue."""
        self._shutdown.set()
        with self._lock:
            for stop in self._running.values():
                stop.request("shutdown")
        self.scheduler.close()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = [t for t in self._threads if t.is_alive()]
        self._dump_metrics()

    def active_jobs(self) -> int:
        with self._lock:
            return sum(1 for r in self._records.values()
                       if not r.state.terminal)

    def run_until_idle(self, *, timeout: Optional[float] = None) -> None:
        """Start (if needed) and block until every job is terminal."""
        self.start()
        with self._idle:
            if not self._idle.wait_for(
                    lambda: all(r.state.terminal
                                for r in self._records.values()),
                    timeout=timeout):
                raise TimeoutError(
                    f"jobs still active after {timeout}s: "
                    f"{[r.id for r in self._records.values() if not r.state.terminal]}")

    def wait(self, job_id: str, *,
             timeout: Optional[float] = None) -> JobRecord:
        """Block until one job is terminal; returns its final record."""
        with self._idle:
            if not self._idle.wait_for(
                    lambda: self._records.get(job_id) is None
                    or self._records[job_id].state.terminal,
                    timeout=timeout):
                raise TimeoutError(f"job {job_id} still active")
        return self.job(job_id)

    def serve_forever(self, *,
                      idle_exit_seconds: Optional[float] = None) -> None:
        """Run until :meth:`stop`, SIGINT/SIGTERM, or a long idle."""
        self.start()
        last_active = time.monotonic()
        with GracefulStop() as stop:
            while not (stop.requested or self._shutdown.is_set()):
                if self.active_jobs() > 0:
                    last_active = time.monotonic()
                elif (idle_exit_seconds is not None
                        and time.monotonic() - last_active
                        >= idle_exit_seconds):
                    break
                time.sleep(self.poll_interval)
        if not self._shutdown.is_set():
            self.stop()

    # ------------------------------------------------------------------
    # background loops
    # ------------------------------------------------------------------
    def _poll_loop(self) -> None:
        """Inbox/cancel transport polling plus periodic housekeeping."""
        last_dump = 0.0
        while not self._shutdown.is_set():
            try:
                for payload in self.store.take_submissions():
                    self._admit_inbox(payload)
                for job_id in self.store.take_cancels():
                    try:
                        self.cancel(job_id)
                    except KeyError:
                        pass  # cancel for a job we never saw
                if self.retention_seconds is not None:
                    self.store.sweep_terminal_jobs(self.retention_seconds)
                now = time.monotonic()
                if now - last_dump >= 2.0:
                    self._dump_metrics()
                    last_dump = now
            except Exception:  # pragma: no cover - housekeeping armor
                pass
            self._shutdown.wait(self.poll_interval)

    def _admit_inbox(self, payload: dict) -> None:
        spec = JobSpec.from_dict(payload.get("spec", {}))
        job_id = payload.get("id") or new_job_id()
        try:
            self.submit(spec, job_id=job_id)
        except RateLimitedError as exc:
            self._record_rejection(job_id, spec, str(exc))
        except (ValueError, KeyError) as exc:
            self._record_rejection(job_id, spec, f"invalid job: {exc}")

    def _record_rejection(self, job_id: str, spec: JobSpec,
                          error: str) -> None:
        """A filesystem submission the server refused still needs a
        durable FAILED record — the client polls for it."""
        try:
            record = JobRecord(id=job_id, spec=spec)
        except ValueError:
            return  # unusable id; nothing to persist under
        record.transition(JobState.FAILED)
        record.error = error
        with self._lock:
            try:
                self.store.create(record)
            except ValueError:
                return  # duplicate id; first record wins
            self.metrics.counter("jobs.failed").inc()
        self._emit_job_event(job_id, JobStateChanged(
            job=job_id, state=record.state.value, verdict=None,
            error=error))

    def _worker_loop(self) -> None:
        while not self._shutdown.is_set():
            job_id = self.scheduler.next_job(timeout=0.2)
            if job_id is None:
                continue
            try:
                self._run_quantum(job_id)
            except Exception as exc:  # defensive: a job bug must not
                self._fail_job(job_id, f"service worker error: {exc!r}")

    # ------------------------------------------------------------------
    # the quantum
    # ------------------------------------------------------------------
    def _run_quantum(self, job_id: str) -> None:
        with self._lock:
            record = self._records[job_id]
            if record.state.terminal:
                self.scheduler.finish(job_id)
                return
            if record.cancel_requested:
                self._finalize_locked(record, JobState.CANCELLED,
                                      error="cancelled by client")
                return
            if record.state is JobState.QUEUED:
                record.transition(JobState.RUNNING)
                self._emit_job_event(job_id, JobStateChanged(
                    job=job_id, state=record.state.value, verdict=None,
                    error=None))
            stop = GracefulStop(install=False)
            self._running[job_id] = stop
            self.store.save(record)
            spec = record.spec

        checker = None
        observer = None
        try:
            program = build_program(spec.program, spec.factory_args)
            config = dict(spec.config)
            user_max = config.pop("max_executions", None)
            cap = record.executions + self.quantum_executions
            if user_max is not None:
                cap = min(cap, int(user_max))
            observer = self._job_observer(job_id, spec)
            checkpoint = self.store.checkpoint_path(job_id)
            checker = Checker(
                program,
                **config,
                max_executions=cap,
                checkpoint_path=str(checkpoint),
                checkpoint_interval=self.quantum_executions,
                quarantine_dir=str(self.store.quarantine_dir(job_id)),
                handle_signals=False,
                observer=observer,
                external_stop=stop,
            )
            # Resume whenever *any* snapshot is loadable — a corrupt
            # primary falls back to its .prev rotation sibling inside
            # Checker (checkpoint.recovered event + warning).
            from repro.resilience import CheckpointStore

            resume_from = (str(checkpoint)
                           if CheckpointStore(checkpoint).recoverable()
                           else None)
            result = checker.run(resume_from=resume_from)
        except JobSetupError as exc:
            self._fail_job(job_id, str(exc))
            return
        except (TypeError, ValueError) as exc:
            self._fail_job(job_id, f"invalid checker config: {exc}")
            return
        finally:
            if observer is not None:
                observer.close()

        self._fold_quantum(
            job_id, checker, result,
            user_max=None if user_max is None else int(user_max))

    def _job_observer(self, job_id: str, spec: JobSpec) -> Observer:
        """Per-quantum observer streaming to the job's ``events.jsonl``."""
        handle = open(self.store.events_path(job_id), "a",
                      encoding="utf-8")
        writer = JsonlTraceWriter(handle)
        writer._owns_handle = True  # close() must release the append fd
        allowed = {
            "lifecycle": _LIFECYCLE_EVENTS,
            "executions": _EXECUTION_EVENTS,
            "decisions": None,  # everything
        }[spec.stream]
        return Observer(sink=_FilteredJobSink(writer, allowed))

    def _fold_quantum(self, job_id: str, checker: Checker, result,
                      *, user_max: Optional[int]) -> None:
        exploration = result.exploration
        with self._lock:
            record = self._records[job_id]
            self._running.pop(job_id, None)
            record.quanta += 1
            record.executions = exploration.executions
            record.transitions = exploration.transitions
            reason = exploration.stop_reason
            quantum_only_limit = (
                reason == "max-executions"
                and (user_max is None
                     or exploration.executions < user_max))
            if record.cancel_requested:
                self._write_result(job_id, checker, result,
                                   verdict=None, error="cancelled")
                self._finalize_locked(record, JobState.CANCELLED,
                                      error="cancelled by client")
                return
            if reason == "interrupted":
                # Server shutdown mid-quantum: stay RUNNING durably; the
                # next server resumes from the flushed checkpoint.
                self.store.save(record)
                if not self._shutdown.is_set():  # pragma: no cover
                    self.scheduler.requeue(job_id)
                return
            if quantum_only_limit:
                self.store.save(record)
                self.metrics.counter("jobs.requeued").inc()
                self._emit_job_event(job_id, JobQuantumFinished(
                    job=job_id, quantum=record.quanta,
                    executions=record.executions,
                    transitions=record.transitions, requeued=True))
                self.scheduler.requeue(job_id)
                return
            # Terminal: exhausted, found what it was looking for, or hit
            # a job-level (user) limit.
            verdict = "pass" if result.ok else "fail"
            self._write_result(job_id, checker, result, verdict=verdict,
                               error=None)
            self._emit_job_event(job_id, JobQuantumFinished(
                job=job_id, quantum=record.quanta,
                executions=record.executions,
                transitions=record.transitions, requeued=False))
            record.verdict = verdict
            self._finalize_locked(record, JobState.DONE)

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------
    def _fail_job(self, job_id: str, error: str) -> None:
        with self._lock:
            record = self._records.get(job_id)
            if record is None or record.state.terminal:
                return
            self._running.pop(job_id, None)
            try:
                self.store.save_result(job_id, {
                    "job": job_id, "verdict": None, "ok": False,
                    "error": error,
                })
            except OSError:
                # ENOSPC/EIO while recording a failure: the in-memory
                # record must still reach FAILED (and wake waiters), or
                # the disk error wedges the worker loop on this job.
                pass
            self._finalize_locked(record, JobState.FAILED, error=error)

    def _finalize_locked(self, record: JobRecord, state: JobState,
                         *, error: Optional[str] = None) -> None:
        record.transition(state)
        if error is not None:
            record.error = error
        try:
            self.store.save(record)
            self.store.cleanup_job(record.id)
        except OSError:
            # Degrade, never die: the record is terminal in memory and
            # the next boot's recovery re-finishes anything the disk
            # refused to acknowledge here.
            pass
        self.scheduler.finish(record.id)
        self.metrics.counter(f"jobs.{state.value}").inc()
        self._emit_job_event(record.id, JobStateChanged(
            job=record.id, state=state.value, verdict=record.verdict,
            error=record.error))
        self._idle.notify_all()

    def _write_result(self, job_id: str, checker: Checker, result,
                      *, verdict: Optional[str],
                      error: Optional[str]) -> None:
        exploration = result.exploration
        payload = {
            "job": job_id,
            "program": exploration.program_name,
            "policy": exploration.policy_name,
            "strategy": exploration.strategy_name,
            "verdict": verdict,
            "ok": result.ok,
            "error": error,
            "executions": exploration.executions,
            "transitions": exploration.transitions,
            "complete": exploration.complete,
            "stop_reason": exploration.stop_reason,
            "first_violation_execution":
                exploration.first_violation_execution,
            "outcomes": {outcome.value: count for outcome, count
                         in exploration.outcomes.items()},
            "warnings": list(result.warnings),
            "report": result.report(),
        }
        counterexample = result.violation or result.crashed or result.divergence
        if counterexample is not None:
            payload["counterexample_schedule"] = counterexample.schedule
            try:
                path = save_schedule(
                    self.store.repro_path(job_id), checker.program,
                    counterexample,
                    policy_name=checker.policy_factory().name,
                    config=checker.config)
                payload["repro_file"] = str(path)
            except Exception:  # pragma: no cover - artifact best-effort
                pass
        self.store.save_result(job_id, payload)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def _emit_job_event(self, job_id: str, event: Event) -> None:
        """Append one service event to the job's JSONL tail (and the
        server observer's sink, when one is attached)."""
        try:
            with open(self.store.events_path(job_id), "a",
                      encoding="utf-8") as handle:
                handle.write(json.dumps(event.to_dict(), default=str))
                handle.write("\n")
        except OSError:  # pragma: no cover - tail is best-effort
            pass
        if self.observer is not None and self.observer.sink is not None:
            self.observer.sink.emit(event)

    def _dump_metrics(self) -> None:
        try:
            self.metrics.dump_json(str(self.store.root / "metrics.json"))
        except OSError:  # pragma: no cover
            pass

    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Liveness/fairness summary (the ``/healthz`` payload)."""
        counters = self.metrics.to_dict()["counters"]
        return {
            "active_jobs": self.active_jobs(),
            "queues": self.scheduler.queue_lengths(),
            "fleet": self.fleet,
            "quantum_executions": self.quantum_executions,
            "starvation": counters.get("scheduler.starvation", 0),
            "quanta": counters.get("scheduler.quanta", 0),
        }
