"""Minimal localhost HTTP facade over a :class:`CheckServer`.

Stdlib-only (``http.server``), intended for loopback use by the batch
client and for poking with ``curl`` — not an internet-facing API.

Routes (all JSON)::

    POST /v1/jobs                submit {spec: {...}} -> 201 job record
                                 (429 when the client is rate limited,
                                  400 on an invalid spec)
    GET  /v1/jobs                list job records
    GET  /v1/jobs/<id>           one job record (404 unknown)
    GET  /v1/jobs/<id>/result    final result payload (404 until done)
    GET  /v1/jobs/<id>/events?offset=N
                                 events.jsonl tail from byte N; replies
                                 {events: [...], offset: M} for resume
    POST /v1/jobs/<id>/cancel    request cancellation -> job record
    GET  /healthz                liveness + fairness summary
    GET  /metrics                full metrics registry dump
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.service.jobs import JobSpec
from repro.service.server import CheckServer, RateLimitedError

_JOB_ROUTE = re.compile(
    r"^/v1/jobs/(?P<id>[^/]+)(?:/(?P<sub>result|events|cancel))?$")


class _Handler(BaseHTTPRequestHandler):
    """One request; the server attribute carries the CheckServer."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    # quiet: the service has its own telemetry; per-request stderr noise
    # would swamp the console the operator started `repro serve` in.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    @property
    def check_server(self) -> CheckServer:
        return self.server.check_server  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        path, _, query = self.path.partition("?")
        if path == "/healthz":
            self._reply(200, self.check_server.health())
            return
        if path == "/metrics":
            self._reply(200, self.check_server.metrics.to_dict())
            return
        if path == "/v1/jobs":
            self._reply(200, {"jobs": [r.to_dict()
                                       for r in self.check_server.jobs()]})
            return
        match = _JOB_ROUTE.match(path)
        if match is None:
            self._reply(404, {"error": f"no route {path!r}"})
            return
        job_id, sub = match.group("id"), match.group("sub")
        if sub == "cancel":
            self._reply(405, {"error": "cancel requires POST"})
            return
        try:
            record = self.check_server.job(job_id)
        except (KeyError, ValueError):
            self._reply(404, {"error": f"unknown job {job_id!r}"})
            return
        if sub is None:
            self._reply(200, record.to_dict())
        elif sub == "result":
            result = self.check_server.result(job_id)
            if result is None:
                self._reply(404, {"error": "result not ready",
                                  "state": record.state.value})
            else:
                self._reply(200, result)
        elif sub == "events":
            offset = 0
            for part in query.split("&"):
                if part.startswith("offset="):
                    try:
                        offset = max(0, int(part[len("offset="):]))
                    except ValueError:
                        pass
            events, new_offset = self._tail_events(job_id, offset)
            self._reply(200, {"events": events, "offset": new_offset,
                              "state": record.state.value})

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        path = self.path.partition("?")[0]
        if path == "/v1/jobs":
            self._submit()
            return
        match = _JOB_ROUTE.match(path)
        if match is not None and match.group("sub") == "cancel":
            try:
                record = self.check_server.cancel(match.group("id"))
            except (KeyError, ValueError):
                self._reply(404, {"error": "unknown job"})
                return
            self._reply(200, record.to_dict())
            return
        self._reply(404, {"error": f"no route {path!r}"})

    # ------------------------------------------------------------------
    def _submit(self) -> None:
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
            spec = JobSpec.from_dict(payload.get("spec", payload))
        except (ValueError, TypeError) as exc:
            self._reply(400, {"error": f"bad request body: {exc}"})
            return
        try:
            record = self.check_server.submit(spec)
        except RateLimitedError as exc:
            self._reply(429, {"error": str(exc)})
            return
        except ValueError as exc:
            self._reply(400, {"error": str(exc)})
            return
        self._reply(201, record.to_dict())

    def _tail_events(self, job_id: str, offset: int) -> Tuple[list, int]:
        path = self.check_server.store.events_path(job_id)
        events = []
        try:
            with open(path, "r", encoding="utf-8") as handle:
                handle.seek(offset)
                for line in handle:
                    if not line.endswith("\n"):
                        break  # mid-append; retry from here next poll
                    offset += len(line.encode("utf-8"))
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        events.append(json.loads(line))
                    except json.JSONDecodeError:
                        continue
        except OSError:
            pass
        return events, offset

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, default=str).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class ServiceHttpServer:
    """Owns the listening socket and its serving thread."""

    def __init__(self, check_server: CheckServer, *,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.check_server = check_server  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="check-http",
            daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
