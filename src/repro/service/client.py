"""Batch clients for the checking service.

Two transports, one surface:

* :class:`FilesystemClient` — shares the server's data directory.
  Submissions are atomic drops into ``inbox/``, cancels are flag files,
  and status/result/events are read straight from the durable job
  directories.  Works across processes and across server restarts with
  no socket at all.
* :class:`HttpClient` — talks to ``repro serve --http`` over localhost
  using only ``urllib`` (no third-party deps).

Both expose ``submit / status / list_jobs / result / cancel`` plus the
blocking helpers ``wait`` (poll until terminal) and ``watch`` (generator
over the job's live event stream).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.service.jobs import JobSpec, new_job_id
from repro.service.server import RateLimitedError
from repro.service.store import JobStore

#: States after which a job's record stops changing.
_TERMINAL = ("done", "failed", "cancelled")


class ServiceClientError(Exception):
    """Transport-level or server-side error talking to the service."""


class ServiceClient:
    """Shared polling logic; subclasses provide the transport verbs."""

    poll_interval = 0.2

    # -- transport verbs (subclass responsibility) ---------------------
    def submit(self, spec: JobSpec) -> str:
        raise NotImplementedError

    def status(self, job_id: str) -> Dict[str, object]:
        """The job record; raises KeyError while unknown."""
        raise NotImplementedError

    def list_jobs(self) -> List[Dict[str, object]]:
        raise NotImplementedError

    def result(self, job_id: str) -> Optional[Dict[str, object]]:
        raise NotImplementedError

    def cancel(self, job_id: str) -> None:
        raise NotImplementedError

    def read_events(self, job_id: str,
                    offset: int) -> Tuple[List[dict], int]:
        """Events appended past ``offset``; returns (events, new offset)."""
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------
    def wait(self, job_id: str, *,
             timeout: Optional[float] = None) -> Dict[str, object]:
        """Block until the job is terminal; returns its final record.

        Tolerates a not-yet-admitted job (filesystem submissions appear
        only once the server drains its inbox).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                record = self.status(job_id)
                if record.get("state") in _TERMINAL:
                    return record
            except KeyError:
                pass  # submitted but not yet admitted
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} not terminal after {timeout}s")
            time.sleep(self.poll_interval)

    def watch(self, job_id: str, *,
              timeout: Optional[float] = None) -> Iterator[dict]:
        """Yield the job's events live until it reaches a terminal state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        offset = 0
        while True:
            events, offset = self.read_events(job_id, offset)
            for event in events:
                yield event
            try:
                state = self.status(job_id).get("state")
            except KeyError:
                state = None
            if state in _TERMINAL:
                # Drain whatever the finalizer appended after our read.
                events, offset = self.read_events(job_id, offset)
                for event in events:
                    yield event
                return
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(f"watch of {job_id} timed out")
            time.sleep(self.poll_interval)


class FilesystemClient(ServiceClient):
    """Client over a shared data directory (no server socket needed)."""

    def __init__(self, data_dir: Union[str, Path]) -> None:
        self.store = JobStore(data_dir)

    def submit(self, spec: JobSpec) -> str:
        spec.validate()
        job_id = new_job_id()
        self.store.drop_submission(spec, job_id)
        return job_id

    def status(self, job_id: str) -> Dict[str, object]:
        return self.store.load(job_id).to_dict()

    def list_jobs(self) -> List[Dict[str, object]]:
        return [record.to_dict() for record in self.store.jobs()]

    def result(self, job_id: str) -> Optional[Dict[str, object]]:
        return self.store.load_result(job_id)

    def cancel(self, job_id: str) -> None:
        self.store.drop_cancel(job_id)

    def read_events(self, job_id: str,
                    offset: int) -> Tuple[List[dict], int]:
        path = self.store.events_path(job_id)
        events: List[dict] = []
        try:
            with open(path, "r", encoding="utf-8") as handle:
                handle.seek(offset)
                for line in handle:
                    if not line.endswith("\n"):
                        break  # mid-append; re-read from here next poll
                    offset += len(line.encode("utf-8"))
                    stripped = line.strip()
                    if not stripped:
                        continue
                    try:
                        events.append(json.loads(stripped))
                    except json.JSONDecodeError:
                        continue
        except OSError:
            pass
        return events, offset


class HttpClient(ServiceClient):
    """Client over the localhost HTTP facade (``repro serve --http``)."""

    def __init__(self, url: str, *, request_timeout: float = 10.0) -> None:
        self.base = url.rstrip("/")
        self.request_timeout = request_timeout

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base + path, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(
                    request, timeout=self.request_timeout) as response:
                return json.loads(response.read() or b"{}")
        except urllib.error.HTTPError as exc:
            body = exc.read()
            try:
                message = json.loads(body).get("error", "")
            except (ValueError, AttributeError):
                message = body.decode("utf-8", "replace")
            if exc.code == 404:
                raise KeyError(message or path) from None
            if exc.code == 429:
                raise RateLimitedError(message) from None
            raise ServiceClientError(
                f"{method} {path} -> {exc.code}: {message}") from None
        except urllib.error.URLError as exc:
            raise ServiceClientError(
                f"cannot reach service at {self.base}: {exc.reason}"
            ) from None

    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> str:
        record = self._request("POST", "/v1/jobs", {"spec": spec.to_dict()})
        return record["id"]

    def status(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def list_jobs(self) -> List[Dict[str, object]]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def result(self, job_id: str) -> Optional[Dict[str, object]]:
        try:
            return self._request("GET", f"/v1/jobs/{job_id}/result")
        except KeyError:
            return None

    def cancel(self, job_id: str) -> None:
        self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def read_events(self, job_id: str,
                    offset: int) -> Tuple[List[dict], int]:
        payload = self._request(
            "GET", f"/v1/jobs/{job_id}/events?offset={offset}")
        return payload.get("events", []), payload.get("offset", offset)

    def health(self) -> dict:
        return self._request("GET", "/healthz")


def make_client(*, data_dir: Optional[Union[str, Path]] = None,
                url: Optional[str] = None) -> ServiceClient:
    """Pick the transport from whichever coordinate the caller has."""
    if (data_dir is None) == (url is None):
        raise ValueError("pass exactly one of data_dir or url")
    if url is not None:
        return HttpClient(url)
    return FilesystemClient(data_dir)
