"""Job model: what the checking service schedules, runs, and persists.

A *job* is one checking request — a program factory reference plus a
checker configuration — owned by a client and tagged with a priority
class.  The service multiplexes many jobs over a bounded worker fleet in
execution-count *quanta* (docs/service.md), so a job's lifecycle is a
small state machine:

    QUEUED ──▶ RUNNING ──▶ DONE | FAILED | CANCELLED
      │                         ▲
      └─────────────────────────┘  (rejected / cancelled before start)

``RUNNING`` covers the whole sliced execution: between quanta the job
waits in the scheduler but remains ``RUNNING`` to its client.  Every
transition is persisted through the job store before it is observable,
so a restarted server resumes exactly where the durable state says.

``DONE`` means the check itself finished — the *verdict* ("pass" or
"fail") says what it found.  ``FAILED`` is reserved for infrastructure
errors (unresolvable factory, invalid config, crash of the service
worker), which are bugs in the request or the service, not the program
under test.
"""

from __future__ import annotations

import enum
import os
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class JobState(str, enum.Enum):
    """Lifecycle states of one checking job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


#: Legal state-machine transitions (enforced by :meth:`JobRecord.transition`).
_TRANSITIONS = {
    JobState.QUEUED: {JobState.RUNNING, JobState.CANCELLED, JobState.FAILED},
    JobState.RUNNING: {JobState.DONE, JobState.FAILED, JobState.CANCELLED},
    JobState.DONE: set(),
    JobState.FAILED: set(),
    JobState.CANCELLED: set(),
}

#: Priority classes and their deficit-round-robin weights: for every
#: quantum a ``bulk`` job receives, ``default`` jobs receive up to 3 and
#: ``smoke`` jobs up to 6 (docs/service.md#fairness).
PRIORITY_WEIGHTS: Dict[str, int] = {"smoke": 6, "default": 3, "bulk": 1}

#: Checker keyword arguments a job config may set.  Everything else —
#: checkpointing, quarantine, signal handling, observers — belongs to
#: the service, and silently accepting unknown keys would hide typos
#: ("max_execution") as unconfigured runs.
ALLOWED_CONFIG_KEYS = frozenset({
    "fairness", "k_yield", "strategy", "preemption_bound", "depth_bound",
    "nonfair_completion", "max_executions", "max_seconds",
    "stop_on_first_violation", "stop_on_first_divergence",
    "random_executions", "seed", "workers", "shard_target",
    "execution_budget_seconds", "max_crashes",
    "snapshot_cache", "snapshot_interval", "snapshot_memory_mb",
})


def new_job_id() -> str:
    """A collision-resistant job id, sortable by submission time."""
    return f"job-{int(time.time() * 1000):013x}-{uuid.uuid4().hex[:8]}"


def _validate_job_id(job_id: str) -> None:
    # Job ids become directory names; reject anything that could escape
    # the jobs root or collide with bookkeeping files.
    if (not job_id or job_id != os.path.basename(job_id)
            or job_id.startswith(".") or "/" in job_id or "\\" in job_id):
        raise ValueError(f"invalid job id {job_id!r}")


@dataclass
class JobSpec:
    """The immutable request half of a job."""

    #: Factory reference ``package.module:factory`` (same form the CLI
    #: ``check`` command takes); resolved inside the service worker.
    program: str
    #: Positional factory arguments (JSON values).
    factory_args: List[object] = field(default_factory=list)
    #: Checker keyword arguments (subset: :data:`ALLOWED_CONFIG_KEYS`).
    config: Dict[str, object] = field(default_factory=dict)
    #: Priority class: ``smoke`` | ``default`` | ``bulk``.
    priority: str = "default"
    #: Client identity for rate limiting / per-client caps.
    client: str = "anonymous"
    #: Event-stream verbosity of ``events.jsonl``: ``lifecycle`` (default,
    #: exploration milestones + job transitions), ``executions`` (adds
    #: per-execution start/finish), or ``decisions`` (everything — heavy).
    stream: str = "lifecycle"

    def validate(self) -> None:
        if ":" not in self.program:
            raise ValueError(
                f"program spec must look like 'package.module:factory', "
                f"got {self.program!r}"
            )
        if self.priority not in PRIORITY_WEIGHTS:
            raise ValueError(
                f"unknown priority {self.priority!r} "
                f"(expected one of {', '.join(sorted(PRIORITY_WEIGHTS))})"
            )
        unknown = set(self.config) - ALLOWED_CONFIG_KEYS
        if unknown:
            raise ValueError(
                f"unknown config keys: {', '.join(sorted(unknown))}"
            )
        if not isinstance(self.client, str) or not self.client:
            raise ValueError("client must be a non-empty string")
        if self.stream not in ("lifecycle", "executions", "decisions"):
            raise ValueError(
                f"unknown stream mode {self.stream!r} "
                f"(expected lifecycle, executions, or decisions)"
            )

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "factory_args": list(self.factory_args),
            "config": dict(self.config),
            "priority": self.priority,
            "client": self.client,
            "stream": self.stream,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        return cls(
            program=data.get("program", ""),
            factory_args=list(data.get("factory_args", [])),
            config=dict(data.get("config", {})),
            priority=data.get("priority", "default"),
            client=data.get("client", "anonymous"),
            stream=data.get("stream", "lifecycle"),
        )


@dataclass
class JobRecord:
    """The mutable, durable half of a job (persisted as ``job.json``)."""

    id: str
    spec: JobSpec
    state: JobState = JobState.QUEUED
    #: Progress counters, updated after every quantum.
    executions: int = 0
    transitions: int = 0
    quanta: int = 0
    #: "pass" / "fail" once DONE; None before.
    verdict: Optional[str] = None
    #: Human-readable cause for FAILED / CANCELLED states.
    error: Optional[str] = None
    #: Set by a cancel request; the running quantum stops at its next
    #: execution boundary and the job finalizes as CANCELLED.
    cancel_requested: bool = False
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    def __post_init__(self) -> None:
        _validate_job_id(self.id)

    # ------------------------------------------------------------------
    def transition(self, target: JobState) -> None:
        """Move to ``target``, enforcing the lifecycle state machine."""
        if target is self.state:
            return
        if target not in _TRANSITIONS[self.state]:
            raise ValueError(
                f"job {self.id}: illegal transition "
                f"{self.state.value} -> {target.value}"
            )
        self.state = target
        now = time.time()
        if target is JobState.RUNNING and self.started_at is None:
            self.started_at = now
        if target.terminal:
            self.finished_at = now

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "spec": self.spec.to_dict(),
            "state": self.state.value,
            "executions": self.executions,
            "transitions": self.transitions,
            "quanta": self.quanta,
            "verdict": self.verdict,
            "error": self.error,
            "cancel_requested": self.cancel_requested,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobRecord":
        return cls(
            id=data["id"],
            spec=JobSpec.from_dict(data.get("spec", {})),
            state=JobState(data.get("state", "queued")),
            executions=data.get("executions", 0),
            transitions=data.get("transitions", 0),
            quanta=data.get("quanta", 0),
            verdict=data.get("verdict"),
            error=data.get("error"),
            cancel_requested=data.get("cancel_requested", False),
            created_at=data.get("created_at", 0.0),
            started_at=data.get("started_at"),
            finished_at=data.get("finished_at"),
        )
