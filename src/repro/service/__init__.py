"""Checking-as-a-service: async jobs over the exploration substrate.

A :class:`CheckServer` owns a durable data directory and a bounded
worker fleet; clients submit checking *jobs* (program factory + checker
config + priority class) and the server slices the fleet across them in
execution-count quanta under deficit-weighted round robin, so a smoke
check never starves behind a bulk sweep.  See ``docs/service.md``.

In-process use::

    from repro.service import CheckServer, JobSpec

    server = CheckServer(data_dir, fleet=2)
    record = server.submit(JobSpec(
        program="repro.workloads.dining:dining_philosophers",
        factory_args=[2], config={"strategy": "dfs"}))
    server.run_until_idle(timeout=60)
    print(server.result(record.id)["verdict"])

Out of process, ``repro serve`` runs the server and ``repro job
submit/status/watch/result/cancel`` talk to it over the filesystem
transport (shared data dir) or localhost HTTP (``--http``).
"""

from repro.service.jobs import (
    ALLOWED_CONFIG_KEYS,
    PRIORITY_WEIGHTS,
    JobRecord,
    JobSpec,
    JobState,
    new_job_id,
)
from repro.service.scheduler import (
    STARVATION_SLACK,
    JobScheduler,
    TokenBucket,
)
from repro.service.server import (
    CheckServer,
    JobSetupError,
    RateLimitedError,
    build_program,
)
from repro.service.store import JobStore

__all__ = [
    "ALLOWED_CONFIG_KEYS",
    "CheckServer",
    "JobRecord",
    "JobScheduler",
    "JobSetupError",
    "JobSpec",
    "JobState",
    "JobStore",
    "PRIORITY_WEIGHTS",
    "RateLimitedError",
    "STARVATION_SLACK",
    "TokenBucket",
    "build_program",
    "new_job_id",
]
