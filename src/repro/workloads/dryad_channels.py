"""Dryad-style dataflow channels (substitute for the proprietary Dryad).

Dryad [15] is a distributed execution engine whose vertices exchange data
through channels/FIFOs; the paper checks its channel layer ("Dryad
Channels", "Dryad Fifo" in Table 1) and finds four bugs (Table 3).  Dryad
is closed-source, so we build the closest open equivalent: a bounded FIFO
with lock + timeout-event flow control, connected into vertex pipelines
(source → transform → sink).  The structure matches what the paper
describes — long-running vertex threads with retry loops (nonterminating
without fairness) and a shutdown path that must drain in-flight items.

Seeded bugs (the ``bug`` parameter), one mutation each, mirroring the
bug taxonomy of Table 3:

* ``bug=1`` — check-then-act race in ``recv``: the item is popped after
  releasing the lock; two consumers can pop the same item (or crash on an
  empty deque).
* ``bug=2`` — capacity check outside the lock in ``send``: concurrent
  senders overflow the channel past its bound (caught by the capacity
  invariant monitor).
* ``bug=3`` — shutdown drains incorrectly: ``recv`` returns
  end-of-stream as soon as the channel is closed, even with items still
  queued; the sink silently loses data.
* ``bug=4`` — the *incorrect fix* of bug 3 (as in the paper, where Dryad
  bug 4 was introduced by the developer's fix of bug 3): the reordered
  closed-check path returns while still holding the channel lock, and
  every other vertex deadlocks on the channel.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

from repro.engine.monitors import invariant
from repro.runtime.api import check, join, pause
from repro.runtime.program import VMProgram
from repro.sync.event import Event
from repro.sync.mutex import Mutex

#: Timeout used on flow-control waits; any finite value works (it only
#: marks the wait as a yielding operation, per CHESS's inference rule).
_WAIT_TIMEOUT = 10.0


class FifoChannel:
    """A bounded FIFO between dataflow vertices."""

    def __init__(self, capacity: int = 2, name: str = "fifo",
                 bug: Optional[int] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.bug = bug
        self.lock = Mutex(name=f"{name}.lock")
        self.items: Deque[Any] = deque()
        self.closed = False
        self.not_empty = Event(auto_reset=True, name=f"{name}.not_empty")
        self.not_full = Event(auto_reset=True, name=f"{name}.not_full")

    # ------------------------------------------------------------------
    def send(self, item: Any):
        """Blocking bounded send (retry loop with yielding waits)."""
        while True:
            if self.bug == 2:
                # BUG 2: capacity checked before taking the lock; two
                # senders both see space and both append.
                if len(self.items) < self.capacity:
                    yield from self.lock.acquire()
                    check(not self.closed, f"send on closed {self.name}")
                    self.items.append(item)
                    yield from self.lock.release()
                    yield from self.not_empty.set()
                    return
            else:
                yield from self.lock.acquire()
                check(not self.closed, f"send on closed {self.name}")
                if len(self.items) < self.capacity:
                    self.items.append(item)
                    yield from self.lock.release()
                    yield from self.not_empty.set()
                    return
                yield from self.lock.release()
            yield from self.not_full.wait(timeout=_WAIT_TIMEOUT)

    def recv(self) -> Any:
        """Blocking receive; ``(False, None)`` at end of stream."""
        while True:
            yield from self.lock.acquire()
            if self.bug == 3 and self.closed:
                # BUG 3: end-of-stream reported before draining the queue.
                yield from self.lock.release()
                return (False, None)
            if self.bug == 4 and self.closed and not self.items:
                # BUG 4: the "fix" of bug 3 checks emptiness first but
                # returns while still holding the lock.
                return (False, None)
            if self.items:
                if self.bug == 1:
                    # BUG 1: pop outside the critical section.  The pause
                    # models the instruction window between the unlocked
                    # emptiness check and the dequeue.
                    yield from self.lock.release()
                    yield from pause("unlocked-pop")
                    check(bool(self.items), f"{self.name} drained under us")
                    item = self.items.popleft()
                else:
                    item = self.items.popleft()
                    yield from self.lock.release()
                yield from self.not_full.set()
                return (True, item)
            if self.closed and self.bug != 4:
                yield from self.lock.release()
                return (False, None)
            if self.bug != 4 or not self.closed:
                yield from self.lock.release()
            yield from self.not_empty.wait(timeout=_WAIT_TIMEOUT)

    def close(self):
        yield from self.lock.acquire()
        self.closed = True
        yield from self.lock.release()
        yield from self.not_empty.set()

    # ------------------------------------------------------------------
    def state_signature(self) -> Any:
        return (
            self.name,
            tuple(self.items),
            self.closed,
            self.lock.owner_name(),
            self.not_empty.is_signaled(),
            self.not_full.is_signaled(),
        )


# ----------------------------------------------------------------------
# Vertices
# ----------------------------------------------------------------------

def source_vertex(channel: FifoChannel, items: List[Any]):
    def body():
        for item in items:
            yield from channel.send(item)
        yield from channel.close()

    return body


def transform_vertex(inbound: FifoChannel, outbound: FifoChannel,
                     func: Callable[[Any], Any]):
    def body():
        while True:
            ok, item = yield from inbound.recv()
            if not ok:
                break
            yield from outbound.send(func(item))
        yield from outbound.close()

    return body


def sink_vertex(channel: FifoChannel, received: List[Any]):
    def body():
        while True:
            ok, item = yield from channel.recv()
            if not ok:
                break
            received.append(item)

    return body


def dryad_pipeline(
    items: int = 2,
    *,
    capacity: int = 1,
    bug: Optional[int] = None,
    transforms: int = 1,
    sources: int = 1,
    sinks: int = 1,
) -> VMProgram:
    """Sources → transform(s) → sinks over bounded FIFOs ("Dryad Channels").

    A small ``capacity`` forces flow-control backpressure, exercising the
    retry loops.  With a single source and sink the auditor asserts exact
    FIFO order; with parallelism it asserts the multiset (exactly-once).
    Bugs 1 and 2 are races between peers, so they need ``sinks=2`` and
    ``sources=2`` respectively to manifest.
    """
    if transforms and (sources > 1 or sinks > 1):
        raise ValueError("parallel sources/sinks are supported on a "
                         "single-channel pipeline (transforms=0)")
    payload = list(range(items))
    expected = sorted(value + 100 * transforms for value in payload)

    def setup(env):
        channels = [
            FifoChannel(capacity=capacity, name=f"ch{i}", bug=bug)
            for i in range(transforms + 1)
        ]
        received: List[Any] = []

        tasks = []
        # Sources share channel 0; the last one to finish closes it.
        remaining_sources = [sources]
        shares = [payload[i::sources] for i in range(sources)]

        def sharing_source(share):
            for item in share:
                yield from channels[0].send(item)
            remaining_sources[0] -= 1
            if remaining_sources[0] == 0:
                yield from channels[0].close()

        for i in range(sources):
            tasks.append(env.spawn(sharing_source, shares[i],
                                   name=f"source{i + 1}" if sources > 1
                                   else "source"))
        for i in range(transforms):
            tasks.append(env.spawn(
                transform_vertex(channels[i], channels[i + 1],
                                 lambda value: value + 100),
                name=f"transform{i + 1}",
            ))
        for i in range(sinks):
            tasks.append(env.spawn(
                sink_vertex(channels[-1], received),
                name=f"sink{i + 1}" if sinks > 1 else "sink",
            ))

        def auditor():
            for task in tasks:
                yield from join(task)
            ordered = sources == 1 and sinks == 1
            got = received if ordered else sorted(received)
            want = ([value + 100 * transforms for value in payload]
                    if ordered else expected)
            check(got == want,
                  f"sinks received {got!r}, expected {want!r}")

        env.spawn(auditor, name="auditor")

        for channel in channels:
            env.add_monitor(invariant(
                lambda ch=channel: len(ch.items) <= ch.capacity,
                f"{channel.name} exceeded its capacity",
            ))
        env.set_state_fn(lambda: (
            tuple(ch.state_signature() for ch in channels),
            tuple(received),
        ))

    suffix = f", bug={bug}" if bug else ""
    return VMProgram(
        setup,
        name=f"dryad-channels(items={items}, transforms={transforms}{suffix})",
    )


def dryad_fifo(width: int = 4, items: int = 1, *,
               capacity: int = 1, bug: Optional[int] = None) -> VMProgram:
    """Many parallel source→sink lanes ("Dryad Fifo", the 25-thread row of
    Table 1 when instantiated wide)."""

    def setup(env):
        lanes = []
        for lane in range(width):
            channel = FifoChannel(capacity=capacity,
                                  name=f"lane{lane}", bug=bug)
            received: List[Any] = []
            payload = [(lane, i) for i in range(items)]
            src = env.spawn(source_vertex(channel, payload),
                            name=f"src{lane}")
            snk = env.spawn(sink_vertex(channel, received),
                            name=f"snk{lane}")
            lanes.append((payload, received, src, snk))

        def auditor():
            for payload, received, src, snk in lanes:
                yield from join(src)
                yield from join(snk)
                check(received == payload,
                      f"lane mismatch: {received!r} != {payload!r}")

        env.spawn(auditor, name="auditor")

    return VMProgram(
        setup, name=f"dryad-fifo(width={width}, items={items})",
    )
