"""Promise: a small data-parallelism library with Figure 8's livelock.

The paper tested "promises, a concurrency primitive for specifying data
parallelism ... optimized for efficiency [using] low-level hardware
primitives".  We reproduce the essential structure: a :class:`Promise` is
completed once by a producer and read by consumers; the optimized read
path checks a couple of fast cases and only then falls back to a spin
loop.

Figure 8's bug, verbatim in spirit::

    int x_temp = InterlockedRead(x);
    if (common case 1) break;
    ...
    while (x_temp != 1) {
        Sleep(1);          // yield
        // BUG: should read x once again
    }

The spin loop waits on a *stale local copy* of the shared flag; since the
loop yields (Sleep), the spinning thread satisfies the good-samaritan
property, so the divergence is a **fair** infinite execution — a livelock,
found only because the fair scheduler distinguishes fair from unfair
divergence.  The bug "only occurred in those rare thread interleavings in
which the common cases ... were inapplicable": here, only when the
consumer's fast-path read happens before the producer completes.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.runtime.api import check, sleep, spawn
from repro.runtime.program import VMProgram
from repro.sync.atomics import AtomicCell


class Promise:
    """A write-once cell with completion flag, as in data-parallel runtimes."""

    _counter = 0

    def __init__(self, name: Optional[str] = None) -> None:
        if name is None:
            Promise._counter += 1
            name = f"promise{Promise._counter}"
        self.name = name
        self._done = AtomicCell(0, name=f"{name}.done")
        self._value = AtomicCell(None, name=f"{name}.value")

    # ------------------------------------------------------------------
    def complete(self, value: Any):
        """Fulfil the promise (producer side).  Completing twice is a
        safety violation, like re-setting a Win32 one-shot."""
        already = yield from self._done.load()
        check(not already, f"{self.name} completed twice")
        yield from self._value.store(value)
        yield from self._done.store(1)

    def get(self):
        """Correct consumer read: re-reads the flag each iteration."""
        while True:
            done = yield from self._done.load()
            if done:
                break
            yield from sleep(1)
        value = yield from self._value.load()
        return value

    def get_stale_spin(self):
        """Figure 8's buggy read: spins on a local copy of the flag."""
        done_temp = yield from self._done.load()  # InterlockedRead(x)
        if done_temp:  # common case: already completed
            value = yield from self._value.load()
            return value
        # Uncommon case: spin until completion...
        while not done_temp:
            yield from sleep(1)  # yield
            # BUG: should read self._done once again
        value = yield from self._value.load()
        return value

    # ------------------------------------------------------------------
    def is_done(self) -> bool:
        return bool(self._done.peek())

    def state_signature(self) -> Any:
        return (self.name, self._done.peek(), self._value.peek())


def parallel_map(func: Callable[[Any], Any], inputs: Sequence[Any],
                 *, stale_read_bug: bool = False):
    """Library entry point: evaluate ``func`` over ``inputs`` in parallel.

    Spawns one producer per input and returns the list of results (the
    caller's thread acts as the consumer joining on each promise).  This
    is itself a generator operation — call with ``yield from`` inside a
    thread body.
    """
    promises: List[Promise] = [Promise() for _ in inputs]

    def producer(promise: Promise, value: Any):
        yield from promise.complete(func(value))

    for promise, value in zip(promises, inputs):
        yield from spawn(producer, promise, value,
                         name=f"prod-{promise.name}")
    results = []
    for promise in promises:
        if stale_read_bug:
            result = yield from promise.get_stale_spin()
        else:
            result = yield from promise.get()
        results.append(result)
    return results


def promise_program(n: int = 2, *, stale_read_bug: bool = False) -> VMProgram:
    """Harness: a consumer maps ``x + 10`` over ``range(n)`` in parallel
    and checks the results.  With ``stale_read_bug`` the checker finds the
    Figure 8 livelock; without it, the program is fair-terminating."""

    def setup(env):
        def consumer():
            results = yield from parallel_map(
                lambda value: value + 10, range(n),
                stale_read_bug=stale_read_bug,
            )
            check(results == [value + 10 for value in range(n)],
                  f"wrong parallel_map results: {results!r}")

        env.spawn(consumer, name="consumer")

    suffix = ", stale-read-bug" if stale_read_bug else ""
    return VMProgram(setup, name=f"promise(n={n}{suffix})")
