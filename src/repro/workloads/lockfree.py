"""Treiber lock-free stack — the classic ABA victim.

Section 4.1 of the paper motivates fair checking for "low-level
synchronization libraries that typically employ nonblocking algorithms";
the Treiber stack with a node free-list is the canonical member of that
family, and its ABA failure needs exactly the kind of adversarial
interleaving a model checker provides:

1. thread 1 begins a pop: reads ``head = A`` and ``A.next = B``, then is
   preempted;
2. thread 2 pops ``A``, pops ``B``, and pushes ``A`` back (the free-list
   recycles the node object);
3. thread 1's CAS ``head: A → B`` *succeeds* — the head is ``A`` again —
   resurrecting the long-gone ``B``.

With ``reuse_nodes=False`` every push allocates a fresh node, CAS
comparisons are on distinct identities, and the stack is linearizable;
the checker passes.  With ``reuse_nodes=True`` the harness's audit
catches the corruption.

The retry loops (CAS failure → retry) make the stack nonterminating
under an unfair scheduler, so this workload also needs fairness just to
*terminate* — each failed CAS retry is preceded by a yield, following
the good-samaritan discipline of real nonblocking code (PAUSE/backoff).
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.engine.monitors import invariant
from repro.runtime.api import check, join, pause, yield_now
from repro.runtime.program import VMProgram
from repro.sync.atomics import AtomicCell


class _Node:
    __slots__ = ("value", "next")

    def __init__(self, value: Any) -> None:
        self.value = value
        self.next: Optional["_Node"] = None

    def __repr__(self) -> str:
        return f"<node {self.value!r}>"


class TreiberStack:
    """A lock-free LIFO stack over a CAS'd head pointer."""

    def __init__(self, *, reuse_nodes: bool = False,
                 name: str = "treiber") -> None:
        self.name = name
        self.reuse_nodes = reuse_nodes
        self.head = AtomicCell(None, name=f"{name}.head")
        self._free: List[_Node] = []

    # ------------------------------------------------------------------
    def _allocate(self, value: Any) -> _Node:
        if self.reuse_nodes and self._free:
            # FIFO recycling: the node that has been "free" longest is
            # reused first — the allocator behavior that makes ABA windows
            # realistic (the address a stalled pop still holds comes back).
            node = self._free.pop(0)
            node.value = value
            return node
        return _Node(value)

    def push(self, value: Any):
        node = self._allocate(value)
        while True:
            old_head = yield from self.head.load()
            node.next = old_head  # node is still private: plain write
            swapped = yield from self.head.compare_and_swap(old_head, node)
            if swapped:
                return
            yield from yield_now()  # backoff before the retry

    def pop(self):
        """``(ok, value)``; the ABA window is between the two loads and
        the CAS."""
        while True:
            old_head = yield from self.head.load()
            if old_head is None:
                return (False, None)
            # Reading old_head.next is a separate shared access: the node
            # can be recycled underneath us before the CAS.
            yield from pause("read-next")
            next_node = old_head.next
            swapped = yield from self.head.compare_and_swap(old_head,
                                                            next_node)
            if swapped:
                value = old_head.value
                if self.reuse_nodes:
                    self._free.append(old_head)  # recycle: enables ABA
                return (True, value)
            yield from yield_now()

    # ------------------------------------------------------------------
    def snapshot(self) -> tuple:
        """Current stack contents, top first (non-scheduling)."""
        items = []
        node = self.head.peek()
        seen = set()
        while node is not None and id(node) not in seen:
            seen.add(id(node))
            items.append(node.value)
            node = node.next
        return tuple(items)

    def state_signature(self) -> Any:
        return (self.name, self.snapshot())


def treiber_stack_program(
    items: int = 2,
    poppers: int = 2,
    *,
    reuse_nodes: bool = False,
) -> VMProgram:
    """Harness: one pusher feeds the stack, ``poppers`` threads drain it.

    Safety: every pushed value is popped exactly once and the stack ends
    empty.  With ``reuse_nodes=True`` the ABA corruption shows up as a
    duplicate pop or a value popped that was never (still) in the stack.
    """
    expected = [("v", i) for i in range(items)]

    def setup(env):
        stack = TreiberStack(reuse_nodes=reuse_nodes)
        popped: List[Any] = []
        remaining = [items]

        def pusher():
            for value in expected:
                yield from stack.push(value)

        def popper():
            while remaining[0] > 0:
                ok, value = yield from stack.pop()
                if ok:
                    popped.append(value)
                    remaining[0] -= 1
                else:
                    yield from yield_now()

        def auditor(tasks):
            for task in tasks:
                yield from join(task)
            check(sorted(popped) == sorted(expected),
                  f"popped {sorted(popped)!r} != pushed {sorted(expected)!r}")
            check(stack.snapshot() == (),
                  f"stack not empty at the end: {stack.snapshot()!r}")

        tasks = [env.spawn(pusher, name="pusher")]
        tasks += [env.spawn(popper, name=f"popper{i + 1}")
                  for i in range(poppers)]
        env.spawn(auditor, tasks, name="auditor")

        env.add_monitor(invariant(
            lambda: len(popped) == len(set(popped)),
            "a value was popped twice",
        ))
        env.set_state_fn(lambda: (
            stack.snapshot(), tuple(sorted(popped)), remaining[0],
        ))

    label = ", reuse-nodes" if reuse_nodes else ""
    return VMProgram(
        setup,
        name=f"treiber(items={items}, poppers={poppers}{label})",
    )
