"""A miniature Singularity: booting an OS kernel under the checker.

The paper's headline applicability result is "we have successfully booted
the Singularity operating system under the control of CHESS" — the entire
boot and shutdown process, unmodified, made checkable by the fair
scheduler (Table 1: 14 threads, ~168k sync ops).  Singularity itself is a
research OS we cannot embed, so this module builds a microkernel-shaped
substitute with the same concurrency structure:

* a **boot controller** starts system services in dependency order,
  spin-waiting (with yields) on each service's ready flag;
* **services** (memory manager, namespace directory, IO manager, and a
  configurable number of application processes) register themselves in a
  shared namespace under a lock, signal readiness, then serve requests
  from a channel — Singularity's channel-based IPC — until shutdown;
* applications exercise IPC round trips through the IO manager;
* shutdown reverses boot order, sending stop messages and joining.

Every service loop is nonterminating without fairness (receive loops,
ready-flag spins), so the program as a whole is exactly the kind of input
that previously "took several weeks to prepare" by manual modification.
The harness asserts clean boot (all services registered and ready), IPC
correctness (every request answered), and clean shutdown (namespace empty
at the end); an :class:`~repro.engine.liveness.EventuallyMonitor` states
the boot-progress liveness property from the paper's future-work list.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.engine.liveness import EventuallyMonitor
from repro.runtime.api import check, join, yield_now
from repro.runtime.program import VMProgram
from repro.sync.atomics import SharedVar
from repro.sync.channel import Channel
from repro.sync.mutex import Mutex


class Namespace:
    """The kernel's service directory (name → endpoint)."""

    def __init__(self) -> None:
        self._lock = Mutex(name="ns.lock")
        self._entries: Dict[str, Channel] = {}

    def register(self, name: str, endpoint: Channel):
        yield from self._lock.acquire()
        check(name not in self._entries, f"service {name!r} registered twice")
        self._entries[name] = endpoint
        yield from self._lock.release()

    def unregister(self, name: str):
        yield from self._lock.acquire()
        check(name in self._entries, f"service {name!r} not registered")
        del self._entries[name]
        yield from self._lock.release()

    def lookup(self, name: str):
        yield from self._lock.acquire()
        endpoint = self._entries.get(name)
        yield from self._lock.release()
        return endpoint

    def size(self) -> int:
        return len(self._entries)

    def state_signature(self) -> Any:
        return tuple(sorted(self._entries))


class Service:
    """One kernel service: register, signal ready, serve, clean up."""

    def __init__(self, name: str, namespace: Namespace,
                 handler=None) -> None:
        self.name = name
        self.namespace = namespace
        self.endpoint = Channel(name=f"{name}.ep")
        self.ready = SharedVar(False, name=f"{name}.ready")
        self.served = 0
        self._handler = handler or (lambda request: ("ok", request))

    def run(self):
        yield from self.namespace.register(self.name, self.endpoint)
        yield from self.ready.set(True)
        while True:
            ok, message = yield from self.endpoint.recv()
            if not ok:
                break  # endpoint closed: kernel is shutting down
            kind, request, reply_to = message
            if kind == "stop":
                break
            response = self._handler(request)
            self.served += 1
            yield from reply_to.send(response)
        yield from self.namespace.unregister(self.name)
        yield from self.ready.set(False)

    def state_signature(self) -> Any:
        return (self.name, self.ready.peek(), self.served,
                self.endpoint.size())


def _wait_until_ready(service: Service):
    """Boot-controller spin (with yields) on a service's ready flag."""
    while True:
        is_ready = yield from service.ready.get()
        if is_ready:
            return
        yield from yield_now()


def singularity_boot(apps: int = 1, requests_per_app: int = 1) -> VMProgram:
    """Boot + run + shutdown of the mini-kernel.

    ``apps`` application processes each perform ``requests_per_app`` IPC
    round trips through the IO manager after boot completes.  Thread
    count: 2 (controller, idle thread) + 3 services + ``apps``.
    """

    def setup(env):
        namespace = Namespace()
        booted = SharedVar(False, name="kernel.booted")
        halted = SharedVar(False, name="kernel.halted")

        memory = Service("memory", namespace)
        directory = Service("directory", namespace)
        io = Service("io", namespace, handler=lambda req: ("io-done", req))
        services = [memory, directory, io]

        def service_thread(service: Service):
            yield from service.run()

        service_tasks = [
            env.spawn(service_thread, service, name=service.name)
            for service in services
        ]

        app_results: List[Any] = []

        def app_thread(index: int):
            # Wait for the kernel to finish booting (spin loop + yield).
            while not (yield from booted.get()):
                yield from yield_now()
            reply = Channel(name=f"app{index}.reply")
            io_endpoint = yield from namespace.lookup("io")
            check(io_endpoint is not None, "io service missing after boot")
            for r in range(requests_per_app):
                yield from io_endpoint.send(("request", (index, r), reply))
                ok, response = yield from reply.recv()
                check(ok and response == ("io-done", (index, r)),
                      f"bad IPC response: {response!r}")
                app_results.append(response)

        app_tasks = [
            env.spawn(app_thread, i, name=f"app{i}") for i in range(apps)
        ]

        def idle_thread():
            # The kernel's idle loop: spins (yielding) until halt.
            while not (yield from halted.get()):
                yield from yield_now()

        env.spawn(idle_thread, name="idle")

        def boot_controller():
            # Boot: bring services up in dependency order.
            for service in services:
                yield from _wait_until_ready(service)
            yield from booted.set(True)
            # Run: wait for the applications to finish their IPC.
            for task in app_tasks:
                yield from join(task)
            check(len(app_results) == apps * requests_per_app,
                  "lost IPC responses")
            # Shutdown: reverse boot order.
            for service in reversed(services):
                yield from service.endpoint.send(("stop", None, None))
            for task in service_tasks:
                yield from join(task)
            check(namespace.size() == 0,
                  f"namespace not empty at halt: {namespace.state_signature()}")
            yield from halted.set(True)

        env.spawn(boot_controller, name="boot")

        env.add_temporal_monitor(EventuallyMonitor(
            goal=lambda: bool(booted.peek()),
            name="kernel-eventually-boots",
        ))
        env.set_state_fn(lambda: (
            namespace.state_signature(),
            booted.peek(),
            halted.peek(),
            tuple(s.state_signature() for s in services),
            len(app_results),
        ))

    return VMProgram(
        setup,
        name=f"singularity(apps={apps}, requests={requests_per_app})",
    )
