"""The paper's evaluation programs (and their substitutes).

Each module exposes factory functions returning
:class:`~repro.runtime.program.VMProgram` objects, parameterized the way
the evaluation needs them (number of philosophers/stealers, which seeded
bug variant is active, ...).  See DESIGN.md for the substitution rationale
on the proprietary systems (Dryad, APE, Singularity).
"""
