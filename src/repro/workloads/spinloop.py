"""Figure 3: the two-thread spin-loop program.

::

    Init x := 0;

    Thread t            Thread u
    a: x := 1;          c: while (x != 1)
    b: end;             d:     yield();
                        e: end;

The state space (right of Figure 3) has a cycle between ``(a,c)`` and
``(a,d)`` caused by ``u``'s spin loop; the program is *fair-terminating*:
its only infinite execution starves ``t``, which is unfair.

Variants:

* :func:`spinloop` — the paper's program (good samaritan: the loop yields).
* :func:`spinloop_no_yield` — drops the ``yield()``; the fair checker
  diverges with a good-samaritan violation (the loop spins idly).
* :func:`spinloop_with_event` — the "manual modification" the paper
  describes in Section 4.1: ``u`` blocks on an event that ``t`` signals
  after the store.  Terminating even without fairness; kept so the cost
  and the non-local nature of that rewrite are visible in one place.
"""

from __future__ import annotations

from repro.runtime.api import yield_now
from repro.runtime.program import VMProgram
from repro.sync.atomics import SharedVar
from repro.sync.event import Event


def spinloop() -> VMProgram:
    """The program of Figure 3, exactly."""

    def setup(env):
        x = SharedVar(0, name="x")
        pcs = {"t": "a", "u": "c"}

        def t():
            yield from x.set(1)  # a: x := 1
            pcs["t"] = "b"  # b: end

        def u():
            while True:
                value = yield from x.get()  # c: while (x != 1)
                if value == 1:
                    break
                pcs["u"] = "d"
                yield from yield_now()  # d: yield()
                pcs["u"] = "c"
            pcs["u"] = "e"  # e: end

        env.spawn(t, name="t")
        env.spawn(u, name="u")
        env.set_state_fn(lambda: (pcs["t"], pcs["u"], x.peek()))

    return VMProgram(setup, name="spinloop")


def spinloop_no_yield() -> VMProgram:
    """Figure 3 without the yield: violates the good-samaritan property."""

    def setup(env):
        x = SharedVar(0, name="x")

        def t():
            yield from x.set(1)

        def u():
            while True:
                value = yield from x.get()  # spins without yielding
                if value == 1:
                    break

        env.spawn(t, name="t")
        env.spawn(u, name="u")

    return VMProgram(setup, name="spinloop-no-yield")


def spinloop_with_event() -> VMProgram:
    """The manually modified, terminating version (Section 4.1).

    The spin loop becomes a blocking wait on a synchronization variable,
    and *every* writer of ``x`` must additionally signal it — the
    non-local, error-prone change fair scheduling makes unnecessary.
    """

    def setup(env):
        x = SharedVar(0, name="x")
        x_updated = Event(name="x-updated")

        def t():
            yield from x.set(1)
            yield from x_updated.set()  # the required non-local signal

        def u():
            while True:
                value = yield from x.get()
                if value == 1:
                    break
                yield from x_updated.wait()

        env.spawn(t, name="t")
        env.spawn(u, name="u")

    return VMProgram(setup, name="spinloop-event")
