"""A snooping MSI cache-coherence protocol under the checker.

Section 2 of the paper names cache-coherence protocols as the archetypal
system "designed to run forever", made checkable by a harness that
"limits the number of cache requests from the external environment".
This module builds exactly that: a bus-based MSI protocol over one cache
line, with per-cache agent threads serving a *bounded* request script —
fair-terminating by construction, nonterminating without fairness
(upgrade-retry loops).

Protocol (standard MSI, snooping bus serialized by a lock):

* ``read`` miss (I): acquire the bus, issue BusRd — every Modified peer
  writes back and downgrades to Shared — load the line Shared.
* ``write`` (I or S): acquire the bus, issue BusRdX/BusUpgr — every peer
  invalidates (Modified peers write back first) — install Modified and
  write.
* Hits (read in M/S, write in M) complete without the bus.

Upgrade races: two Shared caches that both want to write contend for the
bus; the loser finds itself Invalidated and must retry the whole
transaction.  The retry loop yields (good samaritan), and under the fair
scheduler always makes progress.  ``bug="upgrade-livelock"`` installs a
"polite" variant that *backs off and releases the bus when it observes a
concurrent writer intent*, mirroring Figure 1's try-and-retry structure
— two writers can then defer to each other forever, a genuine protocol
livelock that only fair stateless checking can call an error.

Safety (checked continuously by monitors):

* **single-writer** — at most one cache holds the line Modified, and
  then nobody else holds it Shared;
* **value coherence** — every cached copy of a Shared line equals
  memory; reads observe the most recent write (checked by the harness
  audit via a sequentially consistent write log).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engine.monitors import invariant
from repro.runtime.api import check, join, yield_now
from repro.runtime.program import VMProgram
from repro.sync.atomics import SharedVar
from repro.sync.mutex import Mutex

INVALID = "I"
SHARED = "S"
MODIFIED = "M"


class Line:
    """One cache's copy of the line."""

    def __init__(self, cache_id: int) -> None:
        self.cache_id = cache_id
        self.state = INVALID
        self.value: Any = None

    def signature(self) -> Tuple:
        return (self.state, self.value)


class CoherentSystem:
    """Shared state: memory, the bus lock, and every cache's line."""

    def __init__(self, n_caches: int, *, bug: Optional[str] = None) -> None:
        if bug not in (None, "upgrade-livelock"):
            raise ValueError(f"unknown bug {bug!r}")
        self.bug = bug
        self.bus = Mutex(name="bus")
        self.memory = SharedVar(0, name="memory")
        self.lines = [Line(i) for i in range(n_caches)]
        #: Write-intent flags for the buggy polite-backoff variant.
        self.want_write = [SharedVar(False, name=f"want{i}")
                           for i in range(n_caches)]
        #: Sequentially consistent write log for the audit.
        self.write_log: List[Any] = [0]

    # ------------------------------------------------------------------
    # Bus transactions (caller must hold the bus).
    # ------------------------------------------------------------------
    def _snoop_bus_rd(self, requester: int):
        """Peers with Modified copies write back and downgrade."""
        for line in self.lines:
            if line.cache_id != requester and line.state == MODIFIED:
                yield from self.memory.set(line.value)
                line.state = SHARED
        value = yield from self.memory.get()
        return value

    def _snoop_bus_rdx(self, requester: int):
        """Peers invalidate (Modified peers write back first)."""
        for line in self.lines:
            if line.cache_id == requester:
                continue
            if line.state == MODIFIED:
                yield from self.memory.set(line.value)
            line.state = INVALID
        value = yield from self.memory.get()
        return value

    # ------------------------------------------------------------------
    # Cache-agent operations.
    # ------------------------------------------------------------------
    def read(self, cache_id: int):
        line = self.lines[cache_id]
        if line.state in (SHARED, MODIFIED):
            return line.value  # hit
        yield from self.bus.acquire()
        value = yield from self._snoop_bus_rd(cache_id)
        line.state = SHARED
        line.value = value
        yield from self.bus.release()
        return value

    def write(self, cache_id: int, value: Any):
        line = self.lines[cache_id]
        while True:
            if line.state == MODIFIED:
                line.value = value  # hit
                self.write_log.append(value)
                return
            yield from self.want_write[cache_id].set(True)
            yield from self.bus.acquire()
            if self.bug == "upgrade-livelock":
                # BUG: be "polite" — if any peer also intends to write,
                # give way and retry.  Two polite writers defer to each
                # other forever: a fair cycle, i.e. a livelock.
                contended = False
                for peer in range(len(self.lines)):
                    if peer == cache_id:
                        continue
                    if (yield from self.want_write[peer].get()):
                        contended = True
                        break
                if contended:
                    yield from self.bus.release()
                    yield from yield_now()
                    continue
            yield from self._snoop_bus_rdx(cache_id)
            line.state = MODIFIED
            line.value = value
            self.write_log.append(value)
            yield from self.want_write[cache_id].set(False)
            yield from self.bus.release()
            return

    # ------------------------------------------------------------------
    def single_writer_invariant(self) -> bool:
        modified = [l for l in self.lines if l.state == MODIFIED]
        if len(modified) > 1:
            return False
        if modified and any(l.state == SHARED for l in self.lines):
            return False
        return True

    def shared_matches_memory(self) -> bool:
        return all(l.value == self.memory.peek()
                   for l in self.lines if l.state == SHARED)

    def state_signature(self) -> Any:
        return (
            tuple(line.signature() for line in self.lines),
            self.memory.peek(),
            self.bus.owner_name(),
            tuple(w.peek() for w in self.want_write),
        )


def coherence_program(
    scripts: Optional[Sequence[Sequence[Tuple[str, Any]]]] = None,
    *,
    bug: Optional[str] = None,
) -> VMProgram:
    """The bounded-request harness.

    ``scripts[i]`` is cache *i*'s request list: ``("r", None)`` for a
    read, ``("w", value)`` for a write.  The default is the minimal
    upgrade-race configuration: two caches that each read then write.
    Reads are audited against the write log (every observed value must
    have been written, and memory must end consistent).
    """
    if scripts is None:
        scripts = [
            [("r", None), ("w", 10)],
            [("r", None), ("w", 20)],
        ]
    scripts = [list(s) for s in scripts]

    def setup(env):
        system = CoherentSystem(len(scripts), bug=bug)
        observed: List[Any] = []

        def agent(cache_id: int, script):
            for kind, value in script:
                if kind == "r":
                    result = yield from system.read(cache_id)
                    observed.append(result)
                else:
                    yield from system.write(cache_id, value)
                yield from yield_now()  # between external requests

        tasks = [
            env.spawn(agent, i, script, name=f"cache{i}")
            for i, script in enumerate(scripts)
        ]

        def auditor():
            for task in tasks:
                yield from join(task)
            written = set(system.write_log)
            check(all(value in written for value in observed),
                  f"read returned a never-written value: {observed!r}")
            # Flush: all Modified data must be recoverable.
            modified = [l for l in system.lines if l.state == MODIFIED]
            final = (modified[0].value if modified
                     else system.memory.peek())
            check(final in written, f"final value {final!r} never written")

        env.spawn(auditor, name="auditor")
        env.add_monitor(invariant(system.single_writer_invariant,
                                  "two Modified copies of the line"))
        env.add_monitor(invariant(system.shared_matches_memory,
                                  "a Shared copy diverged from memory"))
        env.set_state_fn(lambda: (
            system.state_signature(), tuple(observed),
        ))

    suffix = f", bug={bug}" if bug else ""
    return VMProgram(
        setup,
        name=f"msi-coherence(caches={len(scripts)}{suffix})",
    )
