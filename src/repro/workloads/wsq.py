"""Work-stealing queue (Cilk THE protocol, references [7]/[20]).

A faithful port of the Microsoft ``WorkStealQueue`` (Leijen's C# futures
library, the exact code CHESS tested) to the instrumented atomics:

* the owner pushes and pops at the *tail* without taking the lock on the
  fast path;
* thieves steal from the *head* under a lock acquired with ``TryEnter``
  (a zero-timeout, hence yielding, operation);
* the owner's pop publishes the decremented tail *before* re-reading the
  head, and falls back to a locked ``SyncPop`` on potential conflict.

Seeded bugs (the ``bug`` parameter), modeled on the WSQ bugs of Table 3 —
each is a one-line corruption of the synchronization protocol:

* ``bug=1`` — missing publication barrier: ``Pop`` reads ``head`` before
  storing the decremented ``tail``; a concurrent steal of the last item
  goes unnoticed and the item is consumed twice.
* ``bug=2`` — wrong emptiness test in ``Steal`` (``h <= tail`` instead of
  ``h < tail``): a thief can steal from an empty queue, returning a stale
  array slot (an item consumed twice).
* ``bug=3`` — ``SyncPop`` forgets to restore ``tail`` after finding the
  queue empty; the corrupted tail makes a later ``Push`` overwrite or
  re-expose slots.

The test harness (:func:`work_stealing_queue`) runs one owner and ``s``
stealers; stealers spin (yielding) until the owner raises a done flag, so
the *unmodified* program is nonterminating — exactly the situation that
required manual modification before fair scheduling existed (Section 4.1).
Safety: every pushed item is consumed exactly once, checked continuously
by a monitor (duplicates) and finally by an auditor thread (losses).
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.engine.monitors import invariant
from repro.runtime.api import check, join, yield_now
from repro.runtime.program import VMProgram
from repro.sync.atomics import AtomicCell, SharedVar
from repro.sync.mutex import Mutex


class WorkStealingQueue:
    """The THE-protocol deque over instrumented atomics.

    All methods are generator operations (``yield from``).  ``pop`` and
    ``steal`` return ``(ok, item)`` pairs.
    """

    def __init__(self, capacity: int = 8, bug: Optional[int] = None,
                 name: str = "wsq") -> None:
        self.name = name
        self.capacity = capacity
        self.bug = bug
        self.head = AtomicCell(0, name=f"{name}.head")
        self.tail = AtomicCell(0, name=f"{name}.tail")
        self.slots = [
            AtomicCell(None, name=f"{name}.slot{i}") for i in range(capacity)
        ]
        self.lock = Mutex(name=f"{name}.lock")

    # ------------------------------------------------------------------
    def push(self, item: Any):
        """Owner-only: append at the tail (no lock on the fast path)."""
        t = yield from self.tail.load()
        h = yield from self.head.load()
        # Reading head racily is conservative: concurrent steals only
        # *increase* head, so the queue can only be emptier than we think.
        check(t - h < self.capacity, "work-stealing queue overflow")
        yield from self.slots[t % self.capacity].store(item)
        yield from self.tail.store(t + 1)

    def pop(self):
        """Owner-only: take from the tail; lock only on conflict."""
        t = (yield from self.tail.load()) - 1
        if self.bug == 1:
            # BUG 1: read head before publishing the decremented tail.  A
            # steal serialized between the two reads takes the same item.
            h = yield from self.head.load()
            yield from self.tail.store(t)
        else:
            yield from self.tail.store(t)
            h = yield from self.head.load()
        if h < t or (self.bug == 1 and h <= t):
            item = yield from self.slots[t % self.capacity].load()
            return (True, item)
        # 0 or 1 items left: potential conflict with a thief.
        yield from self.tail.store(t + 1)
        result = yield from self._sync_pop()
        return result

    def _sync_pop(self):
        yield from self.lock.acquire()
        t = (yield from self.tail.load()) - 1
        yield from self.tail.store(t)
        h = yield from self.head.load()
        if h <= t:
            item = yield from self.slots[t % self.capacity].load()
            yield from self.lock.release()
            return (True, item)
        if self.bug != 3:
            yield from self.tail.store(t + 1)
        # BUG 3: the restore above is skipped; tail drifts below head and a
        # later push lands on a stale index.
        yield from self.lock.release()
        return (False, None)

    def steal(self):
        """Thief: take from the head under the lock (TryEnter semantics —
        a failed lock attempt yields, per CHESS's yield inference)."""
        got_lock = yield from self.lock.try_acquire()
        if not got_lock:
            return (False, None)
        h = yield from self.head.load()
        t = yield from self.tail.load()
        if h < t or (self.bug == 2 and h <= t):
            # BUG 2: h <= t steals from an empty queue (stale slot).
            item = yield from self.slots[h % self.capacity].load()
            yield from self.head.store(h + 1)
            yield from self.lock.release()
            return (True, item)
        yield from self.lock.release()
        return (False, None)

    # ------------------------------------------------------------------
    def state_signature(self) -> Any:
        return (
            self.head.peek(),
            self.tail.peek(),
            tuple(slot.peek() for slot in self.slots),
            self.lock.owner_name(),
        )


def work_stealing_queue(
    items: int = 3,
    stealers: int = 1,
    bug: Optional[int] = None,
    *,
    interleaved: bool = False,
    capacity: Optional[int] = None,
) -> VMProgram:
    """The CHESS test harness around :class:`WorkStealingQueue`.

    ``interleaved`` makes the owner mix pushes and pops (needed to expose
    ``bug=3``, which corrupts state only after an empty pop).
    """
    if capacity is None:
        capacity = max(4, items + 1)
    expected = [("item", i) for i in range(items)]

    def setup(env):
        queue = WorkStealingQueue(capacity=capacity, bug=bug)
        done = SharedVar(False, name="done")
        consumed: List[Tuple[str, int]] = []

        def owner():
            def pop_one():
                ok, item = yield from queue.pop()
                if ok:
                    consumed.append(item)
                return ok

            if interleaved:
                # push 0; pop; push 1; pop; ... then drain.
                for i in range(items):
                    yield from queue.push(expected[i])
                    yield from pop_one()
            else:
                for i in range(items):
                    yield from queue.push(expected[i])
            while True:
                ok = yield from pop_one()
                if not ok:
                    break
            yield from done.set(True)

        def stealer():
            while True:
                finished = yield from done.get()
                if finished:
                    break
                ok, item = yield from queue.steal()
                if ok:
                    consumed.append(item)
                else:
                    yield from yield_now()

        def auditor(owner_task, stealer_tasks):
            yield from join(owner_task)
            for task in stealer_tasks:
                yield from join(task)
            check(
                sorted(consumed) == sorted(expected),
                f"items consumed {sorted(consumed)!r} != pushed "
                f"{sorted(expected)!r}",
            )

        owner_task = env.spawn(owner, name="owner")
        stealer_tasks = [
            env.spawn(stealer, name=f"stealer{i + 1}") for i in range(stealers)
        ]
        env.spawn(auditor, owner_task, stealer_tasks, name="auditor")

        env.add_monitor(invariant(
            lambda: len(consumed) == len(set(consumed)),
            "an item was consumed twice",
        ))
        env.set_state_fn(lambda: (
            queue.state_signature(),
            done.peek(),
            tuple(sorted(consumed)),
        ))

    suffix = f", bug={bug}" if bug else ""
    mode = ", interleaved" if interleaved else ""
    return VMProgram(
        setup,
        name=f"wsq(items={items}, stealers={stealers}{suffix}{mode})",
    )
