"""Bounded buffer over mutex + condition variables.

The monitor-style producer/consumer is the canonical condvar workload and
carries the two classic bugs every concurrency lecture warns about; both
are one-token mutations here, and both need specific interleavings that
stress testing rarely produces:

* ``bug="if"`` — the wait predicate is checked with ``if`` instead of
  ``while``.  With two consumers and ``notify_all``, both wake, both
  pop, and the second pops from an empty buffer.
* ``bug="missed-notify"`` — the producer only notifies when the buffer
  *was* empty ("nobody can be waiting otherwise"); a consumer that
  checked emptiness but has not yet finished registering its wait misses
  the signal and blocks forever — a **deadlock** once everyone else
  finishes, found naturally by the checker's enabled-set emptiness test.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from repro.engine.monitors import invariant
from repro.runtime.api import check, join
from repro.runtime.program import VMProgram
from repro.sync.condvar import CondVar
from repro.sync.mutex import Mutex


class BoundedBuffer:
    """A fixed-capacity FIFO guarded by a mutex and two condvars."""

    def __init__(self, capacity: int = 1, *, bug: Optional[str] = None,
                 name: str = "buffer") -> None:
        if bug not in (None, "if", "missed-notify"):
            raise ValueError(f"unknown bug {bug!r}")
        self.name = name
        self.capacity = capacity
        self.bug = bug
        self.items: Deque[Any] = deque()
        self.lock = Mutex(name=f"{name}.lock")
        self.not_empty = CondVar(self.lock, name=f"{name}.not_empty")
        self.not_full = CondVar(self.lock, name=f"{name}.not_full")

    # ------------------------------------------------------------------
    def put(self, item: Any):
        yield from self.lock.acquire()
        while len(self.items) >= self.capacity:
            yield from self.not_full.wait()
        was_empty = not self.items
        self.items.append(item)
        if self.bug == "missed-notify":
            # BUG: only signal when the buffer was empty; a consumer
            # between its emptiness check and its wait registration
            # misses the wakeup forever.
            if was_empty:
                yield from self.not_empty.notify()
        else:
            yield from self.not_empty.notify()
        yield from self.lock.release()

    def take(self):
        yield from self.lock.acquire()
        if self.bug == "if":
            # BUG: 'if' instead of 'while' — a woken consumer must
            # re-check, because a sibling may have emptied the buffer.
            if not self.items:
                yield from self.not_empty.wait()
        else:
            while not self.items:
                yield from self.not_empty.wait()
        check(bool(self.items),
              f"take() from empty {self.name} (woken without an item)")
        item = self.items.popleft()
        yield from self.not_full.notify()
        yield from self.lock.release()
        return item

    # ------------------------------------------------------------------
    def state_signature(self) -> Any:
        return (
            self.name,
            tuple(self.items),
            self.lock.owner_name(),
            self.not_empty.state_signature(),
            self.not_full.state_signature(),
        )


def bounded_buffer_program(
    items: int = 2,
    consumers: int = 2,
    *,
    capacity: int = 1,
    bug: Optional[str] = None,
    notify_all: bool = False,
) -> VMProgram:
    """One producer, ``consumers`` consumers, exactly-once accounting.

    ``notify_all=True`` swaps the producer's ``notify`` for
    ``notify_all`` — the configuration under which the ``if`` bug fires.
    """
    payload = list(range(items))

    def setup(env):
        buffer = BoundedBuffer(capacity=capacity, bug=bug)
        taken: List[Any] = []
        shares = [len(payload[i::consumers]) for i in range(consumers)]

        def producer():
            for item in payload:
                if notify_all and bug == "if":
                    # Drive the bug: publish, then wake *everyone*.
                    yield from buffer.lock.acquire()
                    while len(buffer.items) >= buffer.capacity:
                        yield from buffer.not_full.wait()
                    buffer.items.append(item)
                    yield from buffer.not_empty.notify_all()
                    yield from buffer.lock.release()
                else:
                    yield from buffer.put(item)

        def consumer(quota: int):
            for _ in range(quota):
                item = yield from buffer.take()
                taken.append(item)

        tasks = [env.spawn(producer, name="producer")]
        tasks += [
            env.spawn(consumer, shares[i], name=f"consumer{i + 1}")
            for i in range(consumers)
        ]

        def auditor():
            for task in tasks:
                yield from join(task)
            check(sorted(taken) == payload,
                  f"consumed {sorted(taken)!r}, produced {payload!r}")

        env.spawn(auditor, name="auditor")
        env.add_monitor(invariant(
            lambda: len(buffer.items) <= buffer.capacity,
            "buffer exceeded its capacity",
        ))
        env.set_state_fn(lambda: (
            buffer.state_signature(), tuple(sorted(taken)),
        ))

    suffix = f", bug={bug}" if bug else ""
    return VMProgram(
        setup,
        name=f"bounded-buffer(items={items}, consumers={consumers}{suffix})",
    )
