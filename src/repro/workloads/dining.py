"""Dining philosophers (Figure 1) and the harnessed coverage variant.

:func:`dining_philosophers_livelock` is Figure 1 verbatim, generalized to
``n`` philosophers: every philosopher grabs its first fork, *tries* the
second, and on failure releases and retries.  The failing ``TryAcquire``
is the yielding transition (a zero-timeout wait).  The all-retry protocol
livelocks: the cycle in which every philosopher acquires, fails and
releases in lockstep is *fair* — the fair scheduler generates it in the
limit and the checker reports a livelock.

:func:`dining_philosophers` is the fair-terminating variant used for the
state-coverage measurements (Table 2): philosopher ``n-1`` uses ordinary
blocking acquires instead of the retry loop.  The retry loops still put
cycles in the state space (this is what makes unfair depth-bounded search
waste exponential work, Figure 2), but every cycle starves the blocking
philosopher somewhere along it, so all cycles are unfair and the fair
scheduler prunes them — the search terminates with full coverage.
"""

from __future__ import annotations

from typing import List

from repro.runtime.program import VMProgram
from repro.sync.mutex import Mutex

# Philosopher "program counters" for manual state extraction.  The
# abstraction (pc, fork owners) is *precise*: distinct abstract values
# correspond to distinct future behaviors, which the stateful ground-truth
# search of Table 2 relies on.
_HUNGRY = 0  # about to acquire the first fork
_TRYING = 1  # holding the first fork, about to try/acquire the second
_BACKOFF = 2  # try failed, about to release the first fork
_EATING = 3  # got both forks, releasing them
_DONE = 4  # finished


def _retry_philosopher(index: int, first: Mutex, second: Mutex, pcs: List[int]):
    """Figure 1's loop: Acquire(first); if TryAcquire(second) break; ..."""

    def body():
        while True:
            yield from first.acquire()
            pcs[index] = _TRYING
            got_second = yield from second.try_acquire()
            if got_second:
                pcs[index] = _EATING
                break
            pcs[index] = _BACKOFF
            yield from first.release()
            pcs[index] = _HUNGRY
        # eat
        yield from first.release()
        yield from second.release()
        pcs[index] = _DONE

    return body


def _blocking_philosopher(index: int, first: Mutex, second: Mutex, pcs: List[int]):
    """Plain hold-and-wait: breaks the symmetry that makes Fig. 1 livelock."""

    def body():
        yield from first.acquire()
        pcs[index] = _TRYING
        yield from second.acquire()
        pcs[index] = _EATING
        yield from first.release()
        yield from second.release()
        pcs[index] = _DONE

    return body


def _build(n: int, blocking_last: bool, name: str) -> VMProgram:
    if n < 2:
        raise ValueError("need at least two philosophers")

    def setup(env):
        forks = [Mutex(name=f"fork{i}") for i in range(n)]
        pcs = [_HUNGRY] * n
        for i in range(n):
            first = forks[i]
            second = forks[(i + 1) % n]
            if blocking_last and i == n - 1:
                body = _blocking_philosopher(i, second, first, pcs)
            else:
                body = _retry_philosopher(i, first, second, pcs)
            env.spawn(body, name=f"Phil{i + 1}")
        env.set_state_fn(
            lambda: (tuple(pcs), tuple(f.owner_name() for f in forks))
        )

    return VMProgram(setup, name=name)


def dining_philosophers_livelock(n: int = 2) -> VMProgram:
    """Figure 1 exactly: all philosophers use the try-and-retry protocol.

    Contains the paper's livelock — the fair transition cycle
    ``Acquire, Acquire, TryAcquire, TryAcquire, Release, Release``.
    """
    return _build(n, blocking_last=False, name=f"dining-livelock({n})")


def dining_philosophers(n: int = 2) -> VMProgram:
    """Fair-terminating dining philosophers (the Table 2 configuration).

    Cyclic state space, no fair cycles: correct, but unbearable for plain
    depth-bounded stateless search.
    """
    return _build(n, blocking_last=True, name=f"dining({n})")
