"""Worker pool with Figure 7's good-samaritan violation.

The library under test maintains worker threads partitioned into worker
groups; both :class:`Worker` and :class:`WorkerGroup` carry a ``stop``
flag, and shutdown sets the group's flag before the workers' flags.  In
that window a worker whose task queue is empty spins through its outer
loop **without yielding** — ``Idle`` returns immediately because the
group is stopping, and the ``Run`` loop retries because the worker's own
flag is still false (Figure 7, reproduced below)::

    void Worker::Run() {
        while (!stop) {
            while (!stop && task != null) { ...; task = PopNextTask(); }
            if (!stop) task = group.Idle(this);
        }
    }

    Task WorkerGroup::Idle(Worker w) {
        while (!stop) { ... w.YieldExponential(); ... }
        return null;     // <- returns without yielding once stop is set
    }

Under the fair scheduler this is exactly outcome 2 of Section 2: the
divergent execution's suffix schedules the worker forever with zero
yields, and the checker reports a **good-samaritan violation** — a
performance bug (the worker burns its time slice and starves the thread
that would set its stop flag).

``fixed=True`` applies the obvious repair (yield on the idle retry path),
after which the pool is fair-terminating and the checker passes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from repro.runtime.api import check, join, sleep
from repro.runtime.program import VMProgram
from repro.sync.atomics import SharedVar
from repro.sync.mutex import Mutex


class WorkerGroup:
    """A group of workers sharing a task queue."""

    def __init__(self, name: str = "group") -> None:
        self.name = name
        self.stop = SharedVar(False, name=f"{name}.stop")
        self._queue_lock = Mutex(name=f"{name}.qlock")
        self._queue: Deque[Callable[[], Any]] = deque()
        self.workers: List["Worker"] = []
        self.completed: List[Any] = []

    # ------------------------------------------------------------------
    def submit(self, task: Callable[[], Any]):
        """Enqueue one task (any thread)."""
        yield from self._queue_lock.acquire()
        self._queue.append(task)
        yield from self._queue_lock.release()

    def pop_next_task(self):
        yield from self._queue_lock.acquire()
        task = self._queue.popleft() if self._queue else None
        yield from self._queue_lock.release()
        return task

    def idle(self, worker: "Worker", *, yield_on_stop: bool):
        """Figure 7's ``WorkerGroup::Idle``: wait for work to show up.

        With ``yield_on_stop`` false (the buggy library), the stop path
        returns without yielding.
        """
        while True:
            stopping = yield from self.stop.get()
            if stopping:
                break
            task = yield from self.pop_next_task()
            if task is not None:
                return task
            # No work to be found; yield to other threads.
            yield from sleep(1)  # YieldExponential
        if yield_on_stop:
            yield from sleep(1)  # the fix: be a good samaritan on shutdown
        return None

    def state_signature(self) -> Any:
        return (
            self.name,
            self.stop.peek(),
            len(self._queue),
            tuple(sorted(map(repr, self.completed))),
        )


class Worker:
    """One pool thread (Figure 7's ``Worker::Run``)."""

    def __init__(self, group: WorkerGroup, index: int,
                 *, fixed: bool) -> None:
        self.group = group
        self.name = f"worker{index}"
        self.stop = SharedVar(False, name=f"{self.name}.stop")
        self._fixed = fixed
        group.workers.append(self)

    def run(self):
        task: Optional[Callable[[], Any]] = None
        while True:
            stopping = yield from self.stop.get()
            if stopping:
                break
            # Inner loop: perform available tasks.
            while task is not None:
                self.group.completed.append(task())
                stopping = yield from self.stop.get()
                if stopping:
                    return
                task = yield from self.group.pop_next_task()
            stopping = yield from self.stop.get()
            if not stopping:
                task = yield from self.group.idle(
                    self, yield_on_stop=self._fixed,
                )


def worker_pool(tasks: int = 1, workers: int = 1, *,
                fixed: bool = False) -> VMProgram:
    """Harness: submit ``tasks`` trivial tasks, then shut the pool down.

    Shutdown mirrors the library under test: the group's stop flag is set
    first, each worker's flag afterwards — creating the window in which
    the buggy idle path spins without yielding.
    """

    def setup(env):
        group = WorkerGroup()
        pool = [Worker(group, i, fixed=fixed) for i in range(workers)]

        def worker_thread(worker: Worker):
            yield from worker.run()

        def controller(worker_tasks):
            for i in range(tasks):
                yield from group.submit(lambda i=i: ("done", i))
            # Shutdown: group first, then each worker — the racy window.
            yield from group.stop.set(True)
            for worker in pool:
                yield from worker.stop.set(True)
            for task in worker_tasks:
                yield from join(task)
            check(
                len(group.completed) <= tasks,
                f"{len(group.completed)} completions for {tasks} tasks",
            )

        worker_tasks = [
            env.spawn(worker_thread, worker, name=worker.name)
            for worker in pool
        ]
        env.spawn(controller, worker_tasks, name="controller")
        env.set_state_fn(lambda: (
            group.state_signature(),
            tuple(w.stop.peek() for w in pool),
        ))

    label = "fixed" if fixed else "buggy"
    return VMProgram(
        setup, name=f"worker-pool(tasks={tasks}, workers={workers}, {label})",
    )
