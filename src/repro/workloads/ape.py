"""APE — an asynchronous processing environment (substitute).

The paper tests "APE (Asynchronous Processing Environment), a library in
the Windows operating system that provides a set of data structures and
functions for asynchronous multithreaded code" (Table 1: 4 threads, ~250
sync ops per execution).  APE is not public; this module builds the
closest open equivalent: a completion-port-style executor —

* clients *post* work items to a shared queue;
* worker threads dequeue, run the item, and push a completion record to a
  completion port (a second queue);
* clients harvest completions, spinning with yields while none are ready;
* shutdown raises a stop flag and drains the workers.

The idle loops of workers and clients make the library nonterminating
without fairness — exactly the class of input CHESS could not handle
before the fair scheduler.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

from repro.runtime.api import check, join, sleep, yield_now
from repro.runtime.program import VMProgram
from repro.sync.atomics import SharedVar
from repro.sync.mutex import Mutex


class CompletionPort:
    """A queue of completion records, polled by clients."""

    def __init__(self, name: str = "port") -> None:
        self.name = name
        self._lock = Mutex(name=f"{name}.lock")
        self._completions: Deque[Any] = deque()

    def post(self, record: Any):
        yield from self._lock.acquire()
        self._completions.append(record)
        yield from self._lock.release()

    def try_harvest(self):
        """Non-blocking poll: ``(ok, record)``."""
        yield from self._lock.acquire()
        record = self._completions.popleft() if self._completions else None
        yield from self._lock.release()
        return (record is not None, record)

    def pending(self) -> int:
        return len(self._completions)

    def state_signature(self) -> Any:
        return (self.name, tuple(map(repr, self._completions)),
                self._lock.owner_name())


class ApeEnvironment:
    """The async work-item executor."""

    def __init__(self, name: str = "ape") -> None:
        self.name = name
        self._lock = Mutex(name=f"{name}.qlock")
        self._work: Deque[Tuple[int, Callable[[], Any]]] = deque()
        self.port = CompletionPort(name=f"{name}.port")
        self.stop = SharedVar(False, name=f"{name}.stop")
        self._next_id = 0

    # ------------------------------------------------------------------
    def post_work(self, item: Callable[[], Any]):
        """Submit one work item; evaluates to its completion key."""
        yield from self._lock.acquire()
        key = self._next_id
        self._next_id += 1
        self._work.append((key, item))
        yield from self._lock.release()
        return key

    def _take_work(self):
        yield from self._lock.acquire()
        entry = self._work.popleft() if self._work else None
        yield from self._lock.release()
        return entry

    def worker_loop(self):
        """Body of one worker thread: drain work until stopped + empty."""
        while True:
            entry = yield from self._take_work()
            if entry is not None:
                key, item = entry
                result = item()
                yield from self.port.post((key, result))
                continue
            stopping = yield from self.stop.get()
            if stopping:
                break
            yield from sleep(1)  # idle: be a good samaritan

    def shutdown(self):
        yield from self.stop.set(True)

    def state_signature(self) -> Any:
        return (
            self.name,
            tuple(key for key, _ in self._work),
            self.port.state_signature(),
            self.stop.peek(),
        )


def ape_program(items: int = 2, workers: int = 2) -> VMProgram:
    """Harness: one client posts ``items`` work items, harvests all the
    completions (spinning with yields), then shuts the environment down
    and checks exactly-once completion."""

    def setup(env):
        ape = ApeEnvironment()

        def worker():
            yield from ape.worker_loop()

        worker_tasks = [
            env.spawn(worker, name=f"ape-worker{i + 1}")
            for i in range(workers)
        ]

        def client():
            keys = []
            for i in range(items):
                key = yield from ape.post_work(lambda i=i: i * i)
                keys.append(key)
            harvested = {}
            while len(harvested) < items:
                ok, record = yield from ape.port.try_harvest()
                if not ok:
                    yield from yield_now()
                    continue
                key, result = record
                check(key not in harvested, f"completion {key} delivered twice")
                harvested[key] = result
            check(
                sorted(harvested) == keys
                and all(harvested[k] == k * k for k in keys),
                f"wrong completions: {harvested!r}",
            )
            yield from ape.shutdown()
            for task in worker_tasks:
                yield from join(task)

        env.spawn(client, name="client")
        env.set_state_fn(ape.state_signature)

    return VMProgram(setup, name=f"ape(items={items}, workers={workers})")
