"""Safety monitors: user-supplied checks evaluated at every state.

A monitor is any callable raising
:class:`~repro.runtime.errors.PropertyViolation` to fail the execution.
Monitors can be installed globally (``ExecutorConfig.monitors``, called
with the live program instance) or per program instance from its setup
function (``env.add_monitor``, a zero-argument closure over that
instance's shared objects).
"""

from __future__ import annotations

from typing import Callable

from repro.runtime.errors import AssertionViolation


def invariant(predicate: Callable[[], bool], message: str) -> Callable[[], None]:
    """A monitor that requires ``predicate()`` to hold in every state."""

    def monitor() -> None:
        if not predicate():
            raise AssertionViolation(f"invariant violated: {message}")

    monitor.__name__ = f"invariant:{message}"
    return monitor


def never(predicate: Callable[[], bool], message: str) -> Callable[[], None]:
    """A monitor that forbids ``predicate()`` from ever holding."""

    def monitor() -> None:
        if predicate():
            raise AssertionViolation(f"forbidden state reached: {message}")

    monitor.__name__ = f"never:{message}"
    return monitor
