"""Schedule persistence: CHESS-style repro files.

A counterexample found on one machine must be reproducible on another;
CHESS writes a *repro file* with the schedule and enough configuration to
replay it.  This module serializes an :class:`ExecutionResult`'s schedule
together with the policy/config fingerprint needed for faithful replay,
as stable JSON.

The program itself is referenced by name only — replay requires the same
program factory (same code version), which is checked loosely via the
recorded name and decision count.

::

    save_schedule("bug.json", program, record, policy_name="fair",
                  config=config)
    record = load_and_replay("bug.json", program, fair_policy(), config)
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Optional, Union

from repro.core.model import Program
from repro.durableio import atomic_write_text
from repro.core.policies import PolicyFactory
from repro.engine.executor import ExecutorConfig
from repro.engine.replay import replay_schedule
from repro.engine.results import ExecutionResult

FORMAT_VERSION = 1


def schedule_to_dict(program: Program, record: ExecutionResult, *,
                     policy_name: str = "",
                     config: Optional[ExecutorConfig] = None) -> dict:
    """A JSON-serializable repro record."""
    payload = {
        "format": FORMAT_VERSION,
        "program": program.name,
        "policy": policy_name,
        "outcome": record.outcome.value,
        "steps": record.steps,
        "schedule": record.schedule,
        "decisions": [
            {"kind": d.kind, "index": d.index, "options": d.options}
            for d in record.decisions
        ],
    }
    if record.violation is not None:
        payload["violation"] = str(record.violation)
    if record.divergence is not None:
        payload["divergence"] = {
            "kind": record.divergence.kind.value,
            "detail": record.divergence.detail,
        }
    if config is not None:
        payload["config"] = {
            "depth_bound": config.depth_bound,
            "on_depth_exceeded": config.on_depth_exceeded,
            "preemption_bound": config.preemption_bound,
        }
    return payload


def save_schedule(path: Union[str, Path], program: Program,
                  record: ExecutionResult, *, policy_name: str = "",
                  config: Optional[ExecutorConfig] = None) -> Path:
    """Write a repro file; returns the path.

    The write goes through :func:`repro.durableio.atomic_write` (temp
    file + fsync + rename + directory fsync), so a crash or SIGKILL at
    any instant can never leave a truncated repro file behind and a
    returned path means the file survives kill -9 — the previous file,
    if any, survives intact.
    """
    path = Path(path)
    text = json.dumps(
        schedule_to_dict(program, record, policy_name=policy_name,
                         config=config),
        indent=2, sort_keys=True,
    ) + "\n"
    atomic_write_text(path, text, label="schedule")
    return path


def load_schedule(path: Union[str, Path]) -> dict:
    """Read and validate a repro file.

    Raises :class:`ValueError` with a clear message when the file is
    truncated/corrupt, has an unknown format version, or lacks a
    schedule.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"repro file {path} is truncated or corrupt: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise ValueError(f"repro file {path} is truncated or corrupt: "
                         f"expected a JSON object")
    if payload.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported repro-file format {payload.get('format')!r}"
        )
    if not isinstance(payload.get("schedule"), list):
        raise ValueError("repro file has no schedule")
    return payload


def load_and_replay(
    path: Union[str, Path],
    program: Program,
    policy_factory: PolicyFactory,
    config: Optional[ExecutorConfig] = None,
) -> ExecutionResult:
    """Replay a repro file against the (same) program.

    Raises :class:`ValueError` when the file was recorded against a
    program with a different name, or when the schedule no longer fits
    the program's choice tree (code drift).
    """
    payload = load_schedule(path)
    if payload["program"] != program.name:
        raise ValueError(
            f"repro file was recorded for {payload['program']!r}, "
            f"got {program.name!r}"
        )
    if config is None and "config" in payload:
        stored = payload["config"]
        config = ExecutorConfig(
            depth_bound=stored.get("depth_bound"),
            on_depth_exceeded=stored.get("on_depth_exceeded", "divergence"),
            preemption_bound=stored.get("preemption_bound"),
        )
    return replay_schedule(program, payload["schedule"], policy_factory,
                           config)
