"""State-coverage tracking (the measurement substrate of Table 2).

The checker itself is stateless; coverage measurement is an *observer* that
hashes state signatures into a set, exactly like the paper's manually added
facilities.  The tracker also records a coverage-over-executions history so
the rate-of-coverage plots (Figures 5/6 territory) can be regenerated.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Set, Tuple


class CoverageTracker:
    """Accumulates distinct state signatures across executions.

    ``observer`` is an optional :class:`repro.obs.observer.Observer`; each
    recorded signature increments its ``states.new`` or
    ``states.revisited`` counter.
    """

    def __init__(self, observer=None) -> None:
        self._seen: Set[Hashable] = set()
        #: (execution_index, cumulative_state_count) checkpoints.
        self.history: List[Tuple[int, int]] = []
        self._execution_index = 0
        self._observer = observer

    def record(self, signature: Optional[Hashable]) -> bool:
        """Record one state; returns True if it was new."""
        if signature is None:
            return False
        before = len(self._seen)
        self._seen.add(signature)
        fresh = len(self._seen) != before
        if self._observer is not None:
            self._observer.state_hashed(fresh)
        return fresh

    def seen(self, signature: Hashable) -> bool:
        return signature in self._seen

    def end_execution(self) -> None:
        """Checkpoint after each execution (for coverage-rate curves)."""
        self._execution_index += 1
        self.history.append((self._execution_index, len(self._seen)))

    @property
    def count(self) -> int:
        return len(self._seen)

    def signatures(self) -> frozenset:
        return frozenset(self._seen)

    def missing_from(self, reference: "CoverageTracker") -> frozenset:
        """Signatures the reference reached that this tracker did not."""
        return frozenset(reference._seen - self._seen)

    def __len__(self) -> int:
        return len(self._seen)

    def __repr__(self) -> str:
        return f"<CoverageTracker states={len(self._seen)}>"
