"""Stateless exploration engine.

The engine never captures program states: it enumerates executions by
replaying decision prefixes (Verisoft-style), with the scheduling policy —
fair or not — deciding which threads are schedulable at every state.
"""

from repro.engine.classify import classify_divergence
from repro.engine.coverage import CoverageTracker
from repro.engine.executor import (
    Chooser,
    ExecutorConfig,
    GuidedChooser,
    RandomChooser,
    run_execution,
)
from repro.engine.liveness import (
    EventuallyMonitor,
    ResponseMonitor,
    TemporalMonitor,
)
from repro.engine.monitors import invariant, never
from repro.engine.persistence import (
    load_and_replay,
    load_schedule,
    save_schedule,
)
from repro.engine.replay import explain_deadlock, replay_schedule
from repro.engine.reporting import (
    diff_traces,
    first_divergence,
    format_thread_summary,
    thread_summary,
)
from repro.engine.results import (
    Decision,
    DivergenceKind,
    DivergenceReport,
    ExecutionResult,
    ExplorationResult,
    Outcome,
    TraceStep,
    format_trace,
)
from repro.engine.strategies import (
    ExplorationLimits,
    explore_bfs,
    explore_context_bounded,
    explore_dfs,
    explore_dfs_sleepsets,
    explore_random,
    iterative_context_bounding,
)

__all__ = [
    "Chooser",
    "CoverageTracker",
    "Decision",
    "DivergenceKind",
    "DivergenceReport",
    "EventuallyMonitor",
    "ExecutionResult",
    "ExecutorConfig",
    "ExplorationLimits",
    "ExplorationResult",
    "GuidedChooser",
    "Outcome",
    "RandomChooser",
    "ResponseMonitor",
    "TemporalMonitor",
    "TraceStep",
    "classify_divergence",
    "diff_traces",
    "explain_deadlock",
    "explore_bfs",
    "explore_context_bounded",
    "explore_dfs",
    "explore_dfs_sleepsets",
    "explore_random",
    "first_divergence",
    "format_thread_summary",
    "format_trace",
    "invariant",
    "iterative_context_bounding",
    "load_and_replay",
    "load_schedule",
    "never",
    "replay_schedule",
    "run_execution",
    "save_schedule",
    "thread_summary",
]
