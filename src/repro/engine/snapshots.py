"""Prefix-snapshot caching for the exploration hot path.

Stateless search pays for its statelessness on every backtrack: the next
execution shares a long decision prefix with the previous one, and the
engine re-executes that prefix from step 0 just to get back to the
frontier.  For the deterministic VM runtime that replay is pure overhead —
the prefix state is a function of the decision sequence alone — so the
engine can *snapshot* its bookkeeping at decision-depth intervals and
later fast-forward a fresh instance through the recorded prefix without
paying for the policy computation, chooser, trace recording, coverage
hashing or observer hooks of the full loop.

A :class:`PrefixSnapshot` is a **replay-log snapshot**: it does not
capture Python generator frames (CPython cannot copy them, and thread
bodies close over shared objects), it captures everything *around* the
program instance — the recorded :class:`~repro.engine.results.Decision`
prefix, a deep copy of the scheduling policy, the executor's counters and
trace tail, and (when coverage is on) the prefix's state signatures.
Restoring one instantiates the program afresh and drives it through the
recorded transitions with :meth:`~repro.runtime.vm.VirtualMachine.\
fast_forward`, which skips every engine-side cost of the prefix.  The
result is bit-for-bit identical to a full replay: same decisions, same
coverage totals, same policy state, same trace tail.

Applicability is gated by the ``supports_snapshot`` capability flag on
the program (True for :class:`~repro.runtime.program.VMProgram`, False
for the native thread runtime, which transparently falls back to full
replay because OS thread state cannot be reconstructed this way).

The cache is bounded two ways: LRU order with a memory budget (entry
sizes are estimated, not measured), and — for strategies that visit
guides in lexicographic order (DFS, sleep-set POR, each ICB sweep) —
eager invalidation of entries that can never match a future guide
(:meth:`PrefixSnapshotCache.invalidate_not_prefix_of`).  See
``docs/performance.md``.
"""

from __future__ import annotations

import copy
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.engine.results import Decision, TraceStep

#: Rough per-item cost estimates (bytes) for the memory budget.  These
#: deliberately overestimate: the budget is a safety rail, not an
#: accounting system.
_DECISION_BYTES = 120
_TRACE_STEP_BYTES = 400
_SIGNATURE_BYTES = 120
_BASE_BYTES = 2048  # entry + deep-copied policy state


@dataclass
class PrefixSnapshot:
    """Engine state at one prefix of one execution (see module docstring)."""

    #: The decision-index prefix this snapshot belongs to (the cache key).
    key: Tuple[int, ...]
    #: The recorded decisions, verbatim — replayed into the resumed
    #: execution's decision list so cached and uncached runs report
    #: identical decision sequences.
    decisions: Tuple[Decision, ...]
    #: Transitions executed in the prefix.
    steps: int
    #: Deep copy of the scheduling policy at the snapshot point (plain
    #: data for every built-in policy, so this is cheap and exact).
    policy: object
    preemptions: int = 0
    yields: int = 0
    last_tid: object = None
    last_was_yield: bool = False
    #: Trace tail (already bounded by the executor's trace window).
    trace: Tuple[TraceStep, ...] = ()
    #: State signatures of the prefix states (only recorded when coverage
    #: tracking is on; replayed into the tracker on restore so coverage
    #: totals cannot drift).
    signatures: Optional[Tuple[object, ...]] = None
    #: Strategy-specific extras (the sleep-set POR loop stores its sleep
    #: set here).
    extras: Dict[str, object] = field(default_factory=dict)

    def estimated_bytes(self) -> int:
        total = _BASE_BYTES
        total += _DECISION_BYTES * len(self.decisions)
        total += _TRACE_STEP_BYTES * len(self.trace)
        if self.signatures is not None:
            total += _SIGNATURE_BYTES * len(self.signatures)
        return total


class PrefixSnapshotCache:
    """LRU cache of :class:`PrefixSnapshot` entries, keyed by prefix.

    One cache belongs to one strategy (or one ICB sweep, or one parallel
    shard) — entries are only valid under the exact executor
    configuration they were captured with, so caches are never shared
    across configurations.
    """

    def __init__(
        self,
        interval: int = 16,
        *,
        memory_budget_bytes: int = 64 << 20,
        observer=None,
    ) -> None:
        if interval < 1:
            raise ValueError("snapshot interval must be positive")
        self.interval = interval
        self.memory_budget_bytes = memory_budget_bytes
        self._observer = observer
        self._entries: "OrderedDict[Tuple[int, ...], PrefixSnapshot]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.stored = 0
        self.evictions = 0
        self.failures = 0
        #: Estimated size of the entry created by the most recent
        #: :meth:`capture` (0 when the call only refreshed an existing
        #: key).  Read by the executor's cost accounting.
        self.last_capture_bytes = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config, program,
                    observer=None) -> Optional["PrefixSnapshotCache"]:
        """Build a cache for one strategy, or None when inapplicable.

        Returns None unless the config asks for snapshotting *and* the
        program declares the ``supports_snapshot`` capability (the native
        thread runtime does not — it silently falls back to full replay,
        as documented).
        """
        if config is None or not getattr(config, "snapshot_cache", False):
            return None
        if not getattr(program, "supports_snapshot", False):
            return None
        return cls(
            interval=getattr(config, "snapshot_interval", 16),
            memory_budget_bytes=(
                getattr(config, "snapshot_memory_mb", 64) << 20),
            observer=observer,
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def estimated_bytes(self) -> int:
        return self._bytes

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "estimated_bytes": self._bytes,
            "hits": self.hits,
            "misses": self.misses,
            "stored": self.stored,
            "evictions": self.evictions,
            "failures": self.failures,
        }

    # ------------------------------------------------------------------
    def lookup(self, guide: Sequence[int], *,
               need_signatures: bool = False) -> Optional[PrefixSnapshot]:
        """The deepest snapshot whose key is a prefix of ``guide``.

        ``need_signatures`` restricts the match to entries that recorded
        coverage signatures (a coverage-tracking run cannot restore from
        an entry captured without them — the totals would drift).
        """
        guide = tuple(guide)
        best: Optional[PrefixSnapshot] = None
        for key, entry in self._entries.items():
            if len(key) > len(guide) or key != guide[:len(key)]:
                continue
            if need_signatures and entry.signatures is None:
                continue
            if best is None or len(key) > len(best.key):
                best = entry
        if best is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(best.key)
        return best

    def capture(
        self,
        *,
        decisions: Sequence[Decision],
        steps: int,
        policy: object,
        preemptions: int = 0,
        yields: int = 0,
        last_tid: object = None,
        last_was_yield: bool = False,
        trace: Sequence[TraceStep] = (),
        signatures: Optional[Sequence[object]] = None,
        extras: Optional[Dict[str, object]] = None,
    ) -> bool:
        """Store a snapshot of the current executor state; returns True
        when a new entry was created (False: the key was already cached,
        which only refreshes its LRU position — no policy copy is made).
        """
        key = tuple(d.index for d in decisions)
        if key in self._entries:
            self._entries.move_to_end(key)
            self.last_capture_bytes = 0
            return False
        snapshot = PrefixSnapshot(
            key=key,
            decisions=tuple(decisions),
            steps=steps,
            policy=copy.deepcopy(policy),
            preemptions=preemptions,
            yields=yields,
            last_tid=last_tid,
            last_was_yield=last_was_yield,
            trace=tuple(trace),
            signatures=(tuple(signatures) if signatures is not None
                        else None),
            extras=dict(extras or {}),
        )
        self._entries[key] = snapshot
        self.last_capture_bytes = snapshot.estimated_bytes()
        self._bytes += self.last_capture_bytes
        self.stored += 1
        if self._observer is not None:
            self._observer.snapshot_stored(len(self._entries), self._bytes)
        self._evict_over_budget()
        return True

    def _evict_over_budget(self) -> None:
        evicted = 0
        while self._bytes > self.memory_budget_bytes and len(self._entries) > 1:
            _, entry = self._entries.popitem(last=False)
            self._bytes -= entry.estimated_bytes()
            evicted += 1
        if evicted:
            self.evictions += evicted
            if self._observer is not None:
                self._observer.snapshot_evicted(evicted)

    # ------------------------------------------------------------------
    def invalidate_not_prefix_of(self, guide: Sequence[int]) -> int:
        """Drop every entry whose key is not a prefix of ``guide``.

        Sound *and* complete for strategies that visit guides in
        lexicographic order (DFS, POR, each ICB sweep): after
        backtracking to ``guide``, every future execution's decision
        sequence starts with ``guide``, and all cached keys come from
        lexicographically earlier executions — an entry that diverges
        from ``guide`` diverges downward and can never match again.
        """
        guide = tuple(guide)
        dead = [
            key for key in self._entries
            if key[:len(guide)] != guide[:len(key)]
        ]
        for key in dead:
            self._bytes -= self._entries.pop(key).estimated_bytes()
        if dead:
            self.evictions += len(dead)
            if self._observer is not None:
                self._observer.snapshot_evicted(len(dead))
        return len(dead)

    def clear(self, *, failure: bool = False) -> None:
        """Drop everything (end of a subtree, or a failed fast-forward —
        the latter means the program broke the determinism contract, so
        no cached prefix can be trusted)."""
        if failure:
            self.failures += 1
        self._entries.clear()
        self._bytes = 0
