"""Prefix-snapshot caching for the exploration hot path.

Stateless search pays for its statelessness on every backtrack: the next
execution shares a long decision prefix with the previous one, and the
engine re-executes that prefix from step 0 just to get back to the
frontier.  For a deterministic runtime that replay is pure overhead —
the prefix state is a function of the decision sequence alone — so the
engine can *snapshot* its bookkeeping at decision-depth intervals and
later fast-forward a fresh instance through the recorded prefix without
paying for the policy computation, chooser, trace recording, coverage
hashing or observer hooks of the full loop.

A :class:`PrefixSnapshot` is a **replay-log snapshot**: it does not
capture Python generator frames (CPython cannot copy them, and thread
bodies close over shared objects), it captures everything *around* the
program instance — the recorded :class:`~repro.engine.results.Decision`
prefix, the scheduling policy's persistent state, the executor's
counters and trace tail, and (when coverage is on) the prefix's state
signatures.  Restoring one instantiates the program afresh and drives
it through the recorded transitions with ``fast_forward`` (implemented
by both :class:`~repro.runtime.vm.VirtualMachine` and
:class:`~repro.runtime.native.NativeInstance`), which skips every
engine-side cost of the prefix.  The result is bit-for-bit identical to
a full replay: same decisions, same coverage totals, same policy state,
same trace tail.

Policy state is captured through the persistent-snapshot protocol
(:meth:`~repro.core.policies.SchedulingPolicy.snapshot_state` /
``restore_state``): built-in policies store their mutable state as
dicts of immutable frozensets replaced copy-on-write, so a capture is a
few shallow dict copies whose values are *shared* between the live
policy, the cache, and every other entry captured while that state was
unchanged — O(changed), not O(state).  Policies that do not implement
the protocol fall back to ``copy.deepcopy`` (correct, just slower).

Applicability is gated by the ``supports_snapshot`` capability flag on
the program (True for :class:`~repro.runtime.program.VMProgram` and
:class:`~repro.runtime.native.NativeProgram`; any program without the
flag transparently falls back to full replay).

The cache is bounded two ways: LRU order with a memory budget (entry
sizes are estimated, not measured; an entry estimated over the whole
budget is refused outright and counted as ``oversized``), and — for
strategies that visit guides in lexicographic order (DFS, sleep-set
POR, each ICB sweep) — eager invalidation of entries that can never
match a future guide (:meth:`PrefixSnapshotCache.invalidate_not_prefix_of`).
Lookups walk a prefix trie keyed by decision indices, so the cost is
O(len(guide)) regardless of how many entries are cached.  See
``docs/performance.md``.
"""

from __future__ import annotations

import copy
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.results import Decision, TraceStep

#: Rough per-item cost estimates (bytes) for the memory budget.  These
#: deliberately overestimate: the budget is a safety rail, not an
#: accounting system.
_DECISION_BYTES = 120
_TRACE_STEP_BYTES = 400
_SIGNATURE_BYTES = 120
_BASE_BYTES = 2048  # entry + captured policy state


@dataclass
class PrefixSnapshot:
    """Engine state at one prefix of one execution (see module docstring)."""

    #: The decision-index prefix this snapshot belongs to (the cache key).
    key: Tuple[int, ...]
    #: The recorded decisions, verbatim — replayed into the resumed
    #: execution's decision list so cached and uncached runs report
    #: identical decision sequences.
    decisions: Tuple[Decision, ...]
    #: Transitions executed in the prefix.
    steps: int
    #: The policy's ``snapshot_state()`` value at the snapshot point —
    #: a persistent, structurally shared value (None is legal: the
    #: nonfair policy is stateless).
    policy_state: object = None
    #: Deep copy of the whole policy, only for policies that do not
    #: implement the snapshot protocol.  ``None`` on the fast path.
    policy_fallback: object = None
    preemptions: int = 0
    yields: int = 0
    last_tid: object = None
    last_was_yield: bool = False
    #: Trace tail (already bounded by the executor's trace window).
    trace: Tuple[TraceStep, ...] = ()
    #: State signatures of the prefix states (only recorded when coverage
    #: tracking is on; replayed into the tracker on restore so coverage
    #: totals cannot drift).
    signatures: Optional[Tuple[object, ...]] = None
    #: Strategy-specific extras (the sleep-set POR loop stores its sleep
    #: set here).
    extras: Dict[str, object] = field(default_factory=dict)

    def restore_policy(self, policy: object) -> object:
        """Return a policy carrying this snapshot's state.

        On the fast path the captured persistent state is applied to
        ``policy`` — the fresh per-execution instance the strategy
        already built — in O(changed), and that same object is returned.
        Fallback entries (policies without the protocol) return a deep
        copy of the captured policy instead.
        """
        if self.policy_fallback is not None:
            return copy.deepcopy(self.policy_fallback)
        policy.restore_state(self.policy_state)
        return policy

    def estimated_bytes(self) -> int:
        total = _BASE_BYTES
        total += _DECISION_BYTES * len(self.decisions)
        total += _TRACE_STEP_BYTES * len(self.trace)
        if self.signatures is not None:
            total += _SIGNATURE_BYTES * len(self.signatures)
        return total


class _TrieNode:
    """One node of the decision-prefix trie (children keyed by decision
    index)."""

    __slots__ = ("children", "entry")

    def __init__(self) -> None:
        self.children: Dict[int, "_TrieNode"] = {}
        self.entry: Optional[PrefixSnapshot] = None


class PrefixSnapshotCache:
    """LRU cache of :class:`PrefixSnapshot` entries, keyed by prefix.

    One cache belongs to one strategy (or one ICB sweep, or one parallel
    shard) — entries are only valid under the exact executor
    configuration they were captured with, so caches are never shared
    across configurations.

    Entries live in two structures kept in lockstep: an ``OrderedDict``
    for LRU order, and a prefix trie for O(len(guide)) lookups and
    prefix-structured invalidation.
    """

    def __init__(
        self,
        interval: int = 16,
        *,
        memory_budget_bytes: int = 64 << 20,
        observer=None,
    ) -> None:
        if interval < 1:
            raise ValueError("snapshot interval must be positive")
        self.interval = interval
        self.memory_budget_bytes = memory_budget_bytes
        self._observer = observer
        self._entries: "OrderedDict[Tuple[int, ...], PrefixSnapshot]" = OrderedDict()
        self._root = _TrieNode()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.stored = 0
        self.refreshes = 0
        self.oversized = 0
        self.evictions = 0
        self.failures = 0
        #: Estimated size of the entry created by the most recent
        #: :meth:`capture` (0 when the call only refreshed an existing
        #: key, or refused an oversized entry).  Read by the executor's
        #: cost accounting.
        self.last_capture_bytes = 0
        #: What the most recent :meth:`capture` did: "stored",
        #: "refreshed", or "oversized".
        self.last_capture_outcome = "stored"
        #: Trie nodes visited by the most recent :meth:`lookup` (tested
        #: to stay O(len(guide)) however many entries are cached).
        self.last_lookup_nodes = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config, program,
                    observer=None) -> Optional["PrefixSnapshotCache"]:
        """Build a cache for one strategy, or None when inapplicable.

        Returns None unless the config asks for snapshotting *and* the
        program declares the ``supports_snapshot`` capability (a program
        without it silently falls back to full replay, as documented).
        """
        if config is None or not getattr(config, "snapshot_cache", False):
            return None
        if not getattr(program, "supports_snapshot", False):
            return None
        return cls(
            interval=getattr(config, "snapshot_interval", 16),
            memory_budget_bytes=(
                getattr(config, "snapshot_memory_mb", 64) << 20),
            observer=observer,
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def estimated_bytes(self) -> int:
        return self._bytes

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "estimated_bytes": self._bytes,
            "hits": self.hits,
            "misses": self.misses,
            "stored": self.stored,
            "refreshes": self.refreshes,
            "oversized": self.oversized,
            "evictions": self.evictions,
            "failures": self.failures,
        }

    # ------------------------------------------------------------------
    # Trie maintenance (every entry lives at the trie node reached by
    # walking its key from the root).
    # ------------------------------------------------------------------
    def _trie_insert(self, snapshot: PrefixSnapshot) -> None:
        node = self._root
        for index in snapshot.key:
            child = node.children.get(index)
            if child is None:
                child = node.children[index] = _TrieNode()
            node = child
        node.entry = snapshot

    def _trie_remove(self, key: Tuple[int, ...]) -> None:
        path: List[Tuple[_TrieNode, int]] = []
        node = self._root
        for index in key:
            child = node.children.get(index)
            if child is None:
                return  # not present (defensive)
            path.append((node, index))
            node = child
        node.entry = None
        # Prune now-empty nodes bottom-up so dead branches don't slow
        # future lookups or leak memory.
        while path and node.entry is None and not node.children:
            parent, index = path.pop()
            del parent.children[index]
            node = parent

    @staticmethod
    def _collect_subtree(node: _TrieNode,
                         out: List[PrefixSnapshot]) -> None:
        stack = [node]
        while stack:
            current = stack.pop()
            if current.entry is not None:
                out.append(current.entry)
            stack.extend(current.children.values())

    # ------------------------------------------------------------------
    def lookup(self, guide: Sequence[int], *,
               need_signatures: bool = False) -> Optional[PrefixSnapshot]:
        """The deepest snapshot whose key is a prefix of ``guide``.

        A single walk down the prefix trie: O(len(guide)) regardless of
        entry count (``last_lookup_nodes`` records the nodes visited).

        ``need_signatures`` restricts the match to entries that recorded
        coverage signatures (a coverage-tracking run cannot restore from
        an entry captured without them — the totals would drift).
        """
        best: Optional[PrefixSnapshot] = None
        node = self._root
        visited = 0
        for index in guide:
            node = node.children.get(index)
            if node is None:
                break
            visited += 1
            entry = node.entry
            if entry is not None and not (need_signatures
                                          and entry.signatures is None):
                best = entry
        self.last_lookup_nodes = visited
        if best is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(best.key)
        return best

    def capture(
        self,
        *,
        decisions: Sequence[Decision],
        steps: int,
        policy: object,
        preemptions: int = 0,
        yields: int = 0,
        last_tid: object = None,
        last_was_yield: bool = False,
        trace: Sequence[TraceStep] = (),
        signatures: Optional[Sequence[object]] = None,
        extras: Optional[Dict[str, object]] = None,
    ) -> bool:
        """Store a snapshot of the current executor state; returns True
        when a new entry was created.

        False means the call was a no-op for the cache's contents:
        either the key was already cached (only its LRU position is
        refreshed — no policy state is captured) or the entry's
        estimated size exceeds the whole memory budget, in which case it
        is refused rather than stored (an entry the budget cannot hold
        would otherwise pin the cache over budget forever).  The
        ``last_capture_outcome`` attribute distinguishes the cases for
        the caller's cost accounting.
        """
        key = tuple(d.index for d in decisions)
        if key in self._entries:
            self._entries.move_to_end(key)
            self.last_capture_bytes = 0
            self.last_capture_outcome = "refreshed"
            self.refreshes += 1
            return False
        try:
            policy_state = policy.snapshot_state()
            policy_fallback = None
        except (AttributeError, NotImplementedError):
            policy_state = None
            policy_fallback = copy.deepcopy(policy)
        snapshot = PrefixSnapshot(
            key=key,
            decisions=tuple(decisions),
            steps=steps,
            policy_state=policy_state,
            policy_fallback=policy_fallback,
            preemptions=preemptions,
            yields=yields,
            last_tid=last_tid,
            last_was_yield=last_was_yield,
            trace=tuple(trace),
            signatures=(tuple(signatures) if signatures is not None
                        else None),
            extras=dict(extras or {}),
        )
        estimated = snapshot.estimated_bytes()
        if estimated > self.memory_budget_bytes:
            self.last_capture_bytes = 0
            self.last_capture_outcome = "oversized"
            self.oversized += 1
            if self._observer is not None:
                self._observer.snapshot_oversized(estimated)
            return False
        self._entries[key] = snapshot
        self._trie_insert(snapshot)
        self.last_capture_bytes = estimated
        self.last_capture_outcome = "stored"
        self._bytes += estimated
        self.stored += 1
        if self._observer is not None:
            self._observer.snapshot_stored(len(self._entries), self._bytes)
        self._evict_over_budget()
        return True

    def _evict_over_budget(self) -> None:
        # Oversized entries are refused at capture time, so evicting
        # oldest-first always terminates with the cache within budget.
        evicted = 0
        while self._bytes > self.memory_budget_bytes and self._entries:
            key, entry = self._entries.popitem(last=False)
            self._trie_remove(key)
            self._bytes -= entry.estimated_bytes()
            evicted += 1
        if evicted:
            self.evictions += evicted
            if self._observer is not None:
                self._observer.snapshot_evicted(evicted)

    # ------------------------------------------------------------------
    def invalidate_not_prefix_of(self, guide: Sequence[int]) -> int:
        """Drop every entry whose key is not a prefix of ``guide``.

        Sound *and* complete for strategies that visit guides in
        lexicographic order (DFS, POR, each ICB sweep): after
        backtracking to ``guide``, every future execution's decision
        sequence starts with ``guide``, and all cached keys come from
        lexicographically earlier executions — an entry that diverges
        from ``guide`` diverges downward and can never match again.

        Survivors are exactly the keys along the guide path plus the
        subtree below its end (keys *extending* the guide), so this is a
        single walk pruning the diverging side-branches.
        """
        guide = tuple(guide)
        dead: List[PrefixSnapshot] = []
        node = self._root
        for index in guide:
            for branch in list(node.children):
                if branch != index:
                    self._collect_subtree(node.children.pop(branch), dead)
            node = node.children.get(index)
            if node is None:
                break
        for entry in dead:
            del self._entries[entry.key]
            self._bytes -= entry.estimated_bytes()
        if dead:
            self.evictions += len(dead)
            if self._observer is not None:
                self._observer.snapshot_evicted(len(dead))
        return len(dead)

    def clear(self, *, failure: bool = False) -> None:
        """Drop everything (end of a subtree, or a failed fast-forward —
        the latter means the program broke the determinism contract, so
        no cached prefix can be trusted)."""
        if failure:
            self.failures += 1
        self._entries.clear()
        self._root = _TrieNode()
        self._bytes = 0
