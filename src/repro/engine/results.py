"""Result types produced by the exploration engine."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Counter as CounterType
from typing import FrozenSet, Hashable, List, Optional, Sequence, Tuple

from repro.runtime.errors import PropertyViolation

Tid = Hashable


class Outcome(enum.Enum):
    """How one execution ended."""

    TERMINATED = "terminated"  # all threads finished
    DEADLOCK = "deadlock"  # live threads, none enabled
    VIOLATION = "violation"  # a safety property failed
    DIVERGENCE = "divergence"  # depth bound exceeded in fair mode (warning)
    DEPTH_PRUNED = "depth-pruned"  # depth bound exceeded, execution cut short
    VISITED_PRUNED = "visited-pruned"  # stateful pruning hit a known state
    CRASHED = "crashed"  # quarantined crash (capture_crashes mode)
    ABORTED = "aborted"  # watchdog cut a hung execution short


@dataclass(frozen=True)
class Decision:
    """One nondeterministic choice made during an execution.

    The sequence of decisions *is* the schedule: replaying it reproduces
    the execution exactly (stateless model checking).
    """

    __slots__ = ("kind", "index", "options", "chosen")

    kind: str  # "thread" or "data"
    index: int  # which alternative was taken
    options: int  # how many alternatives existed
    chosen: object  # the thread id or data value picked (informational)


@dataclass(frozen=True)
class TraceStep:
    """One executed transition, as recorded for reports and classification."""

    __slots__ = ("tid", "thread_name", "operation", "yielded", "enabled_before")

    tid: Tid
    thread_name: str
    operation: str
    yielded: bool
    enabled_before: FrozenSet[Tid]


class DivergenceKind(enum.Enum):
    """Classification of an execution that exceeded the divergence bound
    (the two liveness outcomes of Section 2, plus the unfair case that can
    only arise without the fair scheduler)."""

    LIVELOCK = "livelock"  # fair nontermination
    GOOD_SAMARITAN_VIOLATION = "good-samaritan-violation"
    UNFAIR = "unfair-divergence"
    #: A user-supplied temporal liveness property failed on the divergent
    #: suffix (the Section 6 extension, :mod:`repro.engine.liveness`).
    TEMPORAL = "temporal-violation"


@dataclass(frozen=True)
class DivergenceReport:
    kind: DivergenceKind
    culprits: Tuple[str, ...]  # thread names this report blames
    window: int  # size of the analyzed trace suffix
    detail: str

    def __str__(self) -> str:
        return f"{self.kind.value}: {self.detail}"


@dataclass
class ExecutionResult:
    """Everything the engine learned from one execution."""

    outcome: Outcome
    decisions: List[Decision]
    steps: int
    preemptions: int = 0
    violation: Optional[PropertyViolation] = None
    divergence: Optional[DivergenceReport] = None
    trace: Sequence[TraceStep] = ()
    hit_depth_bound: bool = False
    completed_randomly: bool = False
    #: The exception behind an :attr:`Outcome.CRASHED` record (crash
    #: quarantine mode); None otherwise.
    crash: Optional[BaseException] = None
    #: Why an :attr:`Outcome.ABORTED` execution was cut short (watchdog).
    abort_reason: Optional[str] = None
    #: The live program instance at the end of the run; only populated
    #: when ``ExecutorConfig.keep_instance`` is set (post-mortem
    #: inspection, e.g. deadlock explanations).
    final_instance: object = None

    @property
    def schedule(self) -> List[int]:
        """The replayable guide: decision indices in order."""
        return [d.index for d in self.decisions]


@dataclass
class ExplorationResult:
    """Aggregate outcome of a systematic search."""

    program_name: str
    policy_name: str
    strategy_name: str
    executions: int = 0
    transitions: int = 0
    outcomes: CounterType = None  # Counter[Outcome]
    violations: List[ExecutionResult] = field(default_factory=list)
    divergences: List[ExecutionResult] = field(default_factory=list)
    deadlocks: List[ExecutionResult] = field(default_factory=list)
    #: Executions that crashed and were quarantined (crash-capture mode).
    crashes: List[ExecutionResult] = field(default_factory=list)
    #: Executions the watchdog aborted for exceeding their time budget.
    aborted_executions: int = 0
    #: Executions that hit the depth bound (the paper's "nonterminating
    #: executions" measure of Figure 2).
    nonterminating_executions: int = 0
    wall_seconds: float = 0.0
    #: True when the search exhausted the (bounded) execution tree.
    complete: bool = False
    #: True when a resource limit (executions/time) stopped the search.
    limit_hit: bool = False
    #: Why the search stopped early ("violation", "divergence",
    #: "max-executions", "max-seconds", "max-crashes", "interrupted"), or
    #: None when the bounded tree was exhausted.
    stop_reason: Optional[str] = None
    first_violation_execution: Optional[int] = None
    states_covered: Optional[int] = None

    def __post_init__(self) -> None:
        if self.outcomes is None:
            from collections import Counter

            self.outcomes = Counter()

    @property
    def found_violation(self) -> bool:
        return bool(self.violations) or bool(self.deadlocks)

    @property
    def found_divergence(self) -> bool:
        return bool(self.divergences)

    @property
    def interrupted(self) -> bool:
        """True when a signal / KeyboardInterrupt stopped the search."""
        return self.stop_reason == "interrupted"

    def livelocks(self) -> List[ExecutionResult]:
        return [r for r in self.divergences
                if r.divergence and r.divergence.kind is DivergenceKind.LIVELOCK]

    def gs_violations(self) -> List[ExecutionResult]:
        return [
            r for r in self.divergences
            if r.divergence
            and r.divergence.kind is DivergenceKind.GOOD_SAMARITAN_VIOLATION
        ]

    def summary(self) -> str:
        lines = [
            f"program={self.program_name} policy={self.policy_name} "
            f"strategy={self.strategy_name}",
            f"  executions={self.executions} transitions={self.transitions} "
            f"wall={self.wall_seconds:.2f}s complete={self.complete}",
            f"  outcomes={dict((k.value, v) for k, v in self.outcomes.items())}",
        ]
        if self.states_covered is not None:
            lines.append(f"  states covered={self.states_covered}")
        if self.stop_reason == "interrupted":
            lines.append("  search interrupted; partial results above")
        if self.violations:
            first = self.violations[0].violation
            lines.append(f"  VIOLATION: {first}")
        if self.deadlocks:
            lines.append(f"  DEADLOCK found ({len(self.deadlocks)} executions)")
        for record in self.divergences[:3]:
            lines.append(f"  DIVERGENCE: {record.divergence}")
        for record in self.crashes[:3]:
            lines.append(f"  CRASH quarantined: {record.crash}")
        if self.aborted_executions:
            lines.append(
                f"  {self.aborted_executions} execution(s) aborted by the "
                f"watchdog")
        return "\n".join(lines)


def format_trace(trace: Sequence[TraceStep], limit: Optional[int] = None) -> str:
    """Render a trace as the numbered transition listing used in reports."""
    steps = list(trace)
    if limit is not None and len(steps) > limit:
        shown = steps[-limit:]
        header = [f"... ({len(steps) - limit} earlier steps elided)"]
        offset = len(steps) - limit
    else:
        shown = steps
        header = []
        offset = 0
    lines = header
    for i, step in enumerate(shown):
        marker = " [yield]" if step.yielded else ""
        lines.append(f"{offset + i:4d}. {step.thread_name}: {step.operation}{marker}")
    return "\n".join(lines)
