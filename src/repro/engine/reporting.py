"""Trace analysis helpers for debugging counterexamples.

When the checker hands you a failing schedule, the first question is
usually "how does it differ from a passing one?".  These helpers answer
it textually:

* :func:`first_divergence` — index of the first differing transition of
  two traces;
* :func:`diff_traces` — a side-by-side rendering around the divergence
  point;
* :func:`thread_summary` — per-thread transition/yield counts of a trace
  (the quantities the divergence classifier reasons about).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.results import TraceStep


def first_divergence(left: Sequence[TraceStep],
                     right: Sequence[TraceStep]) -> Optional[int]:
    """Index of the first differing step, or None if one is a prefix of
    the other (equal-length identical traces included)."""
    for index, (a, b) in enumerate(zip(left, right)):
        if (a.tid, a.operation) != (b.tid, b.operation):
            return index
    return None


def _label(step: Optional[TraceStep]) -> str:
    if step is None:
        return "-"
    marker = " [yield]" if step.yielded else ""
    return f"{step.thread_name}: {step.operation}{marker}"


def diff_traces(left: Sequence[TraceStep], right: Sequence[TraceStep], *,
                context: int = 3,
                names: Tuple[str, str] = ("left", "right")) -> str:
    """Render both traces around their first divergence."""
    split = first_divergence(left, right)
    if split is None:
        if len(left) == len(right):
            return "traces are identical"
        split = min(len(left), len(right))
        note = (f"traces agree for {split} steps; "
                f"{names[0] if len(left) > len(right) else names[1]} "
                f"continues")
    else:
        note = f"traces diverge at step {split}"

    start = max(0, split - context)
    end = max(len(left), len(right))
    stop = min(end, split + context + 1)
    width = max([len(_label(step)) for step in left[start:stop]] + [8])

    lines = [note, f"{'step':>6}  {names[0]:<{width}}  {names[1]}"]
    for index in range(start, stop):
        a = left[index] if index < len(left) else None
        b = right[index] if index < len(right) else None
        marker = ">>" if index == split else "  "
        lines.append(
            f"{marker}{index:>4}  {_label(a):<{width}}  {_label(b)}"
        )
    return "\n".join(lines)


def thread_summary(trace: Sequence[TraceStep]) -> List[Tuple[str, int, int]]:
    """Per-thread (name, transitions, yields), sorted by transitions."""
    scheduled: Counter = Counter()
    yields: Counter = Counter()
    for step in trace:
        scheduled[step.thread_name] += 1
        if step.yielded:
            yields[step.thread_name] += 1
    return sorted(
        ((name, count, yields[name]) for name, count in scheduled.items()),
        key=lambda row: -row[1],
    )


def format_thread_summary(trace: Sequence[TraceStep]) -> str:
    rows = thread_summary(trace)
    lines = [f"{'thread':<16} {'transitions':>11} {'yields':>7}"]
    for name, transitions, yield_count in rows:
        lines.append(f"{name:<16} {transitions:>11} {yield_count:>7}")
    return "\n".join(lines)
