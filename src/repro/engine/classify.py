"""Classify divergent executions: livelock vs good-samaritan violation.

The fair scheduler's two liveness outcomes (Section 2 of the paper) both
manifest the same way in practice: an execution exceeds a depth bound set
orders of magnitude above the expected execution length.  The user then
"examines" the execution; this module automates that examination over the
recorded trace suffix:

* some thread is scheduled heavily in the suffix without ever yielding
  ⇒ **good-samaritan violation** (Figure 7's spinning worker);
* every thread that was enabled in the suffix was also scheduled and the
  scheduled threads keep yielding ⇒ a **fair** infinite execution, i.e. a
  **livelock** (Figure 1's philosophers, Figure 8's stale-read spin);
* some thread that is still enabled at the end of the suffix was never
  scheduled in it ⇒ **unfair divergence** — impossible under the fair
  policy by Theorem 1, and evidence of wasted work when it shows up in
  unfair baseline runs.  (A thread that was enabled early in the suffix
  but blocked or finished before its end was not starved — it left the
  race on its own.)
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence, Set

from repro.engine.results import DivergenceKind, DivergenceReport, TraceStep


def classify_divergence(
    trace: Sequence[TraceStep],
    *,
    window: int = 256,
    gs_schedule_threshold: int = 8,
    observer=None,
) -> DivergenceReport:
    """Analyze the suffix of a divergent execution.

    Parameters
    ----------
    trace:
        The recorded steps (possibly already truncated to a suffix).
    window:
        How many trailing steps to analyze.  Must be small relative to the
        divergence bound and large relative to the program's cycles.
    gs_schedule_threshold:
        Minimum number of times a thread must run yield-free inside the
        window to be blamed for a good-samaritan violation.
    observer:
        Optional :class:`repro.obs.observer.Observer`; the analysis is
        charged to its ``classify`` phase timer.
    """
    if observer is not None:
        with observer.timers.measure("classify"):
            return _classify(trace, window, gs_schedule_threshold)
    return _classify(trace, window, gs_schedule_threshold)


def _classify(
    trace: Sequence[TraceStep],
    window: int,
    gs_schedule_threshold: int,
) -> DivergenceReport:
    steps = list(trace)[-window:]
    if not steps:
        return DivergenceReport(
            kind=DivergenceKind.UNFAIR,
            culprits=(),
            window=0,
            detail="divergence with no recorded trace",
        )

    scheduled: Counter = Counter()
    yields: Counter = Counter()
    names = {}
    enabled_somewhere: Set = set()
    for step in steps:
        scheduled[step.tid] += 1
        names[step.tid] = step.thread_name
        if step.yielded:
            yields[step.tid] += 1
        enabled_somewhere.update(step.enabled_before)

    non_yielders = sorted(
        (
            names[tid]
            for tid, count in scheduled.items()
            if count >= gs_schedule_threshold and yields[tid] == 0
        ),
    )
    if non_yielders:
        return DivergenceReport(
            kind=DivergenceKind.GOOD_SAMARITAN_VIOLATION,
            culprits=tuple(non_yielders),
            window=len(steps),
            detail=(
                f"thread(s) {', '.join(non_yielders)} scheduled repeatedly "
                f"without yielding in the last {len(steps)} steps "
                f"(idle spinning burns the time slice)"
            ),
        )

    # Starvation requires the thread to *still* be enabled near the end of
    # the window: a thread that was enabled early on and then blocked (or
    # finished) was not starved by the scheduler — it left the race.  Only
    # threads enabled in the trailing quarter of the window and never
    # scheduled anywhere in it count as starved.
    tail_start = max(0, len(steps) - max(1, len(steps) // 4))
    enabled_in_tail: Set = set()
    for step in steps[tail_start:]:
        enabled_in_tail.update(step.enabled_before)
    starved = sorted(
        str(names.get(tid, tid))
        for tid in enabled_in_tail
        if scheduled[tid] == 0
    )
    if starved:
        return DivergenceReport(
            kind=DivergenceKind.UNFAIR,
            culprits=tuple(starved),
            window=len(steps),
            detail=(
                f"enabled thread(s) {', '.join(starved)} starved in the last "
                f"{len(steps)} steps: the divergence is an unfair schedule, "
                f"not a program error"
            ),
        )

    participants = sorted(names[tid] for tid in scheduled)
    return DivergenceReport(
        kind=DivergenceKind.LIVELOCK,
        culprits=tuple(participants),
        window=len(steps),
        detail=(
            f"fair nonterminating execution: thread(s) "
            f"{', '.join(participants)} all keep running and yielding but "
            f"the program makes no progress"
        ),
    )
