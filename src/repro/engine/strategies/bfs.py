"""Breadth-first exploration.

Section 3 of the paper notes the nondeterministic scheduler "is easy to
augment ... with a queue to perform breadth-first search".  Stateless BFS
replays one execution per *node* of the choice tree (not per leaf), which
makes it considerably more expensive than DFS; it is provided for
completeness and for finding shortest counterexamples.

Unlike DFS, the BFS frontier (the queue of pending prefixes) can grow
large; checkpoints serialize the whole queue, so ``--checkpoint-interval``
matters more here than for the other strategies.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional

from repro.core.model import Program
from repro.core.policies import PolicyFactory
from repro.engine.coverage import CoverageTracker
from repro.engine.executor import ExecutorConfig, GuidedChooser, run_execution
from repro.engine.results import ExecutionResult, ExplorationResult
from repro.engine.snapshots import PrefixSnapshotCache
from repro.engine.strategies.base import ExplorationLimits, SearchStrategy


class BfsStrategy(SearchStrategy):
    """Level-by-level search over the choice tree.

    Every queue entry is a decision prefix; running it discovers the
    branching factor at its frontier, producing one child prefix per
    alternative.  Prefixes that turn out to be complete executions are
    leaves.  The head of the queue is only popped once its execution has
    been folded in, so a checkpoint taken between the two re-runs the
    head on resume instead of losing it.
    """

    name = "bfs"

    def __init__(
        self,
        program: Program,
        policy_factory: PolicyFactory,
        config: Optional[ExecutorConfig] = None,
        limits: Optional[ExplorationLimits] = None,
        *,
        prefix: Optional[List[int]] = None,
        coverage: Optional[CoverageTracker] = None,
        listener: Optional[Callable[[ExecutionResult], None]] = None,
        observer=None,
        resilience=None,
    ) -> None:
        super().__init__(
            program,
            policy_factory,
            config or ExecutorConfig(),
            limits,
            coverage=coverage,
            listener=listener,
            observer=observer,
            resilience=resilience,
        )
        # A prefix roots the level-order walk at one subtree node; the
        # queue can never leave the subtree because children only extend
        # their parent's guide.
        self.queue: deque = deque([list(prefix or [])])
        #: Prefix-snapshot cache.  BFS revisits prefixes level by level
        #: with no lexicographic order, so there is no sound eager
        #: invalidation — the LRU memory budget is the only bound.
        self.snapshot_cache = PrefixSnapshotCache.from_config(
            self.config, program, observer=observer)

    # ------------------------------------------------------------------
    def _has_work(self) -> bool:
        return bool(self.queue)

    def _run_once(self) -> ExecutionResult:
        return run_execution(
            self.program,
            self.policy_factory(),
            GuidedChooser(self.queue[0]),
            self.config,
            coverage=self.coverage,
            observer=self.observer,
            snapshot_cache=self.snapshot_cache,
        )

    def _advance(self, record: ExecutionResult) -> None:
        guide: List[int] = self.queue.popleft()
        if len(record.decisions) > len(guide):
            frontier = record.decisions[len(guide)]
            for alternative in range(frontier.options):
                self.queue.append(guide + [alternative])

    # ------------------------------------------------------------------
    def _frontier_state(self) -> dict:
        return {"queue": [list(guide) for guide in self.queue]}

    def _load_frontier(self, state: dict) -> None:
        self.queue = deque(list(guide) for guide in state.get("queue", []))


def explore_bfs(
    program: Program,
    policy_factory: PolicyFactory,
    config: Optional[ExecutorConfig] = None,
    limits: Optional[ExplorationLimits] = None,
    *,
    coverage: Optional[CoverageTracker] = None,
    listener: Optional[Callable[[ExecutionResult], None]] = None,
    observer=None,
    resilience=None,
) -> ExplorationResult:
    """Search the choice tree level by level."""
    return BfsStrategy(
        program,
        policy_factory,
        config,
        limits,
        coverage=coverage,
        listener=listener,
        observer=observer,
        resilience=resilience,
    ).explore()
