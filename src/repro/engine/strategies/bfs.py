"""Breadth-first exploration.

Section 3 of the paper notes the nondeterministic scheduler "is easy to
augment ... with a queue to perform breadth-first search".  Stateless BFS
replays one execution per *node* of the choice tree (not per leaf), which
makes it considerably more expensive than DFS; it is provided for
completeness and for finding shortest counterexamples.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.core.model import Program
from repro.core.policies import PolicyFactory
from repro.engine.coverage import CoverageTracker
from repro.engine.executor import ExecutorConfig, GuidedChooser, run_execution
from repro.engine.results import ExecutionResult, ExplorationResult
from repro.engine.strategies.base import Aggregator, ExplorationLimits


def explore_bfs(
    program: Program,
    policy_factory: PolicyFactory,
    config: Optional[ExecutorConfig] = None,
    limits: Optional[ExplorationLimits] = None,
    *,
    coverage: Optional[CoverageTracker] = None,
    listener: Optional[Callable[[ExecutionResult], None]] = None,
    observer=None,
) -> ExplorationResult:
    """Search the choice tree level by level.

    Every queue entry is a decision prefix; running it discovers the
    branching factor at its frontier, producing one child prefix per
    alternative.  Prefixes that turn out to be complete executions are
    leaves.
    """
    config = config or ExecutorConfig()
    limits = limits or ExplorationLimits()
    policy_probe = policy_factory()
    aggregator = Aggregator(
        program_name=program.name,
        policy_name=policy_probe.name,
        strategy_name="bfs",
        limits=limits,
        coverage=coverage,
        listener=listener,
        observer=observer,
    )

    queue = deque([[]])
    stop_reason: Optional[str] = None
    while queue:
        guide = queue.popleft()
        record = run_execution(
            program,
            policy_factory(),
            GuidedChooser(guide),
            config,
            coverage=coverage,
            observer=observer,
        )
        stop_reason = aggregator.add(record)
        if stop_reason is not None:
            break
        if len(record.decisions) > len(guide):
            frontier = record.decisions[len(guide)]
            for alternative in range(frontier.options):
                queue.append(guide + [alternative])

    complete = not queue and stop_reason is None
    return aggregator.finish(complete=complete, stop_reason=stop_reason)
