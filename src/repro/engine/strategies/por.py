"""Sleep-set partial-order reduction (the paper's Section 5 outlook).

The paper notes that partial-order reduction "can be used to significantly
reduce the set of all fair schedules of fair-terminating programs, an
interesting avenue of future research".  This module implements the
classic sleep-set algorithm (Godefroid) on top of the stateless engine:

* when a state is expanded, each explored thread is added to the *sleep
  set* seen by its later siblings;
* a child inherits the sleep set filtered by **independence** with the
  executed transition — two transitions of different threads are
  independent iff both declare resource sets
  (:meth:`repro.runtime.ops.Operation.resources`) and those sets are
  disjoint;
* sleeping threads are not scheduled, pruning executions that only
  permute independent transitions.

Sleep sets preserve deadlocks and safety violations.  Soundness relies on
the runtime contract that all shared effects go through operations (plain
Python code between scheduling points is thread-local) — the same
contract the precise-signature machinery uses.

Because the search is stateless, the sleep sets along a replayed prefix
are recomputed deterministically from the guide: at a decision with
chosen index ``k``, the already-explored siblings are exactly
``available[:k]``.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Set

from repro.chaos.faults import InjectedFault, fault_at
from repro.core.model import Program, RunStatus
from repro.core.policies import PolicyFactory
from repro.engine.coverage import CoverageTracker
from repro.engine.executor import ExecutorConfig
from repro.engine.results import Decision, ExecutionResult, ExplorationResult, Outcome, TraceStep
from repro.engine.snapshots import PrefixSnapshotCache
from repro.engine.strategies.base import (
    ExplorationLimits,
    SearchStrategy,
    next_dfs_guide,
)
from repro.runtime.errors import PropertyViolation


def _independent(op_a, op_b) -> bool:
    """Independence of two pending operations of *different* threads."""
    resources_a = op_a.resources() if op_a is not None else None
    if resources_a is None:
        return False
    resources_b = op_b.resources() if op_b is not None else None
    if resources_b is None:
        return False
    return not (set(resources_a) & set(resources_b))


def _pending_op(instance, tid):
    getter = getattr(instance, "task", None)
    if getter is None:
        return None  # explicit systems: no op objects — no reduction
    return getter(tid).pending


def _sorted(values) -> list:
    try:
        return sorted(values)
    except TypeError:
        return sorted(values, key=repr)


def _run_once_with_sleep(
    program: Program,
    policy,
    guide: List[int],
    *,
    depth_bound: Optional[int],
    coverage: Optional[CoverageTracker],
    observer=None,
    snapshot_cache: Optional[PrefixSnapshotCache] = None,
) -> ExecutionResult:
    """One execution with sleep sets carried along the path."""
    instance = program.instantiate()
    timers = observer.timers if observer is not None else None
    profiler = observer.profiler if observer is not None else None

    # Prefix-snapshot restore (docs/performance.md): the sleep set at the
    # snapshot point rides along in the entry's extras, and the restored
    # fast-forward skips local monitors because this loop never runs them.
    restored = None
    if snapshot_cache is not None and hasattr(instance, "fast_forward"):
        t0 = time.perf_counter() if timers is not None else 0.0
        restored = snapshot_cache.lookup(
            guide, need_signatures=coverage is not None)
        if restored is not None:
            try:
                rule = fault_at("snapshot.restore", steps=restored.steps)
                if rule is not None:
                    raise InjectedFault(
                        f"injected snapshot.restore fault ({rule.kind})")
                instance.fast_forward(restored.decisions, run_monitors=False)
            except Exception:  # noqa: BLE001 - determinism-contract guard
                snapshot_cache.clear(failure=True)
                closer = getattr(instance, "close", None)
                if closer is not None:
                    closer()
                instance = program.instantiate()
                restored = None
        if timers is not None:
            timers.add("snapshot", time.perf_counter() - t0)
        if observer is not None:
            observer.snapshot_lookup(
                restored is not None,
                restored.steps if restored is not None else 0)

    if restored is not None:
        policy = restored.restore_policy(policy)
        decisions: List[Decision] = list(restored.decisions)
        trace: List[TraceStep] = list(restored.trace)
        sleep: Set = set(restored.extras.get("sleep", ()))
        cursor = len(restored.decisions)
        steps = restored.steps
        yields = restored.yields
        if coverage is not None and restored.signatures:
            for signature in restored.signatures:
                coverage.record(signature)
    else:
        for tid in _sorted(instance.thread_ids()):
            policy.register_thread(tid)
        decisions = []
        trace = []
        sleep = set()
        cursor = 0
        steps = 0
        yields = 0

    if profiler is not None:
        pnode = profiler.enter(d.index for d in decisions)
        pmark = time.perf_counter()
    else:
        pnode = None
        pmark = 0.0

    track_signatures = snapshot_cache is not None and coverage is not None
    prefix_signatures: List = (list(restored.signatures or ())
                               if restored is not None else [])
    violation = None
    outcome = Outcome.TERMINATED
    if observer is not None:
        observer.execution_started()

    while True:
        if (snapshot_cache is not None and steps > 0
                and steps % snapshot_cache.interval == 0):
            t0 = time.perf_counter() if timers is not None else 0.0
            snapshot_cache.capture(
                decisions=decisions,
                steps=steps,
                policy=policy,
                yields=yields,
                trace=trace[-256:],
                signatures=(prefix_signatures if track_signatures else None),
                extras={"sleep": frozenset(sleep)},
            )
            if timers is not None:
                timers.add("snapshot", time.perf_counter() - t0)
        if coverage is not None:
            if timers is not None:
                t0 = time.perf_counter()
                signature = instance.state_signature()
                coverage.record(signature)
                timers.add("hash", time.perf_counter() - t0)
            else:
                signature = instance.state_signature()
                coverage.record(signature)
            if track_signatures:
                prefix_signatures.append(signature)
        enabled = instance.enabled_threads()
        if not enabled:
            outcome = (Outcome.TERMINATED
                       if instance.status() is RunStatus.TERMINATED
                       else Outcome.DEADLOCK)
            break
        if depth_bound is not None and steps >= depth_bound:
            outcome = Outcome.DEPTH_PRUNED
            break
        if timers is not None:
            t0 = time.perf_counter()
            schedulable = policy.schedulable(enabled)
            timers.add("policy", time.perf_counter() - t0)
            state = getattr(policy, "algorithm_state", None)
            if state is not None:
                observer.priority_relation(state.priority.edge_count())
        else:
            schedulable = policy.schedulable(enabled)
        available = [t for t in _sorted(schedulable) if t not in sleep]
        if not available:
            # Everything schedulable is asleep: this execution is a
            # redundant permutation of one already explored.
            outcome = Outcome.VISITED_PRUNED
            break
        if cursor < len(guide):
            index = guide[cursor]
            if not 0 <= index < len(available):
                raise ValueError("sleep-set replay diverged from guide")
        else:
            index = 0
        cursor += 1
        tid = available[index]
        decisions.append(Decision("thread", index, len(available), tid))
        if profiler is not None:
            pnode = profiler.descend(pnode, index)
        if observer is not None:
            observer.decision(steps, "thread", index, len(available), tid,
                              len(schedulable), len(enabled))

        executed_op = _pending_op(instance, tid)
        # Sleep set of the child: previously sleeping threads plus the
        # already-explored siblings, kept only while independent of the
        # executed transition.
        inherited = sleep | set(available[:index])
        t0 = time.perf_counter() if timers is not None else 0.0
        try:
            info = instance.step(tid)
        except PropertyViolation as exc:
            violation = exc
            outcome = Outcome.VIOLATION
            steps += 1
            if timers is not None:
                timers.add("execute", time.perf_counter() - t0)
            if observer is not None:
                observer.violation(steps, str(exc))
            break
        if timers is not None:
            timers.add("execute", time.perf_counter() - t0)
        policy.observe_step(info)
        trace.append(TraceStep(tid, str(tid), info.operation, info.yielded,
                               enabled))
        steps += 1
        if observer is not None and info.yielded:
            yields += 1
        sleep = {
            u for u in inherited
            if u != tid and _independent(_pending_op(instance, u),
                                         executed_op)
        }
        if profiler is not None:
            now = time.perf_counter()
            profiler.add_step(pnode, now - pmark)
            pmark = now

    result = ExecutionResult(
        outcome=outcome,
        decisions=decisions,
        steps=steps,
        violation=violation,
        trace=tuple(trace[-256:]),
    )
    if profiler is not None:
        profiler.finish_execution(pnode, time.perf_counter() - pmark)
    if observer is not None:
        if guide:
            limit = min(len(guide), len(decisions))
            replayed = limit - (restored.steps if restored is not None else 0)
            observer.prefix_replayed(max(0, replayed))
        observer.execution_finished(result, yields=yields)
    return result


class SleepSetStrategy(SearchStrategy):
    """Depth-first search with sleep-set partial-order reduction.

    The frontier is the same (guide) shape as plain DFS; the sleep sets
    themselves are recomputed deterministically from the guide on every
    execution, so they need no checkpoint state of their own.
    """

    name = "por"

    def __init__(
        self,
        program: Program,
        policy_factory: PolicyFactory,
        *,
        depth_bound: Optional[int] = None,
        limits: Optional[ExplorationLimits] = None,
        prefix: Optional[List[int]] = None,
        coverage: Optional[CoverageTracker] = None,
        listener: Optional[Callable[[ExecutionResult], None]] = None,
        observer=None,
        resilience=None,
        config: Optional[ExecutorConfig] = None,
    ) -> None:
        super().__init__(
            program,
            policy_factory,
            config,
            limits,
            coverage=coverage,
            listener=listener,
            observer=observer,
            resilience=resilience,
        )
        self.depth_bound = depth_bound
        #: Pinned decisions confining the search to one subtree.  Sleep
        #: sets are a deterministic function of the guide, so a prefix
        #: partition of the reduced tree is exact, like plain DFS.
        self.prefix: List[int] = list(prefix or [])
        self.guide: Optional[List[int]] = list(self.prefix)
        #: Prefix-snapshot cache; the sleep-set walk visits guides in
        #: lexicographic order, so DFS-style eager invalidation applies.
        self.snapshot_cache = PrefixSnapshotCache.from_config(
            config, program, observer=observer)

    def strategy_label(self) -> str:
        return "dfs+sleepsets"

    # ------------------------------------------------------------------
    def _has_work(self) -> bool:
        return self.guide is not None

    def _run_once(self) -> ExecutionResult:
        return _run_once_with_sleep(
            self.program,
            self.policy_factory(),
            self.guide,
            depth_bound=self.depth_bound,
            coverage=self.coverage,
            observer=self.observer,
            snapshot_cache=self.snapshot_cache,
        )

    def _advance(self, record: ExecutionResult) -> None:
        self.guide = next_dfs_guide(record.decisions)
        if self.guide is not None and len(self.guide) <= len(self.prefix):
            self.guide = None
        if self.snapshot_cache is not None:
            if self.guide is None:
                self.snapshot_cache.clear()
            else:
                self.snapshot_cache.invalidate_not_prefix_of(self.guide)

    def _announce(self) -> None:
        if self.observer is not None and self.guide is not None:
            self.observer.backtrack(len(self.guide))

    # ------------------------------------------------------------------
    def _frontier_state(self) -> dict:
        return {"guide": self.guide, "prefix": self.prefix,
                "depth_bound": self.depth_bound}

    def _load_frontier(self, state: dict) -> None:
        self.guide = state.get("guide", [])
        self.prefix = list(state.get("prefix", []))
        self.depth_bound = state.get("depth_bound", self.depth_bound)


def explore_dfs_sleepsets(
    program: Program,
    policy_factory: PolicyFactory,
    *,
    depth_bound: Optional[int] = None,
    limits: Optional[ExplorationLimits] = None,
    coverage: Optional[CoverageTracker] = None,
    listener: Optional[Callable[[ExecutionResult], None]] = None,
    observer=None,
    resilience=None,
    config: Optional[ExecutorConfig] = None,
) -> ExplorationResult:
    """Depth-first search with sleep-set partial-order reduction."""
    return SleepSetStrategy(
        program,
        policy_factory,
        depth_bound=depth_bound,
        limits=limits,
        coverage=coverage,
        listener=listener,
        observer=observer,
        resilience=resilience,
        config=config,
    ).explore()
