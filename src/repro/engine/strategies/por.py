"""Sleep-set partial-order reduction (the paper's Section 5 outlook).

The paper notes that partial-order reduction "can be used to significantly
reduce the set of all fair schedules of fair-terminating programs, an
interesting avenue of future research".  This module implements the
classic sleep-set algorithm (Godefroid) on top of the stateless engine:

* when a state is expanded, each explored thread is added to the *sleep
  set* seen by its later siblings;
* a child inherits the sleep set filtered by **independence** with the
  executed transition — two transitions of different threads are
  independent iff both declare resource sets
  (:meth:`repro.runtime.ops.Operation.resources`) and those sets are
  disjoint;
* sleeping threads are not scheduled, pruning executions that only
  permute independent transitions.

Sleep sets preserve deadlocks and safety violations.  Soundness relies on
the runtime contract that all shared effects go through operations (plain
Python code between scheduling points is thread-local) — the same
contract the precise-signature machinery uses.

Because the search is stateless, the sleep sets along a replayed prefix
are recomputed deterministically from the guide: at a decision with
chosen index ``k``, the already-explored siblings are exactly
``available[:k]``.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Set

from repro.core.model import Program, RunStatus
from repro.core.policies import PolicyFactory
from repro.engine.coverage import CoverageTracker
from repro.engine.results import Decision, ExecutionResult, ExplorationResult, Outcome, TraceStep
from repro.engine.strategies.base import (
    ExplorationLimits,
    SearchStrategy,
    next_dfs_guide,
)
from repro.runtime.errors import PropertyViolation


def _independent(op_a, op_b) -> bool:
    """Independence of two pending operations of *different* threads."""
    resources_a = op_a.resources() if op_a is not None else None
    if resources_a is None:
        return False
    resources_b = op_b.resources() if op_b is not None else None
    if resources_b is None:
        return False
    return not (set(resources_a) & set(resources_b))


def _pending_op(instance, tid):
    getter = getattr(instance, "task", None)
    if getter is None:
        return None  # explicit systems: no op objects — no reduction
    return getter(tid).pending


def _sorted(values) -> list:
    try:
        return sorted(values)
    except TypeError:
        return sorted(values, key=repr)


def _run_once_with_sleep(
    program: Program,
    policy,
    guide: List[int],
    *,
    depth_bound: Optional[int],
    coverage: Optional[CoverageTracker],
    observer=None,
) -> ExecutionResult:
    """One execution with sleep sets carried along the path."""
    instance = program.instantiate()
    for tid in _sorted(instance.thread_ids()):
        policy.register_thread(tid)

    decisions: List[Decision] = []
    trace: List[TraceStep] = []
    sleep: Set = set()
    cursor = 0
    steps = 0
    yields = 0
    violation = None
    outcome = Outcome.TERMINATED
    timers = observer.timers if observer is not None else None
    if observer is not None:
        observer.execution_started()

    while True:
        if coverage is not None:
            if timers is not None:
                t0 = time.perf_counter()
                coverage.record(instance.state_signature())
                timers.add("hash", time.perf_counter() - t0)
            else:
                coverage.record(instance.state_signature())
        enabled = instance.enabled_threads()
        if not enabled:
            outcome = (Outcome.TERMINATED
                       if instance.status() is RunStatus.TERMINATED
                       else Outcome.DEADLOCK)
            break
        if depth_bound is not None and steps >= depth_bound:
            outcome = Outcome.DEPTH_PRUNED
            break
        if timers is not None:
            t0 = time.perf_counter()
            schedulable = policy.schedulable(enabled)
            timers.add("policy", time.perf_counter() - t0)
            state = getattr(policy, "algorithm_state", None)
            if state is not None:
                observer.priority_relation(state.priority.edge_count())
        else:
            schedulable = policy.schedulable(enabled)
        available = [t for t in _sorted(schedulable) if t not in sleep]
        if not available:
            # Everything schedulable is asleep: this execution is a
            # redundant permutation of one already explored.
            outcome = Outcome.VISITED_PRUNED
            break
        if cursor < len(guide):
            index = guide[cursor]
            if not 0 <= index < len(available):
                raise ValueError("sleep-set replay diverged from guide")
        else:
            index = 0
        cursor += 1
        tid = available[index]
        decisions.append(Decision("thread", index, len(available), tid))
        if observer is not None:
            observer.decision(steps, "thread", index, len(available), tid,
                              len(schedulable), len(enabled))

        executed_op = _pending_op(instance, tid)
        # Sleep set of the child: previously sleeping threads plus the
        # already-explored siblings, kept only while independent of the
        # executed transition.
        inherited = sleep | set(available[:index])
        t0 = time.perf_counter() if timers is not None else 0.0
        try:
            info = instance.step(tid)
        except PropertyViolation as exc:
            violation = exc
            outcome = Outcome.VIOLATION
            steps += 1
            if timers is not None:
                timers.add("execute", time.perf_counter() - t0)
            if observer is not None:
                observer.violation(steps, str(exc))
            break
        if timers is not None:
            timers.add("execute", time.perf_counter() - t0)
        policy.observe_step(info)
        trace.append(TraceStep(tid, str(tid), info.operation, info.yielded,
                               enabled))
        steps += 1
        if observer is not None and info.yielded:
            yields += 1
        sleep = {
            u for u in inherited
            if u != tid and _independent(_pending_op(instance, u),
                                         executed_op)
        }

    result = ExecutionResult(
        outcome=outcome,
        decisions=decisions,
        steps=steps,
        violation=violation,
        trace=tuple(trace[-256:]),
    )
    if observer is not None:
        observer.execution_finished(result, yields=yields)
    return result


class SleepSetStrategy(SearchStrategy):
    """Depth-first search with sleep-set partial-order reduction.

    The frontier is the same (guide) shape as plain DFS; the sleep sets
    themselves are recomputed deterministically from the guide on every
    execution, so they need no checkpoint state of their own.
    """

    name = "por"

    def __init__(
        self,
        program: Program,
        policy_factory: PolicyFactory,
        *,
        depth_bound: Optional[int] = None,
        limits: Optional[ExplorationLimits] = None,
        prefix: Optional[List[int]] = None,
        coverage: Optional[CoverageTracker] = None,
        listener: Optional[Callable[[ExecutionResult], None]] = None,
        observer=None,
        resilience=None,
    ) -> None:
        super().__init__(
            program,
            policy_factory,
            None,
            limits,
            coverage=coverage,
            listener=listener,
            observer=observer,
            resilience=resilience,
        )
        self.depth_bound = depth_bound
        #: Pinned decisions confining the search to one subtree.  Sleep
        #: sets are a deterministic function of the guide, so a prefix
        #: partition of the reduced tree is exact, like plain DFS.
        self.prefix: List[int] = list(prefix or [])
        self.guide: Optional[List[int]] = list(self.prefix)

    def strategy_label(self) -> str:
        return "dfs+sleepsets"

    # ------------------------------------------------------------------
    def _has_work(self) -> bool:
        return self.guide is not None

    def _run_once(self) -> ExecutionResult:
        return _run_once_with_sleep(
            self.program,
            self.policy_factory(),
            self.guide,
            depth_bound=self.depth_bound,
            coverage=self.coverage,
            observer=self.observer,
        )

    def _advance(self, record: ExecutionResult) -> None:
        self.guide = next_dfs_guide(record.decisions)
        if self.guide is not None and len(self.guide) <= len(self.prefix):
            self.guide = None

    def _announce(self) -> None:
        if self.observer is not None and self.guide is not None:
            self.observer.backtrack(len(self.guide))

    # ------------------------------------------------------------------
    def _frontier_state(self) -> dict:
        return {"guide": self.guide, "prefix": self.prefix,
                "depth_bound": self.depth_bound}

    def _load_frontier(self, state: dict) -> None:
        self.guide = state.get("guide", [])
        self.prefix = list(state.get("prefix", []))
        self.depth_bound = state.get("depth_bound", self.depth_bound)


def explore_dfs_sleepsets(
    program: Program,
    policy_factory: PolicyFactory,
    *,
    depth_bound: Optional[int] = None,
    limits: Optional[ExplorationLimits] = None,
    coverage: Optional[CoverageTracker] = None,
    listener: Optional[Callable[[ExecutionResult], None]] = None,
    observer=None,
    resilience=None,
) -> ExplorationResult:
    """Depth-first search with sleep-set partial-order reduction."""
    return SleepSetStrategy(
        program,
        policy_factory,
        depth_bound=depth_bound,
        limits=limits,
        coverage=coverage,
        listener=listener,
        observer=observer,
        resilience=resilience,
    ).explore()
