"""Context-bounded search (Musuvathi & Qadeer, PLDI 2007) + fairness.

A *preemption* is a context switch forced by the scheduler while the
current thread is still enabled.  Context-bounded search explores only
executions with at most ``c`` preemptions; empirically most bugs need very
few.  Table 2 of the fair-scheduling paper evaluates ``cb = 1..3``.

Integration with fairness (Section 4): a switch forced by the priority
relation — the running thread is enabled but no longer schedulable — is
**not** counted against the bound, otherwise fair search would be unsound
at small bounds.  The accounting itself lives in the executor; this module
provides the strategy wrappers and the iterative sweep.

Checkpointing: an ICB snapshot holds the current bound, the serialized
results of every finished sweep, and the in-flight inner DFS frontier, so
``--resume`` picks the sweep back up mid-bound.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

from repro.core.model import Program
from repro.core.policies import PolicyFactory
from repro.engine.coverage import CoverageTracker
from repro.engine.executor import ExecutorConfig
from repro.engine.results import ExecutionResult, ExplorationResult
from repro.engine.strategies.base import ExplorationLimits, SearchStrategy
from repro.engine.strategies.dfs import DfsStrategy
from repro.resilience.checkpoint import (
    exploration_from_state,
    exploration_to_state,
)


def merge_sweeps(program_name: str, policy_name: str,
                 sweeps) -> ExplorationResult:
    """Fold the per-bound results of an ICB sweep into one summary."""
    merged = ExplorationResult(
        program_name=program_name,
        policy_name=policy_name,
        strategy_name=f"icb(<= {len(sweeps) - 1})",
    )
    for result in sweeps:
        executions_before = merged.executions
        merged.executions += result.executions
        merged.transitions += result.transitions
        merged.outcomes.update(result.outcomes)
        merged.violations.extend(result.violations)
        merged.deadlocks.extend(result.deadlocks)
        merged.divergences.extend(result.divergences)
        merged.crashes.extend(result.crashes)
        merged.aborted_executions += result.aborted_executions
        merged.nonterminating_executions += result.nonterminating_executions
        merged.wall_seconds += result.wall_seconds
        merged.limit_hit = merged.limit_hit or result.limit_hit
        if (result.first_violation_execution is not None
                and merged.first_violation_execution is None):
            # Offset the sweep-local index by the executions of all
            # earlier sweeps (not by the cumulative total after this
            # sweep, which would overcount).
            merged.first_violation_execution = (
                executions_before + result.first_violation_execution)
    merged.complete = all(result.complete for result in sweeps)
    if sweeps:
        merged.stop_reason = sweeps[-1].stop_reason
    if sweeps and sweeps[-1].states_covered is not None:
        merged.states_covered = sweeps[-1].states_covered
    return merged


class IcbStrategy(SearchStrategy):
    """Iterative context bounding: DFS sweeps at bounds 0, 1, ..., max.

    Unlike the single-frontier strategies, :meth:`explore` returns the
    *list* of per-bound :class:`ExplorationResult`\\ s (the callers merge
    them with :func:`merge_sweeps`).  Each sweep is an inner
    :class:`DfsStrategy` whose ``root`` points back here, so checkpoints
    taken mid-sweep capture the whole sweep history plus the in-flight
    DFS frontier.
    """

    name = "icb"

    def __init__(
        self,
        program: Program,
        policy_factory: PolicyFactory,
        max_bound: int,
        config: Optional[ExecutorConfig] = None,
        limits: Optional[ExplorationLimits] = None,
        *,
        coverage: Optional[CoverageTracker] = None,
        stop_on_violation: bool = True,
        listener: Optional[Callable[[ExecutionResult], None]] = None,
        observer=None,
        resilience=None,
    ) -> None:
        if max_bound < 0:
            raise ValueError("preemption bound must be non-negative")
        super().__init__(
            program,
            policy_factory,
            config or ExecutorConfig(),
            limits,
            coverage=coverage,
            listener=listener,
            observer=observer,
            resilience=resilience,
        )
        self.max_bound = max_bound
        self.stop_on_violation = stop_on_violation
        self.bound = 0
        #: Serialized results of finished sweeps (JSON round-trippable).
        self.completed: List[dict] = []
        self._current_inner: Optional[DfsStrategy] = None
        self._inner_state: Optional[dict] = None

    # ------------------------------------------------------------------
    def _completed_executions(self) -> int:
        return sum(int(state.get("executions", 0))
                   for state in self.completed)

    def _make_inner(self, bound: int) -> DfsStrategy:
        config = dataclasses.replace(self.config, preemption_bound=bound)
        limits = self.limits
        if limits is not None and limits.max_executions is not None:
            # The execution budget is a property of the whole sweep
            # sequence; charge this sweep only what the finished sweeps
            # left over, so ``max_executions`` bounds the merged total
            # (and resume-with-raised-cap slices each bound exactly).
            remaining = max(0, limits.max_executions
                            - self._completed_executions())
            limits = dataclasses.replace(limits, max_executions=remaining)
        inner = DfsStrategy(
            self.program,
            self.policy_factory,
            config,
            limits,
            coverage=self.coverage,
            listener=self.listener,
            strategy_name=f"cb={bound}",
            observer=self.observer,
            resilience=self.resilience,
        )
        inner.root = self
        return inner

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        state = {
            "strategy": self.name,
            "frontier": {
                "bound": self.bound,
                "max_bound": self.max_bound,
                "completed": self.completed,
            },
        }
        if self._current_inner is not None:
            state["inner"] = self._current_inner.state_dict()
        return state

    def load_state_dict(self, state: dict) -> None:
        recorded = state.get("strategy")
        if recorded != self.name:
            raise ValueError(
                f"checkpoint was written by strategy {recorded!r}, "
                f"cannot resume it with {self.name!r}"
            )
        frontier = state.get("frontier") or {}
        self.bound = frontier.get("bound", 0)
        self.max_bound = frontier.get("max_bound", self.max_bound)
        self.completed = list(frontier.get("completed", []))
        self._inner_state = state.get("inner")

    # ------------------------------------------------------------------
    def explore(self) -> List[ExplorationResult]:
        results = [exploration_from_state(s) for s in self.completed]
        while self.bound <= self.max_bound:
            inner = self._make_inner(self.bound)
            if self._inner_state is not None:
                inner.load_state_dict(self._inner_state)
                self._inner_state = None
            self._current_inner = inner
            result = inner.explore()
            self._current_inner = None
            results.append(result)
            if result.interrupted:
                break
            if result.limit_hit and not result.complete:
                # A resource limit cut the sweep short.  Keep the bound
                # in flight — exactly like an interrupt — so a resumed
                # search continues this sweep from its frontier instead
                # of recording a truncated sweep and skipping to the
                # next bound (which would explore a different space).
                break
            self.completed.append(exploration_to_state(result))
            if self.observer is not None:
                self.observer.icb_sweep(self.bound, result)
            self.bound += 1
            if self.stop_on_violation and result.found_violation:
                break
        return results


def explore_context_bounded(
    program: Program,
    policy_factory: PolicyFactory,
    bound: int,
    config: Optional[ExecutorConfig] = None,
    limits: Optional[ExplorationLimits] = None,
    *,
    coverage: Optional[CoverageTracker] = None,
    listener: Optional[Callable[[ExecutionResult], None]] = None,
    observer=None,
    resilience=None,
) -> ExplorationResult:
    """DFS over all executions with at most ``bound`` preemptions."""
    if bound < 0:
        raise ValueError("preemption bound must be non-negative")
    config = dataclasses.replace(config or ExecutorConfig(),
                                 preemption_bound=bound)
    return DfsStrategy(
        program,
        policy_factory,
        config,
        limits,
        coverage=coverage,
        listener=listener,
        strategy_name=f"cb={bound}",
        observer=observer,
        resilience=resilience,
    ).explore()


def iterative_context_bounding(
    program: Program,
    policy_factory: PolicyFactory,
    max_bound: int,
    config: Optional[ExecutorConfig] = None,
    limits: Optional[ExplorationLimits] = None,
    *,
    coverage: Optional[CoverageTracker] = None,
    stop_on_violation: bool = True,
    observer=None,
    resilience=None,
) -> List[ExplorationResult]:
    """Run searches with bounds 0, 1, ..., ``max_bound`` in order.

    Returns one :class:`ExplorationResult` per bound; stops early at the
    first bound that finds a violation when ``stop_on_violation`` is set.
    """
    return IcbStrategy(
        program,
        policy_factory,
        max_bound,
        config,
        limits,
        coverage=coverage,
        stop_on_violation=stop_on_violation,
        observer=observer,
        resilience=resilience,
    ).explore()
