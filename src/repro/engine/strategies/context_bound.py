"""Context-bounded search (Musuvathi & Qadeer, PLDI 2007) + fairness.

A *preemption* is a context switch forced by the scheduler while the
current thread is still enabled.  Context-bounded search explores only
executions with at most ``c`` preemptions; empirically most bugs need very
few.  Table 2 of the fair-scheduling paper evaluates ``cb = 1..3``.

Integration with fairness (Section 4): a switch forced by the priority
relation — the running thread is enabled but no longer schedulable — is
**not** counted against the bound, otherwise fair search would be unsound
at small bounds.  The accounting itself lives in the executor; this module
provides the strategy wrappers.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

from repro.core.model import Program
from repro.core.policies import PolicyFactory
from repro.engine.coverage import CoverageTracker
from repro.engine.executor import ExecutorConfig
from repro.engine.results import ExecutionResult, ExplorationResult
from repro.engine.strategies.base import ExplorationLimits
from repro.engine.strategies.dfs import explore_dfs


def explore_context_bounded(
    program: Program,
    policy_factory: PolicyFactory,
    bound: int,
    config: Optional[ExecutorConfig] = None,
    limits: Optional[ExplorationLimits] = None,
    *,
    coverage: Optional[CoverageTracker] = None,
    listener: Optional[Callable[[ExecutionResult], None]] = None,
    observer=None,
) -> ExplorationResult:
    """DFS over all executions with at most ``bound`` preemptions."""
    if bound < 0:
        raise ValueError("preemption bound must be non-negative")
    config = dataclasses.replace(config or ExecutorConfig(),
                                 preemption_bound=bound)
    return explore_dfs(
        program,
        policy_factory,
        config,
        limits,
        coverage=coverage,
        listener=listener,
        strategy_name=f"cb={bound}",
        observer=observer,
    )


def iterative_context_bounding(
    program: Program,
    policy_factory: PolicyFactory,
    max_bound: int,
    config: Optional[ExecutorConfig] = None,
    limits: Optional[ExplorationLimits] = None,
    *,
    coverage: Optional[CoverageTracker] = None,
    stop_on_violation: bool = True,
    observer=None,
) -> List[ExplorationResult]:
    """Run searches with bounds 0, 1, ..., ``max_bound`` in order.

    Returns one :class:`ExplorationResult` per bound; stops early at the
    first bound that finds a violation when ``stop_on_violation`` is set.
    """
    results: List[ExplorationResult] = []
    for bound in range(max_bound + 1):
        result = explore_context_bounded(
            program, policy_factory, bound, config, limits, coverage=coverage,
            observer=observer,
        )
        results.append(result)
        if observer is not None:
            observer.icb_sweep(bound, result)
        if stop_on_violation and result.found_violation:
            break
    return results
