"""Pure random search (reference [17] of the paper).

Each execution makes uniform random choices.  The paper uses random search
in two places: as the completion mode past the depth bound for the unfair
baseline of Table 2 (that part lives inside the executor), and as a
standalone baseline.  Random scheduling is fair with probability one, so a
fair-terminating program terminates almost surely under it — but it gives
no systematic coverage guarantee, which is the point of comparison.

Walk *i* of a run with seed *s* draws from ``random.Random(f"{s}:{i}")``
rather than one continuous RNG stream.  String seeding hashes through
SHA-512, so the derived generators are stable across processes and Python
versions — which makes the search *partitionable*: any split of the index
range ``[start, start + executions)`` across workers replays the exact
executions a serial run would (see :mod:`repro.parallel`).  The frontier
is just the next index, so checkpoints are a few integers.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.core.model import Program
from repro.core.policies import PolicyFactory
from repro.engine.coverage import CoverageTracker
from repro.engine.executor import ExecutorConfig, RandomChooser, run_execution
from repro.engine.results import ExecutionResult, ExplorationResult
from repro.engine.strategies.base import ExplorationLimits, SearchStrategy


def walk_rng(seed, index: int) -> random.Random:
    """The RNG for walk ``index`` of a random search with ``seed``.

    Derived, not streamed: every walk's generator is a pure function of
    ``(seed, index)``, so walks can run in any order, on any worker, and
    still make the choices a serial run would have made.
    """
    return random.Random(f"{seed}:{index}")


class RandomWalkStrategy(SearchStrategy):
    """A fixed budget of independent random executions."""

    name = "random"
    #: Random search never exhausts the tree; draining the budget does
    #: not make the result "complete".
    exhaustive = False

    def __init__(
        self,
        program: Program,
        policy_factory: PolicyFactory,
        config: Optional[ExecutorConfig] = None,
        limits: Optional[ExplorationLimits] = None,
        *,
        executions: int = 100,
        seed: int = 0,
        start: int = 0,
        coverage: Optional[CoverageTracker] = None,
        listener: Optional[Callable[[ExecutionResult], None]] = None,
        observer=None,
        resilience=None,
    ) -> None:
        super().__init__(
            program,
            policy_factory,
            config or ExecutorConfig(),
            limits,
            coverage=coverage,
            listener=listener,
            observer=observer,
            resilience=resilience,
        )
        self.total = executions
        self.seed = seed
        #: First walk index of this (possibly sharded) budget slice.
        self.start = start
        self.next_index = start
        self.end = start + executions

    def strategy_label(self) -> str:
        return f"random(n={self.total})"

    @property
    def remaining(self) -> int:
        return max(0, self.end - self.next_index)

    # ------------------------------------------------------------------
    def _has_work(self) -> bool:
        return self.next_index < self.end

    def _run_once(self) -> ExecutionResult:
        rng = walk_rng(self.seed, self.next_index)
        return run_execution(
            self.program,
            self.policy_factory(),
            RandomChooser(rng),
            self.config,
            coverage=self.coverage,
            completion_rng=rng,
            observer=self.observer,
        )

    def _advance(self, record: ExecutionResult) -> None:
        self.next_index += 1

    # ------------------------------------------------------------------
    def _frontier_state(self) -> dict:
        return {
            "next_index": self.next_index,
            "start": self.start,
            "end": self.end,
            "total": self.total,
            "seed": self.seed,
        }

    def _load_frontier(self, state: dict) -> None:
        self.total = state.get("total", self.total)
        self.seed = state.get("seed", self.seed)
        if "next_index" in state:
            self.start = state.get("start", 0)
            self.end = state.get("end", self.start + self.total)
            self.next_index = state["next_index"]
        else:
            # Pre-sharding checkpoint shape ({remaining, total, rng}): the
            # walk indices left are the tail of [0, total).
            self.start = 0
            self.end = self.total
            self.next_index = self.total - state.get("remaining", 0)


def explore_random(
    program: Program,
    policy_factory: PolicyFactory,
    config: Optional[ExecutorConfig] = None,
    limits: Optional[ExplorationLimits] = None,
    *,
    executions: int = 100,
    seed: int = 0,
    coverage: Optional[CoverageTracker] = None,
    listener: Optional[Callable[[ExecutionResult], None]] = None,
    observer=None,
    resilience=None,
) -> ExplorationResult:
    """Run ``executions`` independent random executions."""
    return RandomWalkStrategy(
        program,
        policy_factory,
        config,
        limits,
        executions=executions,
        seed=seed,
        coverage=coverage,
        listener=listener,
        observer=observer,
        resilience=resilience,
    ).explore()
