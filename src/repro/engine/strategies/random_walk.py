"""Pure random search (reference [17] of the paper).

Each execution makes uniform random choices.  The paper uses random search
in two places: as the completion mode past the depth bound for the unfair
baseline of Table 2 (that part lives inside the executor), and as a
standalone baseline.  Random scheduling is fair with probability one, so a
fair-terminating program terminates almost surely under it — but it gives
no systematic coverage guarantee, which is the point of comparison.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.core.model import Program
from repro.core.policies import PolicyFactory
from repro.engine.coverage import CoverageTracker
from repro.engine.executor import ExecutorConfig, RandomChooser, run_execution
from repro.engine.results import ExecutionResult, ExplorationResult
from repro.engine.strategies.base import Aggregator, ExplorationLimits


def explore_random(
    program: Program,
    policy_factory: PolicyFactory,
    config: Optional[ExecutorConfig] = None,
    limits: Optional[ExplorationLimits] = None,
    *,
    executions: int = 100,
    seed: int = 0,
    coverage: Optional[CoverageTracker] = None,
    listener: Optional[Callable[[ExecutionResult], None]] = None,
    observer=None,
) -> ExplorationResult:
    """Run ``executions`` independent random executions."""
    config = config or ExecutorConfig()
    limits = limits or ExplorationLimits()
    rng = random.Random(seed)
    policy_probe = policy_factory()
    aggregator = Aggregator(
        program_name=program.name,
        policy_name=policy_probe.name,
        strategy_name=f"random(n={executions})",
        limits=limits,
        coverage=coverage,
        listener=listener,
        observer=observer,
    )

    stop_reason: Optional[str] = None
    for _ in range(executions):
        record = run_execution(
            program,
            policy_factory(),
            RandomChooser(rng),
            config,
            coverage=coverage,
            completion_rng=rng,
            observer=observer,
        )
        stop_reason = aggregator.add(record)
        if stop_reason is not None:
            break
    return aggregator.finish(complete=False, stop_reason=stop_reason)
