"""Pure random search (reference [17] of the paper).

Each execution makes uniform random choices.  The paper uses random search
in two places: as the completion mode past the depth bound for the unfair
baseline of Table 2 (that part lives inside the executor), and as a
standalone baseline.  Random scheduling is fair with probability one, so a
fair-terminating program terminates almost surely under it — but it gives
no systematic coverage guarantee, which is the point of comparison.

The frontier is the remaining execution budget plus the RNG state, so a
resumed random search continues the *same* pseudo-random sequence rather
than replaying executions it already tried.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.core.model import Program
from repro.core.policies import PolicyFactory
from repro.engine.coverage import CoverageTracker
from repro.engine.executor import ExecutorConfig, RandomChooser, run_execution
from repro.engine.results import ExecutionResult, ExplorationResult
from repro.engine.strategies.base import ExplorationLimits, SearchStrategy
from repro.resilience.checkpoint import freeze_rng, thaw_rng


class RandomWalkStrategy(SearchStrategy):
    """A fixed budget of independent random executions."""

    name = "random"
    #: Random search never exhausts the tree; draining the budget does
    #: not make the result "complete".
    exhaustive = False

    def __init__(
        self,
        program: Program,
        policy_factory: PolicyFactory,
        config: Optional[ExecutorConfig] = None,
        limits: Optional[ExplorationLimits] = None,
        *,
        executions: int = 100,
        seed: int = 0,
        coverage: Optional[CoverageTracker] = None,
        listener: Optional[Callable[[ExecutionResult], None]] = None,
        observer=None,
        resilience=None,
    ) -> None:
        super().__init__(
            program,
            policy_factory,
            config or ExecutorConfig(),
            limits,
            coverage=coverage,
            listener=listener,
            observer=observer,
            resilience=resilience,
        )
        self.total = executions
        self.remaining = executions
        self.rng = random.Random(seed)

    def strategy_label(self) -> str:
        return f"random(n={self.total})"

    # ------------------------------------------------------------------
    def _has_work(self) -> bool:
        return self.remaining > 0

    def _run_once(self) -> ExecutionResult:
        return run_execution(
            self.program,
            self.policy_factory(),
            RandomChooser(self.rng),
            self.config,
            coverage=self.coverage,
            completion_rng=self.rng,
            observer=self.observer,
        )

    def _advance(self, record: ExecutionResult) -> None:
        self.remaining -= 1

    # ------------------------------------------------------------------
    def _frontier_state(self) -> dict:
        return {
            "remaining": self.remaining,
            "total": self.total,
            "rng": freeze_rng(self.rng),
        }

    def _load_frontier(self, state: dict) -> None:
        self.remaining = state.get("remaining", 0)
        self.total = state.get("total", self.total)
        rng_state = state.get("rng")
        if rng_state is not None:
            thaw_rng(self.rng, rng_state)


def explore_random(
    program: Program,
    policy_factory: PolicyFactory,
    config: Optional[ExecutorConfig] = None,
    limits: Optional[ExplorationLimits] = None,
    *,
    executions: int = 100,
    seed: int = 0,
    coverage: Optional[CoverageTracker] = None,
    listener: Optional[Callable[[ExecutionResult], None]] = None,
    observer=None,
    resilience=None,
) -> ExplorationResult:
    """Run ``executions`` independent random executions."""
    return RandomWalkStrategy(
        program,
        policy_factory,
        config,
        limits,
        executions=executions,
        seed=seed,
        coverage=coverage,
        listener=listener,
        observer=observer,
        resilience=resilience,
    ).explore()
