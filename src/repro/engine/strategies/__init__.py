"""Search strategies over the stateless execution tree."""

from repro.engine.strategies.base import (
    Aggregator,
    ExplorationLimits,
    SearchStrategy,
    next_dfs_guide,
)
from repro.engine.strategies.bfs import BfsStrategy, explore_bfs
from repro.engine.strategies.context_bound import (
    IcbStrategy,
    explore_context_bounded,
    iterative_context_bounding,
    merge_sweeps,
)
from repro.engine.strategies.dfs import DfsStrategy, explore_dfs
from repro.engine.strategies.dpor import DporStrategy, explore_source_dpor
from repro.engine.strategies.por import SleepSetStrategy, explore_dfs_sleepsets
from repro.engine.strategies.random_walk import (
    RandomWalkStrategy,
    explore_random,
)

__all__ = [
    "Aggregator",
    "BfsStrategy",
    "DfsStrategy",
    "DporStrategy",
    "ExplorationLimits",
    "IcbStrategy",
    "RandomWalkStrategy",
    "SearchStrategy",
    "SleepSetStrategy",
    "explore_bfs",
    "explore_context_bounded",
    "explore_dfs",
    "explore_dfs_sleepsets",
    "explore_source_dpor",
    "explore_random",
    "iterative_context_bounding",
    "merge_sweeps",
    "next_dfs_guide",
]
