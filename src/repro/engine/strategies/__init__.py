"""Search strategies over the stateless execution tree."""

from repro.engine.strategies.base import (
    Aggregator,
    ExplorationLimits,
    next_dfs_guide,
)
from repro.engine.strategies.bfs import explore_bfs
from repro.engine.strategies.context_bound import (
    explore_context_bounded,
    iterative_context_bounding,
)
from repro.engine.strategies.dfs import explore_dfs
from repro.engine.strategies.por import explore_dfs_sleepsets
from repro.engine.strategies.random_walk import explore_random

__all__ = [
    "Aggregator",
    "ExplorationLimits",
    "explore_bfs",
    "explore_context_bounded",
    "explore_dfs",
    "explore_dfs_sleepsets",
    "explore_random",
    "iterative_context_bounding",
    "next_dfs_guide",
]
