"""Shared scaffolding for search strategies.

Two layers live here:

* :class:`Aggregator` — folds per-execution records into an
  :class:`~repro.engine.results.ExplorationResult` and answers "should
  the search stop?" after each one;
* :class:`SearchStrategy` — the resumable strategy base class.  Concrete
  strategies (DFS, BFS, random, ICB, sleep-set POR) implement a small
  frontier protocol (``_has_work`` / ``_run_once`` / ``_advance`` plus
  frontier (de)serialization) and inherit one battle-tested ``explore``
  loop that handles stop limits, graceful interrupts (signal flag and
  ``KeyboardInterrupt``), crash quarantine, and periodic checkpointing.

Both :meth:`SearchStrategy.state_dict` and
:meth:`Aggregator.state_dict` round-trip through JSON, which is what
:class:`repro.resilience.CheckpointStore` persists.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.engine.coverage import CoverageTracker
from repro.engine.results import ExecutionResult, ExplorationResult, Outcome
from repro.resilience.checkpoint import (
    exploration_from_state,
    exploration_to_state,
)


@dataclass
class ExplorationLimits:
    """Resource limits for a systematic search."""

    max_executions: Optional[int] = None
    max_seconds: Optional[float] = None
    stop_on_first_violation: bool = True
    stop_on_first_divergence: bool = True
    #: How many violating/divergent executions to keep in full.
    keep_records: int = 16
    #: Stop once this many executions crashed and were quarantined
    #: (None = unlimited; crash capture itself is an executor switch).
    max_crashes: Optional[int] = None


class Aggregator:
    """Accumulates per-execution results into an :class:`ExplorationResult`."""

    def __init__(
        self,
        program_name: str,
        policy_name: str,
        strategy_name: str,
        limits: ExplorationLimits,
        coverage: Optional[CoverageTracker] = None,
        listener: Optional[Callable[[ExecutionResult], None]] = None,
        observer=None,
    ) -> None:
        self.limits = limits
        self.coverage = coverage
        self._listener = listener
        self._observer = observer
        self._start = time.perf_counter()
        #: Wall seconds accumulated by earlier (checkpointed) runs.
        self._base_wall = 0.0
        self.result = ExplorationResult(
            program_name=program_name,
            policy_name=policy_name,
            strategy_name=strategy_name,
        )
        if observer is not None:
            observer.exploration_started(program_name, policy_name,
                                         strategy_name)

    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        """Total search wall time, across resumptions."""
        return self._base_wall + (time.perf_counter() - self._start)

    # ------------------------------------------------------------------
    def add(self, record: ExecutionResult) -> Optional[str]:
        """Fold in one execution; returns a stop reason or None."""
        res = self.result
        res.executions += 1
        res.transitions += record.steps
        res.outcomes[record.outcome] += 1
        if record.hit_depth_bound:
            res.nonterminating_executions += 1
        if self.coverage is not None:
            self.coverage.end_execution()
        if record.outcome is Outcome.VIOLATION:
            if len(res.violations) < self.limits.keep_records:
                res.violations.append(record)
            if res.first_violation_execution is None:
                res.first_violation_execution = res.executions
        elif record.outcome is Outcome.DEADLOCK:
            if len(res.deadlocks) < self.limits.keep_records:
                res.deadlocks.append(record)
            if res.first_violation_execution is None:
                res.first_violation_execution = res.executions
        elif record.outcome is Outcome.DIVERGENCE:
            if len(res.divergences) < self.limits.keep_records:
                res.divergences.append(record)
        elif record.outcome is Outcome.CRASHED:
            if len(res.crashes) < self.limits.keep_records:
                res.crashes.append(record)
        elif record.outcome is Outcome.ABORTED:
            res.aborted_executions += 1
        if self._listener is not None:
            self._listener(record)

        if (self.limits.stop_on_first_violation
                and record.outcome in (Outcome.VIOLATION, Outcome.DEADLOCK)):
            return "violation"
        if (self.limits.stop_on_first_divergence
                and record.outcome is Outcome.DIVERGENCE):
            return "divergence"
        return self.limit_reached()

    def limit_reached(self) -> Optional[str]:
        """Resource limits already satisfied by the accumulated counts.

        Also consulted at loop *entry*: a checkpoint snapshotted the
        moment a count limit fired restores an aggregator that is
        already at its cap, and resuming it must stop before running
        anything — not overshoot by one execution.
        """
        res = self.result
        if (self.limits.max_crashes is not None
                and res.outcomes[Outcome.CRASHED] >= self.limits.max_crashes):
            return "max-crashes"
        if (self.limits.max_executions is not None
                and res.executions >= self.limits.max_executions):
            return "max-executions"
        if (self.limits.max_seconds is not None
                and self.elapsed() >= self.limits.max_seconds):
            return "max-seconds"
        return None

    def finish(self, *, complete: bool, stop_reason: Optional[str]) -> ExplorationResult:
        res = self.result
        res.wall_seconds = self.elapsed()
        res.complete = complete
        res.stop_reason = stop_reason
        res.limit_hit = stop_reason in ("max-executions", "max-seconds",
                                        "max-crashes")
        if self.coverage is not None:
            res.states_covered = self.coverage.count
        if self._observer is not None:
            self._observer.exploration_finished(res)
        return res

    # ------------------------------------------------------------------
    # checkpoint round-trip
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        state = exploration_to_state(self.result)
        state["wall_seconds"] = self.elapsed()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore the partial results of a checkpointed search."""
        restored = exploration_from_state(state)
        # Keep the names the live search was constructed with; only the
        # accumulated numbers and records come from the checkpoint.
        restored.program_name = self.result.program_name
        restored.policy_name = self.result.policy_name
        restored.strategy_name = self.result.strategy_name
        self.result = restored
        self._base_wall = state.get("wall_seconds", 0.0)
        self._start = time.perf_counter()


class SearchStrategy:
    """Base class for resumable search strategies.

    Subclasses implement the frontier protocol:

    * ``_has_work()`` — is there a next execution to run?
    * ``_run_once()`` — run it (without consuming frontier state that
      the next checkpoint would need to re-run it);
    * ``_advance(record)`` — fold the finished execution into the
      frontier (compute the next DFS guide, pop + extend the BFS queue,
      decrement the random budget, ...); runs after *every* execution,
      including the one a stop limit fires on, so a final checkpoint
      never re-counts work already folded in;
    * ``_announce()`` — continuation telemetry (DFS's ``backtrack``
      event), emitted only when the loop actually continues;
    * ``_frontier_state()`` / ``_load_frontier(state)`` — JSON
      round-trip of that frontier.

    The inherited :meth:`explore` loop then provides, uniformly: stop
    limits, graceful ``KeyboardInterrupt`` / signal handling (partial
    results with ``stop_reason="interrupted"`` instead of a lost
    search), crash quarantine, and periodic + final checkpoints.

    Checkpoint consistency: snapshots are taken at iteration *start*,
    when the frontier still describes the next execution to run; an
    execution interrupted mid-flight is therefore re-run on resume
    (at-least-once, deterministic — the record is identical).
    """

    #: Stable name recorded in checkpoints; must match on resume.
    name = "base"
    #: Whether draining the frontier means the search was exhaustive
    #: (random search finishes its budget without being "complete").
    exhaustive = True

    def __init__(
        self,
        program,
        policy_factory,
        config=None,
        limits: Optional[ExplorationLimits] = None,
        *,
        coverage: Optional[CoverageTracker] = None,
        listener: Optional[Callable[[ExecutionResult], None]] = None,
        observer=None,
        resilience=None,
    ) -> None:
        self.program = program
        self.policy_factory = policy_factory
        self.config = config
        self.limits = limits or ExplorationLimits()
        self.coverage = coverage
        self.listener = listener
        self.observer = observer
        self.resilience = resilience
        #: The outermost strategy, whose ``state_dict`` checkpoints are
        #: taken from (ICB points its inner DFS sweeps back at itself).
        self.root: "SearchStrategy" = self
        self.aggregator: Optional[Aggregator] = None
        self._pending_aggregator_state: Optional[dict] = None

    # ------------------------------------------------------------------
    # frontier protocol (subclass responsibility)
    # ------------------------------------------------------------------
    def _has_work(self) -> bool:
        raise NotImplementedError

    def _run_once(self) -> ExecutionResult:
        raise NotImplementedError

    def _advance(self, record: ExecutionResult) -> None:
        raise NotImplementedError

    def _announce(self) -> None:
        """Telemetry emitted only when the search continues."""

    def _frontier_state(self) -> dict:
        raise NotImplementedError

    def _load_frontier(self, state: dict) -> None:
        raise NotImplementedError

    def strategy_label(self) -> str:
        """Display name used in results (may carry parameters)."""
        return self.name

    # ------------------------------------------------------------------
    # checkpoint round-trip
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Everything needed to continue this search elsewhere/later."""
        state = {"strategy": self.name, "frontier": self._frontier_state()}
        if self.aggregator is not None:
            state["aggregator"] = self.aggregator.state_dict()
        elif self._pending_aggregator_state is not None:
            state["aggregator"] = self._pending_aggregator_state
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (before ``explore``)."""
        recorded = state.get("strategy")
        if recorded != self.name:
            raise ValueError(
                f"checkpoint was written by strategy {recorded!r}, "
                f"cannot resume it with {self.name!r}"
            )
        self._load_frontier(state.get("frontier") or {})
        self._pending_aggregator_state = state.get("aggregator")

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def _make_aggregator(self) -> Aggregator:
        policy_name = getattr(self.policy_factory(), "name", "")
        return Aggregator(
            program_name=self.program.name,
            policy_name=policy_name,
            strategy_name=self.strategy_label(),
            limits=self.limits,
            coverage=self.coverage,
            listener=self.listener,
            observer=self.observer,
        )

    def explore(self) -> ExplorationResult:
        """Run the search to exhaustion, a stop limit, or an interrupt."""
        aggregator = self.aggregator = self._make_aggregator()
        if self._pending_aggregator_state is not None:
            aggregator.load_state_dict(self._pending_aggregator_state)
            self._pending_aggregator_state = None

        resilience = self.resilience
        # Restored counters can already sit at a limit (final checkpoint
        # of a limit-stopped run); honor it before the first execution.
        stop_reason: Optional[str] = aggregator.limit_reached()
        exhausted = False
        try:
            while stop_reason is None:
                if not self._has_work():
                    exhausted = True
                    break
                if resilience is not None:
                    stop_reason = resilience.stop_requested()
                    if stop_reason is not None:
                        break
                    resilience.maybe_checkpoint(self.root)
                record = self._run_once()
                if record.outcome is Outcome.CRASHED and resilience is not None:
                    resilience.quarantine_crash(self.program, record)
                stop_reason = aggregator.add(record)
                self._advance(record)
                if stop_reason is not None:
                    break
                self._announce()
        except KeyboardInterrupt:
            # Salvage the partial results instead of discarding hours of
            # search behind a raw traceback.
            stop_reason = "interrupted"
        if resilience is not None:
            resilience.flush_checkpoint(self.root)
            if stop_reason == "interrupted" and self.observer is not None:
                self.observer.search_interrupted(
                    resilience.stop_signal or "KeyboardInterrupt")
        complete = exhausted and stop_reason is None and self.exhaustive
        return aggregator.finish(complete=complete, stop_reason=stop_reason)


def next_dfs_guide(decisions) -> Optional[list]:
    """Backtrack: the guide for the next execution in DFS order, or None
    when the (bounded) execution tree is exhausted.

    Finds the deepest decision with an untried alternative, bumps it, and
    truncates everything below — the core of stateless depth-first search.
    """
    i = len(decisions) - 1
    while i >= 0 and decisions[i].index + 1 >= decisions[i].options:
        i -= 1
    if i < 0:
        return None
    return [d.index for d in decisions[:i]] + [decisions[i].index + 1]
