"""Shared scaffolding for search strategies."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.engine.coverage import CoverageTracker
from repro.engine.results import ExecutionResult, ExplorationResult, Outcome


@dataclass
class ExplorationLimits:
    """Resource limits for a systematic search."""

    max_executions: Optional[int] = None
    max_seconds: Optional[float] = None
    stop_on_first_violation: bool = True
    stop_on_first_divergence: bool = True
    #: How many violating/divergent executions to keep in full.
    keep_records: int = 16


class Aggregator:
    """Accumulates per-execution results into an :class:`ExplorationResult`."""

    def __init__(
        self,
        program_name: str,
        policy_name: str,
        strategy_name: str,
        limits: ExplorationLimits,
        coverage: Optional[CoverageTracker] = None,
        listener: Optional[Callable[[ExecutionResult], None]] = None,
        observer=None,
    ) -> None:
        self.limits = limits
        self.coverage = coverage
        self._listener = listener
        self._observer = observer
        self._start = time.perf_counter()
        self.result = ExplorationResult(
            program_name=program_name,
            policy_name=policy_name,
            strategy_name=strategy_name,
        )
        if observer is not None:
            observer.exploration_started(program_name, policy_name,
                                         strategy_name)

    def add(self, record: ExecutionResult) -> Optional[str]:
        """Fold in one execution; returns a stop reason or None."""
        res = self.result
        res.executions += 1
        res.transitions += record.steps
        res.outcomes[record.outcome] += 1
        if record.hit_depth_bound:
            res.nonterminating_executions += 1
        if self.coverage is not None:
            self.coverage.end_execution()
        if record.outcome is Outcome.VIOLATION:
            if len(res.violations) < self.limits.keep_records:
                res.violations.append(record)
            if res.first_violation_execution is None:
                res.first_violation_execution = res.executions
        elif record.outcome is Outcome.DEADLOCK:
            if len(res.deadlocks) < self.limits.keep_records:
                res.deadlocks.append(record)
            if res.first_violation_execution is None:
                res.first_violation_execution = res.executions
        elif record.outcome is Outcome.DIVERGENCE:
            if len(res.divergences) < self.limits.keep_records:
                res.divergences.append(record)
        if self._listener is not None:
            self._listener(record)

        if (self.limits.stop_on_first_violation
                and record.outcome in (Outcome.VIOLATION, Outcome.DEADLOCK)):
            return "violation"
        if (self.limits.stop_on_first_divergence
                and record.outcome is Outcome.DIVERGENCE):
            return "divergence"
        if (self.limits.max_executions is not None
                and res.executions >= self.limits.max_executions):
            return "max-executions"
        if (self.limits.max_seconds is not None
                and time.perf_counter() - self._start >= self.limits.max_seconds):
            return "max-seconds"
        return None

    def finish(self, *, complete: bool, stop_reason: Optional[str]) -> ExplorationResult:
        res = self.result
        res.wall_seconds = time.perf_counter() - self._start
        res.complete = complete
        res.limit_hit = stop_reason in ("max-executions", "max-seconds")
        if self.coverage is not None:
            res.states_covered = self.coverage.count
        if self._observer is not None:
            self._observer.exploration_finished(res)
        return res


def next_dfs_guide(decisions) -> Optional[list]:
    """Backtrack: the guide for the next execution in DFS order, or None
    when the (bounded) execution tree is exhausted.

    Finds the deepest decision with an untried alternative, bumps it, and
    truncates everything below — the core of stateless depth-first search.
    """
    i = len(decisions) - 1
    while i >= 0 and decisions[i].index + 1 >= decisions[i].options:
        i -= 1
    if i < 0:
        return None
    return [d.index for d in decisions[:i]] + [decisions[i].index + 1]
