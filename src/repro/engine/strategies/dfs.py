"""Systematic depth-first exploration (the paper's ``dfs`` strategy).

Stateless DFS over the choice tree: each execution is replayed from the
initial state along a guide (a prefix of decision indices), extended with
first alternatives, and the recorded decision string is backtracked to
produce the next guide.  Completeness: with the nonfair policy and no
bounds this enumerates every execution of a finite acyclic choice tree;
with the fair policy it enumerates every execution Algorithm 1 can
generate.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.core.model import Program
from repro.core.policies import PolicyFactory
from repro.engine.coverage import CoverageTracker
from repro.engine.executor import (
    ExecutorConfig,
    GuidedChooser,
    Pruner,
    run_execution,
)
from repro.engine.results import ExecutionResult, ExplorationResult
from repro.engine.strategies.base import (
    Aggregator,
    ExplorationLimits,
    next_dfs_guide,
)


def explore_dfs(
    program: Program,
    policy_factory: PolicyFactory,
    config: Optional[ExecutorConfig] = None,
    limits: Optional[ExplorationLimits] = None,
    *,
    coverage: Optional[CoverageTracker] = None,
    pruner: Optional[Pruner] = None,
    listener: Optional[Callable[[ExecutionResult], None]] = None,
    strategy_name: str = "dfs",
    observer=None,
) -> ExplorationResult:
    """Exhaustively search the program's (bounded) execution tree."""
    config = config or ExecutorConfig()
    limits = limits or ExplorationLimits()
    completion_rng = random.Random(config.seed)
    policy_probe = policy_factory()
    aggregator = Aggregator(
        program_name=program.name,
        policy_name=policy_probe.name,
        strategy_name=strategy_name,
        limits=limits,
        coverage=coverage,
        listener=listener,
        observer=observer,
    )

    guide: Optional[list] = []
    stop_reason: Optional[str] = None
    while guide is not None:
        record = run_execution(
            program,
            policy_factory(),
            GuidedChooser(guide),
            config,
            coverage=coverage,
            pruner=pruner,
            completion_rng=completion_rng,
            observer=observer,
        )
        stop_reason = aggregator.add(record)
        if stop_reason is not None:
            break
        guide = next_dfs_guide(record.decisions)
        if observer is not None and guide is not None:
            observer.backtrack(len(guide))

    complete = guide is None and stop_reason is None
    # A violation/divergence stop still means the search answered the
    # question it was asked; completeness refers to tree exhaustion only.
    if stop_reason is None and guide is not None:  # pragma: no cover
        complete = False
    return aggregator.finish(complete=complete, stop_reason=stop_reason)
