"""Systematic depth-first exploration (the paper's ``dfs`` strategy).

Stateless DFS over the choice tree: each execution is replayed from the
initial state along a guide (a prefix of decision indices), extended with
first alternatives, and the recorded decision string is backtracked to
produce the next guide.  Completeness: with the nonfair policy and no
bounds this enumerates every execution of a finite acyclic choice tree;
with the fair policy it enumerates every execution Algorithm 1 can
generate.

The frontier is a single guide plus the random-completion RNG, which makes
DFS the cheapest strategy to checkpoint: a snapshot is a few dozen
integers regardless of how deep the search is.

A ``prefix`` confines the search to one subtree of the choice tree: the
first ``len(prefix)`` decisions are pinned and backtracking stops as soon
as the next guide would have to change one of them.  Running the shards of
a prefix partition in lexicographic order reproduces the exact execution
sequence of an unconfined DFS (see :mod:`repro.parallel.shard`).
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from repro.core.model import Program
from repro.core.policies import PolicyFactory
from repro.engine.coverage import CoverageTracker
from repro.engine.executor import (
    ExecutorConfig,
    GuidedChooser,
    Pruner,
    run_execution,
)
from repro.engine.results import ExecutionResult, ExplorationResult
from repro.engine.snapshots import PrefixSnapshotCache
from repro.engine.strategies.base import (
    ExplorationLimits,
    SearchStrategy,
    next_dfs_guide,
)
from repro.resilience.checkpoint import freeze_rng, thaw_rng


class DfsStrategy(SearchStrategy):
    """Depth-first search with a resumable (guide, RNG) frontier."""

    name = "dfs"

    def __init__(
        self,
        program: Program,
        policy_factory: PolicyFactory,
        config: Optional[ExecutorConfig] = None,
        limits: Optional[ExplorationLimits] = None,
        *,
        coverage: Optional[CoverageTracker] = None,
        pruner: Optional[Pruner] = None,
        listener: Optional[Callable[[ExecutionResult], None]] = None,
        strategy_name: str = "dfs",
        prefix: Optional[List[int]] = None,
        observer=None,
        resilience=None,
    ) -> None:
        super().__init__(
            program,
            policy_factory,
            config or ExecutorConfig(),
            limits,
            coverage=coverage,
            listener=listener,
            observer=observer,
            resilience=resilience,
        )
        self.pruner = pruner
        self._label = strategy_name
        #: Pinned decisions confining the search to one subtree.
        self.prefix: List[int] = list(prefix or [])
        self.guide: Optional[List[int]] = list(self.prefix)
        self.completion_rng = random.Random(self.config.seed)
        #: Prefix-snapshot cache (None unless enabled and the program
        #: supports it); DFS visits guides in lexicographic order, so
        #: stale entries are invalidated eagerly on every backtrack.
        self.snapshot_cache = PrefixSnapshotCache.from_config(
            self.config, program, observer=observer)

    def strategy_label(self) -> str:
        return self._label

    # ------------------------------------------------------------------
    def _has_work(self) -> bool:
        return self.guide is not None

    def _run_once(self) -> ExecutionResult:
        return run_execution(
            self.program,
            self.policy_factory(),
            GuidedChooser(self.guide),
            self.config,
            coverage=self.coverage,
            pruner=self.pruner,
            completion_rng=self.completion_rng,
            observer=self.observer,
            snapshot_cache=self.snapshot_cache,
        )

    def _advance(self, record: ExecutionResult) -> None:
        self.guide = next_dfs_guide(record.decisions)
        if self.guide is not None and len(self.guide) <= len(self.prefix):
            # Backtracking reached the pinned prefix: the subtree is
            # exhausted (every longer guide shares the prefix, because a
            # guided replay fixes those decisions).
            self.guide = None
        if self.snapshot_cache is not None:
            if self.guide is None:
                self.snapshot_cache.clear()
            else:
                # Lexicographic order makes this complete: a cached prefix
                # that diverges from the next guide can never match again.
                self.snapshot_cache.invalidate_not_prefix_of(self.guide)

    def _announce(self) -> None:
        if self.observer is not None and self.guide is not None:
            self.observer.backtrack(len(self.guide))

    # ------------------------------------------------------------------
    def _frontier_state(self) -> dict:
        return {
            "guide": self.guide,
            "prefix": self.prefix,
            "completion_rng": freeze_rng(self.completion_rng),
        }

    def _load_frontier(self, state: dict) -> None:
        self.guide = state.get("guide", [])
        self.prefix = list(state.get("prefix", []))
        rng_state = state.get("completion_rng")
        if rng_state is not None:
            thaw_rng(self.completion_rng, rng_state)


def explore_dfs(
    program: Program,
    policy_factory: PolicyFactory,
    config: Optional[ExecutorConfig] = None,
    limits: Optional[ExplorationLimits] = None,
    *,
    coverage: Optional[CoverageTracker] = None,
    pruner: Optional[Pruner] = None,
    listener: Optional[Callable[[ExecutionResult], None]] = None,
    strategy_name: str = "dfs",
    observer=None,
    resilience=None,
) -> ExplorationResult:
    """Exhaustively search the program's (bounded) execution tree."""
    return DfsStrategy(
        program,
        policy_factory,
        config,
        limits,
        coverage=coverage,
        pruner=pruner,
        listener=listener,
        strategy_name=strategy_name,
        observer=observer,
        resilience=resilience,
    ).explore()
