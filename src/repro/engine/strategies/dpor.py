"""Source-DPOR with wakeup trees (ROADMAP item 4).

Sleep sets (:mod:`repro.engine.strategies.por`) prune *within* the
explored tree but still enumerate every branch of it; dynamic
partial-order reduction only *creates* branches where two executed
transitions actually raced.  This module implements the source-set
variant of Abdulla, Aronis, Jonsson and Sagonas ("Optimal dynamic
partial order reduction", POPL 2014) on top of the stateless engine:

* after every execution, a happens-before relation over the recorded
  steps is computed with vector clocks — two steps of different threads
  are dependent iff either declares no resource set
  (:meth:`repro.runtime.ops.Operation.resources`) or the sets intersect;
* each *race* — a happens-before-adjacent dependent pair ``(i, j)`` of
  different threads — asks for the reversal to be explored from the
  state before step ``i``; the candidate continuation is the **wakeup
  sequence** ``notdep(i) · tid(j)``: the steps between ``i`` and ``j``
  that do not depend on ``i``, followed by ``j`` itself;
* the sequence is inserted at node ``i`` only if none of its **weak
  initials** (threads whose first step in the sequence has no dependent
  predecessor inside it) is already asleep, already explored, or already
  queued there — the wakeup-tree guard that keeps the search from
  re-running sleep-set-blocked permutations;
* sleep sets still ride along every execution, so a branch whose entire
  schedulable set is asleep stops immediately (``VISITED_PRUNED``).

Fairness composition: backtrack points are chosen among what the
*policy* deems schedulable at the insertion node, never the raw enabled
set.  A thread the fair scheduler blocks (its priority is lower and it
yielded) is not a valid race partner *at that node* — scheduling it
would diverge from any schedule the fair search can produce.  When the
preferred initial of a wakeup sequence is fairness-blocked, another weak
initial (which commutes to the front) is used; when none is schedulable
the insertion is skipped and counted (``dpor.fairness_skipped``) — the
reversal is not lost, it reappears at a node where the thread is
schedulable, exactly like the paper's fair scheduler re-enables
low-priority threads once the spinning thread yields control.

Unlike the other strategies the guide is a list of *thread ids*, not
decision indices; recorded :class:`~repro.engine.results.Decision`
entries still index into the full sorted schedulable set, so a DPOR
record replays with the ordinary ``replay_schedule``/``Checker.replay``
machinery.

The prefix-snapshot cache is deliberately declined: race detection needs
the resource footprint of *every* step, and resource sets are
``id()``-based — only valid within one program instance.  A restored
prefix re-executes on a fresh instance (`snapshots.py`), so footprints
recorded before the restore could neither be trusted nor recovered.
Correctness first; the cache keeps accelerating the enumerative
strategies.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.model import Program, RunStatus
from repro.core.policies import PolicyFactory
from repro.engine.classify import classify_divergence
from repro.engine.coverage import CoverageTracker
from repro.engine.executor import ExecutorConfig
from repro.engine.results import (
    Decision,
    ExecutionResult,
    ExplorationResult,
    Outcome,
    TraceStep,
)
from repro.engine.strategies.base import ExplorationLimits, SearchStrategy
from repro.runtime.errors import PropertyViolation

Resources = Optional[Tuple]


def _sorted(values) -> list:
    try:
        return sorted(values)
    except TypeError:
        return sorted(values, key=repr)


def _pending_resources(instance, tid) -> Resources:
    """Resource footprint of ``tid``'s next transition, or None (unknown).

    VM programs expose it through the pending operation; explicit
    transition systems through :meth:`pending_resources` when their
    threads declare footprints (``None`` otherwise — no reduction, every
    pair conservatively dependent).
    """
    getter = getattr(instance, "pending_resources", None)
    if getter is not None:
        return getter(tid)
    tasks = getattr(instance, "task", None)
    if tasks is None:
        return None
    op = tasks(tid).pending
    return None if op is None else op.resources()


def _alive_pending(instance) -> List[Tuple]:
    """``(tid, resources)`` of every thread that has not finished."""
    out: List[Tuple] = []
    tasks = getattr(instance, "task", None)
    if tasks is not None:
        for tid in _sorted(instance.thread_ids()):
            task = tasks(tid)
            if not task.done and task.pending is not None:
                out.append((tid, task.pending.resources()))
        return out
    live = getattr(instance, "live_threads", None)
    if live is None:
        return out
    getter = getattr(instance, "pending_resources", None)
    for tid in _sorted(live()):
        out.append((tid, getter(tid) if getter is not None else None))
    return out


def _dependent(res_a: Resources, res_b: Resources) -> bool:
    """Dependence of two steps of *different* threads by footprint."""
    if res_a is None or res_b is None:
        return True
    return bool(set(res_a) & set(res_b))


def _independent_res(res_a: Resources, res_b: Resources) -> bool:
    return not _dependent(res_a, res_b)


class DporRunMeta:
    """Per-step metadata of one execution, input to the race analysis."""

    __slots__ = ("tids", "resources", "schedulables", "enableds", "sleeps",
                 "final_pending")

    def __init__(self) -> None:
        self.tids: List = []
        self.resources: List[Resources] = []
        #: Sorted policy-schedulable set at each step (fairness-filtered).
        self.schedulables: List[list] = []
        #: Raw enabled set at each step — distinguishes a race partner the
        #: fair policy blocked from one the program itself disabled.
        self.enableds: List[frozenset] = []
        #: Sleep set *entering* each step (inherited ∪ done siblings).
        self.sleeps: List[frozenset] = []
        #: ``(tid, resources)`` of threads still alive at the end of the
        #: execution — blocked at a deadlock/terminal state, or cut short
        #: by a violation.  Their pending operations never executed, so
        #: the executed-pair race analysis cannot see them; they race
        #: like FG-DPOR's next-transitions instead.
        self.final_pending: List[Tuple] = []


def _run_once_dpor(
    program: Program,
    policy,
    schedule: Sequence,
    dones: Sequence[Set],
    *,
    depth_bound: Optional[int],
    depth_mode: str,
    config: Optional[ExecutorConfig],
    coverage: Optional[CoverageTracker],
    observer=None,
    on_final_state: Optional[Callable] = None,
) -> Tuple[ExecutionResult, DporRunMeta]:
    """One execution forced through ``schedule`` (a list of thread ids).

    ``dones[k]`` holds the siblings already explored at node ``k`` of the
    current stack; they join the sleep set entering that node, exactly
    like ``available[:index]`` in the sleep-set walk.
    """
    instance = program.instantiate()
    timers = observer.timers if observer is not None else None
    for tid in _sorted(instance.thread_ids()):
        policy.register_thread(tid)

    meta = DporRunMeta()
    decisions: List[Decision] = []
    trace: List[TraceStep] = []
    sleep: Set = set()
    steps = 0
    yields = 0
    violation = None
    divergence = None
    hit_depth_bound = False
    outcome = Outcome.TERMINATED
    abandoned = False
    if observer is not None:
        observer.execution_started()

    while True:
        if coverage is not None:
            if timers is not None:
                t0 = time.perf_counter()
                coverage.record(instance.state_signature())
                timers.add("hash", time.perf_counter() - t0)
            else:
                coverage.record(instance.state_signature())
        enabled = instance.enabled_threads()
        if not enabled:
            if instance.status() is RunStatus.TERMINATED:
                outcome = Outcome.TERMINATED
            else:
                outcome = Outcome.DEADLOCK
            # Threads still alive here never executed their pending
            # operation; it must race like an executed step would
            # (explicit systems report no-enabled as TERMINATED even
            # when threads are merely blocked — collect on both paths).
            meta.final_pending = _alive_pending(instance)
            break
        if depth_bound is not None and steps >= depth_bound:
            hit_depth_bound = True
            if depth_mode == "divergence":
                window = max(16, min(
                    config.divergence_window if config is not None else 256,
                    steps // 2))
                divergence = classify_divergence(
                    trace, window=window,
                    gs_schedule_threshold=(
                        config.gs_schedule_threshold
                        if config is not None else 8),
                    observer=observer)
                if observer is not None:
                    observer.divergence(divergence)
                outcome = Outcome.DIVERGENCE
            else:
                outcome = Outcome.DEPTH_PRUNED
            break
        if timers is not None:
            t0 = time.perf_counter()
            schedulable = policy.schedulable(enabled)
            timers.add("policy", time.perf_counter() - t0)
        else:
            schedulable = policy.schedulable(enabled)
        options = _sorted(schedulable)
        effective_sleep = sleep | (dones[steps] if steps < len(dones)
                                   else set())

        tid = None
        if steps < len(schedule) and not abandoned:
            wanted = schedule[steps]
            if wanted in schedulable:
                tid = wanted
            elif steps < len(dones):
                # A stack node replays the exact path that produced it;
                # the chosen thread must still be schedulable there.
                raise ValueError("dpor replay diverged from its stack")
            else:
                # Wakeup tail made infeasible by the policy (fairness
                # priorities shifted): abandon the rest of the forced
                # suffix and fall back to the default extension.
                abandoned = True
                if observer is not None:
                    observer.dpor_wakeup_abandoned()
        if tid is None:
            for candidate in options:
                if candidate not in effective_sleep:
                    tid = candidate
                    break
        if tid is None:
            # Everything schedulable is asleep: this branch only permutes
            # independent transitions of an explored execution.  Its
            # *blocked pending* operations are new information though —
            # the equivalent explored execution reached this
            # configuration mid-run (where pending ops are never
            # analyzed) or with different guard values, so a race
            # against a never-executed transition can be visible here
            # and nowhere else.  Collect them; the insertion guards
            # drop the redundant ones.
            outcome = Outcome.VISITED_PRUNED
            meta.final_pending = _alive_pending(instance)
            if observer is not None:
                observer.dpor_sleep_blocked()
            break

        executed_res = _pending_resources(instance, tid)
        meta.tids.append(tid)
        meta.resources.append(executed_res)
        meta.schedulables.append(options)
        meta.enableds.append(frozenset(enabled))
        meta.sleeps.append(frozenset(effective_sleep))
        decisions.append(
            Decision("thread", options.index(tid), len(options), tid))
        if observer is not None:
            observer.decision(steps, "thread", options.index(tid),
                              len(options), tid, len(schedulable),
                              len(enabled))

        t0 = time.perf_counter() if timers is not None else 0.0
        try:
            info = instance.step(tid)
        except PropertyViolation as exc:
            violation = exc
            outcome = Outcome.VIOLATION
            steps += 1
            if timers is not None:
                timers.add("execute", time.perf_counter() - t0)
            if observer is not None:
                observer.violation(steps, str(exc))
            meta.final_pending = [
                (u, res) for u, res in _alive_pending(instance) if u != tid]
            break
        if timers is not None:
            timers.add("execute", time.perf_counter() - t0)
        policy.observe_step(info)
        trace.append(TraceStep(tid, str(tid), info.operation, info.yielded,
                               enabled))
        steps += 1
        if info.yielded:
            yields += 1
        sleep = {
            u for u in effective_sleep
            if u != tid and _independent_res(_pending_resources(instance, u),
                                             executed_res)
        }

    if on_final_state is not None and outcome in (Outcome.TERMINATED,
                                                  Outcome.DEADLOCK):
        on_final_state(instance, outcome)

    result = ExecutionResult(
        outcome=outcome,
        decisions=decisions,
        steps=steps,
        violation=violation,
        divergence=divergence,
        trace=tuple(trace[-256:]),
        hit_depth_bound=hit_depth_bound,
    )
    if observer is not None:
        observer.execution_finished(result, yields=yields)
    return result, meta


# ----------------------------------------------------------------------
# happens-before / race analysis
# ----------------------------------------------------------------------
def _vector_clocks(tids: Sequence, resources: Sequence[Resources]) -> List[Dict]:
    """clocks[j][t] = last step index of thread ``t`` happening before
    (or equal to) step ``j``; -1/absent when none does."""
    clocks: List[Dict] = []
    last_of_thread: Dict = {}
    for j, tid in enumerate(tids):
        clock: Dict = {}
        prev = last_of_thread.get(tid)
        if prev is not None:  # program order
            clock.update(clocks[prev])
        for i in range(j - 1, -1, -1):
            if tids[i] == tid:
                continue
            if clock.get(tids[i], -1) >= i:
                continue  # already ordered transitively
            if _dependent(resources[i], resources[j]):
                for t, v in clocks[i].items():
                    if clock.get(t, -1) < v:
                        clock[t] = v
                if clock.get(tids[i], -1) < i:
                    clock[tids[i]] = i
        clock[tid] = j
        clocks.append(clock)
        last_of_thread[tid] = j
    return clocks


def _races(tids: Sequence, resources: Sequence[Resources],
           clocks: Sequence[Dict]) -> List[Tuple[int, int]]:
    """Happens-before-adjacent dependent pairs of different threads.

    Scanning predecessors of ``j`` from nearest to farthest, a ``covered``
    clock accumulates everything reachable through an already-visited
    predecessor; a dependent pair only races when ``i`` reaches ``j``
    *directly*, not through an intermediate step.
    """
    races: List[Tuple[int, int]] = []
    for j in range(len(tids)):
        covered: Dict = {}
        for i in range(j - 1, -1, -1):
            if clocks[j].get(tids[i], -1) < i:
                continue  # concurrent with j: no edge to reverse
            if covered.get(tids[i], -1) >= i:
                continue  # reaches j only through a later step
            if tids[i] != tids[j] and _dependent(resources[i], resources[j]):
                races.append((i, j))
            for t, v in clocks[i].items():
                if covered.get(t, -1) < v:
                    covered[t] = v
    return races


def _weak_initials(seq_tids: Sequence, seq_res: Sequence[Resources]) -> List:
    """Threads whose first step in the sequence has no dependent
    predecessor inside it — they commute to the front."""
    initials: List = []
    seen: Set = set()
    for pos, tid in enumerate(seq_tids):
        if tid in seen:
            continue
        seen.add(tid)
        if not any(_dependent(seq_res[h], seq_res[pos])
                   for h in range(pos)):
            initials.append(tid)
    return initials


def _wakeup_sequence(i: int, j: int, tids: Sequence,
                     resources: Sequence[Resources],
                     clocks: Sequence[Dict]) -> Tuple[List[int], List]:
    """``notdep(i) · j`` for race ``(i, j)``: the step indices between the
    two that do not happen-after ``i``, then ``j``; plus the weak initials
    of that sequence."""
    idxs = [k for k in range(i + 1, j)
            if clocks[k].get(tids[i], -1) < i] + [j]
    initials = _weak_initials([tids[k] for k in idxs],
                              [resources[k] for k in idxs])
    return idxs, initials


def _pending_clock(tids: Sequence, resources: Sequence[Resources],
                   clocks: Sequence[Dict], u, res_u: Resources) -> Dict:
    """Vector clock of thread ``u``'s never-executed pending transition:
    program-order after all of ``u``'s executed steps, dependence-after
    every executed step that touches its footprint."""
    clock: Dict = {}
    last = None
    for k in range(len(tids) - 1, -1, -1):
        if tids[k] == u:
            last = k
            break
    if last is not None:
        clock.update(clocks[last])
    for i in range(len(tids) - 1, -1, -1):
        if tids[i] == u:
            continue
        if clock.get(tids[i], -1) >= i:
            continue
        if _dependent(resources[i], res_u):
            for t, v in clocks[i].items():
                if clock.get(t, -1) < v:
                    clock[t] = v
            if clock.get(tids[i], -1) < i:
                clock[tids[i]] = i
    if last is not None:
        clock[u] = last
    return clock


def _pending_races(tids: Sequence, resources: Sequence[Resources],
                   clocks: Sequence[Dict], u, res_u: Resources) -> List[int]:
    """hb-adjacent executed race partners of the pending transition,
    latest first — :func:`_races` for a virtual final step of ``u``.

    The covered-scan matters: a step hidden behind one of ``u``'s own
    executed steps (or any other hb-intermediate) is not adjacent, and
    reversing against it directly would schedule the *wrong* transition
    of ``u`` — the surviving partners have none of ``u``'s steps
    happening after them, so the wakeup sequence ``notdep(i)`` carries
    every executed step of ``u`` and the forced run re-arms exactly the
    pending operation."""
    jclock = _pending_clock(tids, resources, clocks, u, res_u)
    partners: List[int] = []
    covered: Dict = {}
    for i in range(len(tids) - 1, -1, -1):
        if jclock.get(tids[i], -1) < i:
            continue  # concurrent with the pending op
        if covered.get(tids[i], -1) >= i:
            continue  # reaches it only through a later step
        if tids[i] != u and _dependent(resources[i], res_u):
            partners.append(i)
        for t, v in clocks[i].items():
            if covered.get(t, -1) < v:
                covered[t] = v
    return partners


class DporStrategy(SearchStrategy):
    """Source-DPOR with wakeup trees.

    The frontier is an explicit stack of nodes along the last execution:
    each carries the branch currently being explored (``choice``), the
    siblings already finished there (``done``), the sleep set it was
    entered with (``inherited``), the policy-schedulable set observed
    there, and the queued wakeup sequences.  Backtracking pops the
    deepest node with a queued sequence and forces its tids verbatim —
    the wakeup *tail* beyond the stack — so the reversal is reached
    without re-exploring the sleep-blocked permutations in between.
    """

    name = "dpor"

    def __init__(
        self,
        program: Program,
        policy_factory: PolicyFactory,
        *,
        depth_bound: Optional[int] = None,
        limits: Optional[ExplorationLimits] = None,
        prefix: Optional[List[int]] = None,
        coverage: Optional[CoverageTracker] = None,
        listener: Optional[Callable[[ExecutionResult], None]] = None,
        observer=None,
        resilience=None,
        config: Optional[ExecutorConfig] = None,
        on_final_state: Optional[Callable] = None,
    ) -> None:
        super().__init__(
            program,
            policy_factory,
            config,
            limits,
            coverage=coverage,
            listener=listener,
            observer=observer,
            resilience=resilience,
        )
        if prefix:
            raise ValueError(
                "source-DPOR cannot be confined to a decision prefix: "
                "backtrack points are discovered dynamically and may land "
                "inside any prefix; parallel plans use a single shard")
        if depth_bound is None and config is not None:
            depth_bound = config.depth_bound
        self.depth_bound = depth_bound
        mode = config.on_depth_exceeded if config is not None else "prune"
        #: Random completion makes executions non-reproducible across the
        #: race analysis; bounded DPOR prunes at the bound instead.
        self.depth_mode = "divergence" if mode == "divergence" else "prune"
        self.on_final_state = on_final_state
        #: One dict per node of the current exploration path.
        self.stack: List[dict] = []
        #: Forced wakeup-sequence suffix beyond the stack.
        self.tail: List = []
        self.exhausted = False
        self._last_meta: Optional[DporRunMeta] = None

    def strategy_label(self) -> str:
        return "source-dpor"

    # ------------------------------------------------------------------
    def _has_work(self) -> bool:
        return not self.exhausted

    def _run_once(self) -> ExecutionResult:
        schedule = [node["choice"] for node in self.stack] + list(self.tail)
        dones = [set(node["done"]) for node in self.stack]
        record, meta = _run_once_dpor(
            self.program,
            self.policy_factory(),
            schedule,
            dones,
            depth_bound=self.depth_bound,
            depth_mode=self.depth_mode,
            config=self.config,
            coverage=self.coverage,
            observer=self.observer,
            on_final_state=self.on_final_state,
        )
        self._last_meta = meta
        return record

    def _advance(self, record: ExecutionResult) -> None:
        meta, self._last_meta = self._last_meta, None
        if meta is None:
            self.exhausted = True
            return
        del self.stack[len(meta.tids):]  # defensive; replay covers stack
        for k in range(len(self.stack), len(meta.tids)):
            self.stack.append({
                "choice": meta.tids[k],
                "inherited": _sorted(meta.sleeps[k]),
                "done": [],
                "wakeups": [],
                "schedulable": list(meta.schedulables[k]),
            })
        self._insert_backtracks(meta)
        self._backtrack()

    def _insert_backtracks(self, meta: DporRunMeta) -> None:
        tids, resources = meta.tids, meta.resources
        if not tids:
            return
        clocks = _vector_clocks(tids, resources)
        for i, j in _races(tids, resources, clocks):
            if self.observer is not None:
                self.observer.dpor_race_detected()
            status = self._try_insert(meta, clocks, i, j)
            # Lock handover: when the racing thread is *disabled* at node
            # ``i`` (a release/acquire pair — the acquire can never move
            # before the release), the reversal that exists is handing
            # the whole critical section over, i.e. scheduling ``j``
            # before the earlier dependent step of another thread
            # (typically the matching acquire).  Walk back to it.
            back = i
            while status == "disabled":
                back = next(
                    (k for k in range(back - 1, -1, -1)
                     if tids[k] != tids[j]
                     and _dependent(resources[k], resources[j])),
                    None)
                if back is None:
                    if self.observer is not None:
                        self.observer.dpor_wakeup_pruned()
                    break
                status = self._try_insert(meta, clocks, back, j)
                if status == "inserted" and self.observer is not None:
                    self.observer.dpor_handover()
        # A violation or blocking cut this execution short: threads with
        # a pending-but-never-executed operation race against the
        # executed steps they depend on, like FG-DPOR's next-transition
        # rule.  Without this, the branches behind a first violation (or
        # a blocked lock attempt) would never be scheduled at all.
        for u, res_u in meta.final_pending:
            partners = _pending_races(tids, resources, clocks, u, res_u)
            if not partners:
                continue
            if self.observer is not None:
                self.observer.dpor_race_detected()
            for i in partners:
                status = self._try_insert_pending(meta, clocks, i, u, res_u)
                back = i
                while status == "disabled":
                    back = next(
                        (k for k in range(back - 1, -1, -1)
                         if tids[k] != u
                         and _dependent(resources[k], res_u)),
                        None)
                    if back is None:
                        if self.observer is not None:
                            self.observer.dpor_wakeup_pruned()
                        break
                    status = self._try_insert_pending(
                        meta, clocks, back, u, res_u)
                    if status == "inserted" and self.observer is not None:
                        self.observer.dpor_handover()

    def _try_insert_pending(self, meta: DporRunMeta, clocks, i: int,
                            u, res_u: Resources) -> str:
        """Queue the reversal of the race between step ``i`` and thread
        ``u``'s never-executed pending transition: the steps after ``i``
        that do not happen-after it — which include every executed step
        of ``u``, so the forced run re-arms exactly the pending
        operation — then ``u`` itself."""
        tids, resources = meta.tids, meta.resources
        idxs = [k for k in range(i + 1, len(tids))
                if clocks[k].get(tids[i], -1) < i]
        seq = [tids[k] for k in idxs] + [u]
        seq_res = [resources[k] for k in idxs] + [res_u]
        return self._queue_wakeup(meta, i, seq, _weak_initials(seq, seq_res))

    def _try_insert(self, meta: DporRunMeta, clocks, i: int, j: int) -> str:
        """Queue the wakeup sequence for race ``(i, j)`` at node ``i``.

        Returns ``"inserted"``, ``"pruned"`` (redundant — an equivalent
        reordering is asleep, explored, or already queued), ``"skipped"``
        (every viable initial is fairness-blocked), or ``"disabled"``
        (the racing thread is not even enabled there — handover needed).
        """
        tids, resources = meta.tids, meta.resources
        idxs, initials = _wakeup_sequence(i, j, tids, resources, clocks)
        return self._queue_wakeup(meta, i, [tids[k] for k in idxs], initials)

    def _queue_wakeup(self, meta: DporRunMeta, i: int, seq: List,
                      initials: List) -> str:
        node = self.stack[i]
        wi = set(initials)
        if wi & meta.sleeps[i]:
            # Some reordering with the same first step was already
            # explored from this node — the reversal is redundant.
            if self.observer is not None:
                self.observer.dpor_wakeup_pruned()
            return "pruned"
        heads = {w[0] for w in node["wakeups"]}
        if wi & (set(node["done"]) | heads | {meta.tids[i]}):
            if self.observer is not None:
                self.observer.dpor_wakeup_pruned()
            return "pruned"
        schedulable = set(node["schedulable"])
        order = list(seq)
        if order[0] not in schedulable:
            # Any weak initial commutes to the front of the sequence.
            front = next((t for t in initials if t in schedulable), None)
            if front is None:
                if not (wi & meta.enableds[i]):
                    return "disabled"
                # Enabled but not schedulable: the fair policy blocked
                # it here, so no fair schedule takes this branch at this
                # node — exactly the pruning the fair DFS applies too.
                if self.observer is not None:
                    self.observer.dpor_fairness_skipped()
                return "skipped"
            pos = order.index(front)
            order = [order[pos]] + order[:pos] + order[pos + 1:]
        node["wakeups"].append(order)
        return "inserted"

    def _backtrack(self) -> None:
        for k in range(len(self.stack) - 1, -1, -1):
            node = self.stack[k]
            node["done"].append(node["choice"])
            if node["wakeups"]:
                sequence = node["wakeups"].pop(0)
                node["choice"] = sequence[0]
                del self.stack[k + 1:]
                self.tail = list(sequence[1:])
                return
            self.stack.pop()
        self.tail = []
        self.exhausted = True

    def _announce(self) -> None:
        if self.observer is not None and not self.exhausted:
            self.observer.backtrack(len(self.stack))

    # ------------------------------------------------------------------
    def _frontier_state(self) -> dict:
        return {
            "stack": [dict(node) for node in self.stack],
            "tail": list(self.tail),
            "exhausted": self.exhausted,
            "depth_bound": self.depth_bound,
        }

    def _load_frontier(self, state: dict) -> None:
        self.stack = [
            {
                "choice": node["choice"],
                "inherited": list(node.get("inherited", [])),
                "done": list(node.get("done", [])),
                "wakeups": [list(w) for w in node.get("wakeups", [])],
                "schedulable": list(node.get("schedulable", [])),
            }
            for node in state.get("stack", [])
        ]
        self.tail = list(state.get("tail", []))
        self.exhausted = bool(state.get("exhausted", False))
        self.depth_bound = state.get("depth_bound", self.depth_bound)


def explore_source_dpor(
    program: Program,
    policy_factory: PolicyFactory,
    *,
    depth_bound: Optional[int] = None,
    limits: Optional[ExplorationLimits] = None,
    coverage: Optional[CoverageTracker] = None,
    listener: Optional[Callable[[ExecutionResult], None]] = None,
    observer=None,
    resilience=None,
    config: Optional[ExecutorConfig] = None,
    on_final_state: Optional[Callable] = None,
) -> ExplorationResult:
    """Source-DPOR with wakeup trees, run to exhaustion."""
    return DporStrategy(
        program,
        policy_factory,
        depth_bound=depth_bound,
        limits=limits,
        coverage=coverage,
        listener=listener,
        observer=observer,
        resilience=resilience,
        config=config,
        on_final_state=on_final_state,
    ).explore()
