"""Replay recorded schedules — counterexample reproduction.

Because every execution is fully determined by its decision sequence, a
violation or livelock found by the search can be replayed exactly, with
full trace recording, for debugging.  The same policy (and configuration)
used during the search must be supplied: the fair policy shapes the
schedulable sets, so decision indices are only meaningful relative to it.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Union

from repro.core.model import Program
from repro.core.policies import PolicyFactory
from repro.engine.executor import ExecutorConfig, GuidedChooser, run_execution
from repro.engine.results import Decision, ExecutionResult


def replay_schedule(
    program: Program,
    schedule: Union[Sequence[int], Sequence[Decision]],
    policy_factory: PolicyFactory,
    config: Optional[ExecutorConfig] = None,
    *,
    trace_window: int = 100_000,
) -> ExecutionResult:
    """Re-run an execution from its recorded schedule with a full trace.

    ``schedule`` is either a plain list of decision indices
    (``ExecutionResult.schedule``) or the decision list itself.
    """
    indices = [
        d.index if isinstance(d, Decision) else int(d) for d in schedule
    ]
    config = dataclasses.replace(
        config or ExecutorConfig(), trace_window=trace_window,
    )
    return run_execution(
        program,
        policy_factory(),
        GuidedChooser(indices),
        config,
    )


def explain_deadlock(
    program: Program,
    record: ExecutionResult,
    policy_factory: PolicyFactory,
    config: Optional[ExecutorConfig] = None,
) -> str:
    """Replay a deadlocked execution and describe who waits on what.

    Returns one line per live thread with the operation it is blocked on
    — the wait-for information a user needs to see the cycle.
    """
    config = dataclasses.replace(
        config or ExecutorConfig(), keep_instance=True,
    )
    replayed = replay_schedule(program, record.decisions, policy_factory,
                               config, trace_window=4096)
    instance = replayed.final_instance
    if instance is None:
        return "no final state available"
    lines = []
    task_getter = getattr(instance, "task", None)
    for tid in sorted(instance.thread_ids(), key=repr):
        task = task_getter(tid) if task_getter is not None else None
        if task is None or task.done:
            continue
        pending = task.pending.describe() if task.pending else "nothing"
        lines.append(f"  {task.name} blocked on {pending}")
    closer = getattr(instance, "close", None)
    if closer is not None:
        closer()
    if not lines:
        return "no blocked threads (the execution did not deadlock)"
    return "deadlock wait-for set:\n" + "\n".join(lines)
