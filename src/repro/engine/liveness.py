"""Temporal liveness monitors (the paper's future work, Section 6).

CHESS as published checks two liveness properties: fair termination and the
good-samaritan rule.  The conclusions propose extending it to *arbitrary*
liveness properties; this module implements the most useful family for
multithreaded software — **response properties**::

    GF trigger  ⇒  GF response
    ("if the trigger keeps happening, the response keeps happening")

evaluated, like the paper's built-in properties, on the suffix of a
divergent execution.  A monitor observes the two state predicates at every
transition; when an execution exceeds the divergence bound, the checker
asks each monitor for a verdict over the recorded window.

Example — "every enqueue is eventually dequeued"::

    def setup(env):
        q = Channel(name="q")
        ...
        env.add_temporal_monitor(ResponseMonitor(
            trigger=lambda: q.size() > 0,
            response=lambda: q.size() == 0,
            name="queue-drains",
        ))
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional


class TemporalMonitor:
    """Base class: observes every state, judges divergent suffixes."""

    name = "temporal"

    def observe(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def verdict(self) -> Optional[str]:
        """Return a violation message, or None if the property holds on the
        observed window."""
        raise NotImplementedError


class ResponseMonitor(TemporalMonitor):
    """``GF trigger ⇒ GF response`` over the divergence window.

    The property is judged violated when, within the observed window, the
    trigger held at least ``min_occurrences`` times after the last state in
    which the response held.
    """

    def __init__(
        self,
        trigger: Callable[[], bool],
        response: Callable[[], bool],
        name: str = "response",
        *,
        window: int = 256,
        min_occurrences: int = 8,
    ) -> None:
        self.name = name
        self._trigger = trigger
        self._response = response
        self._events: deque = deque(maxlen=window)
        self._min = min_occurrences

    def observe(self) -> None:
        self._events.append((bool(self._trigger()), bool(self._response())))

    def verdict(self) -> Optional[str]:
        pending = 0
        for triggered, responded in self._events:
            if responded:
                pending = 0
            elif triggered:
                pending += 1
        if pending >= self._min:
            return (
                f"response property {self.name!r} violated: trigger held "
                f"{pending} times with no response in the divergence window"
            )
        return None


class EventuallyMonitor(TemporalMonitor):
    """``F goal`` — the goal predicate must hold at least once before the
    execution diverges.  Useful for progress obligations like "the boot
    sequence reaches the running state"."""

    def __init__(self, goal: Callable[[], bool], name: str = "eventually") -> None:
        self.name = name
        self._goal = goal
        self._satisfied = False

    def observe(self) -> None:
        if not self._satisfied and self._goal():
            self._satisfied = True

    def verdict(self) -> Optional[str]:
        if self._satisfied:
            return None
        return (
            f"liveness property {self.name!r} violated: the goal never "
            f"held before the execution diverged"
        )
