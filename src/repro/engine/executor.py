"""Run one execution of a program under a scheduling policy.

This is the inner loop of the stateless model checker: instantiate the
program, and at every state compute the schedulable set ``T`` from the
policy, ask the *chooser* which alternative to take, execute the chosen
transition, and feed the observation back into the policy.  Data
nondeterminism (``choose(n)``) flows through the same chooser, so the
recorded decision sequence fully determines the execution — replaying it
reproduces the run bit-for-bit (stateless exploration).

Context-bounded search (Musuvathi & Qadeer, PLDI 2007) is implemented here
as preemption accounting with the fairness integration rule of Section 4:
a context switch forced by the priority relation (the current thread is
enabled but not schedulable) is *not* counted as a preemption, and neither
is a switch after a voluntary yield.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, List, Optional, Sequence

from repro.chaos.faults import InjectedFault, fault_at
from repro.core.model import Program, ProgramInstance, RunStatus
from repro.core.policies import SchedulingPolicy
from repro.engine.classify import classify_divergence
from repro.engine.coverage import CoverageTracker
from repro.engine.results import (
    Decision,
    DivergenceKind,
    DivergenceReport,
    ExecutionResult,
    Outcome,
    TraceStep,
)
from repro.engine.snapshots import PrefixSnapshot, PrefixSnapshotCache
from repro.runtime.errors import ExecutionHung, PropertyViolation, TaskCrash


def _temporal_verdict(instance: ProgramInstance) -> Optional[DivergenceReport]:
    """Consult the instance's temporal liveness monitors at divergence."""
    for monitor in getattr(instance, "temporal_monitors", ()):
        message = monitor.verdict()
        if message is not None:
            return DivergenceReport(
                kind=DivergenceKind.TEMPORAL,
                culprits=(monitor.name,),
                window=0,
                detail=message,
            )
    return None

@dataclass(frozen=True)
class PrunePoint:
    """Where in the execution a pruner is being consulted."""

    steps: int  # transitions executed so far
    decisions: int  # decisions recorded so far
    last_tid: object
    last_was_yield: bool
    preemptions: int


#: Called at every state; returning True prunes the execution.  Used by the
#: stateful ground-truth search (visited-state pruning).
Pruner = Callable[[ProgramInstance, PrunePoint], bool]

#: Called after every transition with the live instance; may raise
#: PropertyViolation to fail the execution.
Monitor = Callable[[ProgramInstance], None]


class Chooser:
    """Resolves nondeterministic choices; ``pick`` returns an index."""

    def pick(self, kind: str, options: int) -> int:  # pragma: no cover
        raise NotImplementedError


class GuidedChooser(Chooser):
    """Follow a recorded guide, defaulting to alternative 0 beyond it.

    This single chooser implements both replay (guide covers the whole
    execution) and DFS extension (guide covers a prefix; the suffix takes
    the first alternative everywhere and gets recorded for backtracking).
    """

    def __init__(self, guide: Sequence[int] = ()) -> None:
        self._guide = list(guide)
        self._cursor = 0

    @property
    def guide(self) -> Sequence[int]:
        """The recorded guide (read by the prefix-snapshot cache)."""
        return tuple(self._guide)

    def skip(self, count: int) -> None:
        """Advance past ``count`` decisions restored from a snapshot."""
        self._cursor += count

    def pick(self, kind: str, options: int) -> int:
        if self._cursor < len(self._guide):
            index = self._guide[self._cursor]
            self._cursor += 1
            if not 0 <= index < options:
                raise ValueError(
                    f"replay diverged: guide wants alternative {index} of "
                    f"{options} at decision {self._cursor - 1}"
                )
            return index
        self._cursor += 1
        return 0


class RandomChooser(Chooser):
    """Uniform random choices (the paper's random search, reference [17])."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng

    def pick(self, kind: str, options: int) -> int:
        if options == 1:
            return 0
        return self._rng.randrange(options)


@dataclass
class ExecutorConfig:
    """Per-execution knobs shared by all strategies."""

    #: Maximum number of transitions before the depth-bound action fires.
    depth_bound: Optional[int] = None
    #: What to do at the bound: "divergence" (fair mode: classify and
    #: report), "prune" (cut the execution), or "random-completion"
    #: (continue with random scheduling until natural termination — the
    #: baseline configuration of Table 2).
    on_depth_exceeded: str = "divergence"
    #: Safety cap on random completion, in transitions past the bound.
    #: Random scheduling is fair with probability 1, so fair-terminating
    #: programs finish well within this; genuinely livelocked programs
    #: burn the whole cap on every pruned execution, so keep it modest.
    random_completion_cap: int = 2000
    #: Context bound: maximum preemptions per execution (None = unbounded).
    preemption_bound: Optional[int] = None
    #: Count fairness-forced switches as preemptions (the paper says not
    #: to; True only for the ablation benchmark).
    count_fairness_preemptions: bool = False
    #: Ring-buffer size for the recorded trace.
    trace_window: int = 512
    #: Suffix length analyzed by the divergence classifier.
    divergence_window: int = 256
    gs_schedule_threshold: int = 8
    monitors: Sequence[Monitor] = field(default_factory=tuple)
    #: Random seed for random completion (per-execution rng derives from
    #: the strategy's rng when provided there instead).
    seed: int = 0
    #: Keep the final program instance on the result (skips instance
    #: teardown; used by post-mortem inspection like deadlock reports).
    keep_instance: bool = False
    #: Wall-clock budget for one execution, in seconds (None = no
    #: watchdog).  An execution that exceeds it is aborted with
    #: :attr:`~repro.engine.results.Outcome.ABORTED` and the search moves
    #: on; native runtimes additionally get a per-step timeout so a thread
    #: hung inside a blocking operation cannot stall the checker.
    execution_budget_seconds: Optional[float] = None
    #: Capture crashes (``TaskCrash`` or any unexpected exception raised
    #: while stepping) as :attr:`~repro.engine.results.Outcome.CRASHED`
    #: records instead of letting them propagate.  Off by default: legacy
    #: behavior treats a task crash as a property violation.
    capture_crashes: bool = False
    #: Enable the prefix-snapshot cache (docs/performance.md).  Only
    #: effective for programs that declare ``supports_snapshot`` (the VM
    #: runtime); the native runtime transparently falls back to full
    #: replay.  Off by default.
    snapshot_cache: bool = False
    #: Snapshot every N transitions along an execution.  Smaller = less
    #: prefix re-execution, more capture overhead and memory.
    snapshot_interval: int = 16
    #: Memory budget for the snapshot cache, in MiB (LRU eviction).
    snapshot_memory_mb: int = 64


def _sorted_options(values) -> list:
    try:
        return sorted(values)
    except TypeError:
        return sorted(values, key=repr)


def _setup_instance(program: Program, config: ExecutorConfig, observer):
    """Instantiate the program with the per-instance executor plumbing."""
    instance = program.instantiate()
    if config.execution_budget_seconds is not None and hasattr(
            instance, "step_timeout"):
        # Native runtimes also time out individual blocked steps, so a
        # thread hung in a blocking operation cannot stall the search
        # past roughly twice the budget.
        instance.step_timeout = config.execution_budget_seconds
    if observer is not None and hasattr(instance, "observer"):
        instance.observer = observer
    return instance


def _restore_prefix(
    cache: PrefixSnapshotCache,
    chooser: Chooser,
    program: Program,
    instance: ProgramInstance,
    config: ExecutorConfig,
    coverage: Optional[CoverageTracker],
    observer,
    timers,
):
    """Fast-forward ``instance`` through the deepest cached prefix of the
    chooser's guide.  Returns ``(instance, snapshot-or-None)``; any
    failure falls back to a fresh instance and full replay."""
    guide = getattr(chooser, "guide", None)
    skip = getattr(chooser, "skip", None)
    forward = getattr(instance, "fast_forward", None)
    if guide is None or skip is None or forward is None:
        return instance, None
    t0 = perf_counter() if timers is not None else 0.0
    entry = cache.lookup(guide, need_signatures=coverage is not None)
    if entry is not None:
        def per_step(live) -> None:
            for monitor in config.monitors:
                monitor(live)

        try:
            rule = fault_at("snapshot.restore", steps=entry.steps)
            if rule is not None:
                raise InjectedFault(
                    f"injected snapshot.restore fault ({rule.kind})")
            forward(entry.decisions, per_step=per_step)
        except Exception:  # noqa: BLE001 - determinism-contract guard
            # The prefix did not replay cleanly, so the program broke the
            # determinism contract; trust nothing cached and fall back to
            # a fresh instance and a full replay.
            cache.clear(failure=True)
            closer = getattr(instance, "close", None)
            if closer is not None:
                closer()
            instance = _setup_instance(program, config, observer)
            entry = None
    if timers is not None:
        elapsed = perf_counter() - t0
        timers.add("snapshot", elapsed)
        if observer is not None:
            observer.snapshot_restore_timed(
                elapsed,
                entry.estimated_bytes() if entry is not None else 0)
    if observer is not None:
        observer.snapshot_lookup(entry is not None,
                                 entry.steps if entry is not None else 0)
    return instance, entry


def run_execution(
    program: Program,
    policy: SchedulingPolicy,
    chooser: Chooser,
    config: ExecutorConfig,
    *,
    coverage: Optional[CoverageTracker] = None,
    pruner: Optional[Pruner] = None,
    completion_rng: Optional[random.Random] = None,
    observer=None,
    snapshot_cache: Optional[PrefixSnapshotCache] = None,
) -> ExecutionResult:
    """Execute the program once under ``policy``, steering with ``chooser``.

    ``observer`` is an optional :class:`repro.obs.observer.Observer`; when
    None (the default) the loop takes only dead branches — no telemetry
    objects are touched on the hot path.

    ``snapshot_cache`` is an optional
    :class:`~repro.engine.snapshots.PrefixSnapshotCache` owned by the
    calling strategy: when the chooser carries a guide, the execution
    starts from the deepest cached snapshot whose decision prefix matches
    it (instead of re-executing from step 0) and stores new snapshots
    every ``cache.interval`` transitions.  Cached and uncached runs
    produce identical results; a pruner disables the cache because prefix
    restoration would skip its per-state consultations.
    """
    if pruner is not None:
        snapshot_cache = None
    instance = _setup_instance(program, config, observer)
    deadline: Optional[float] = None
    if config.execution_budget_seconds is not None:
        deadline = perf_counter() + config.execution_budget_seconds
    timers = observer.timers if observer is not None else None
    profiler = observer.profiler if observer is not None else None

    restored: Optional[PrefixSnapshot] = None
    if snapshot_cache is not None:
        instance, restored = _restore_prefix(
            snapshot_cache, chooser, program, instance, config, coverage,
            observer, timers)

    if restored is not None:
        # Resume the engine where the snapshot left off: the restored
        # policy state already saw every prefix step (register_thread
        # included), the chooser cursor jumps past the restored
        # decisions, and the coverage tracker replays the prefix's
        # recorded signatures so totals match a full replay exactly.
        policy = restored.restore_policy(policy)
        chooser.skip(len(restored.decisions))
        decisions: List[Decision] = list(restored.decisions)
        trace: deque = deque(restored.trace, maxlen=config.trace_window)
        steps = restored.steps
        preemptions = restored.preemptions
        yields = restored.yields
        last_tid: object = restored.last_tid
        last_was_yield = restored.last_was_yield
        if coverage is not None and restored.signatures:
            t0 = perf_counter() if timers is not None else 0.0
            for signature in restored.signatures:
                coverage.record(signature)
            if timers is not None:
                elapsed = perf_counter() - t0
                timers.add("snapshot", elapsed)
                if observer is not None:
                    observer.snapshot_restore_timed(elapsed, 0)
    else:
        for tid in _sorted_options(instance.thread_ids()):
            policy.register_thread(tid)
        decisions = []
        trace = deque(maxlen=config.trace_window)
        steps = 0
        preemptions = 0
        yields = 0
        last_tid = None
        last_was_yield = False

    if profiler is not None:
        # Cursor into the decision-cost tree: enter at the prefix already
        # recorded (empty for a fresh execution, the restored decisions
        # after a snapshot fast-forward) and time iterations from here.
        pnode = profiler.enter(d.index for d in decisions)
        pmark = perf_counter()
    else:
        pnode = None
        pmark = 0.0

    track_signatures = snapshot_cache is not None and coverage is not None
    prefix_signatures: List = (list(restored.signatures or ())
                               if restored is not None else [])
    hit_depth_bound = False
    completing_randomly = False
    completion_chooser: Optional[Chooser] = None
    violation: Optional[PropertyViolation] = None
    crash: Optional[BaseException] = None
    abort_reason: Optional[str] = None
    outcome = Outcome.TERMINATED
    divergence = None
    algo_state = (getattr(policy, "algorithm_state", None)
                  if observer is not None else None)
    if observer is not None:
        observer.execution_started()

    def current_chooser() -> Chooser:
        return completion_chooser if completing_randomly else chooser

    def data_choice_handler(n: int) -> int:
        nonlocal pnode
        if timers is not None:
            t0 = perf_counter()
            index = current_chooser().pick("data", n)
            timers.add("schedule", perf_counter() - t0)
        else:
            index = current_chooser().pick("data", n)
        if not completing_randomly:
            decisions.append(Decision("data", index, n, index))
            if profiler is not None:
                pnode = profiler.descend(pnode, index)
            if observer is not None:
                observer.decision(steps, "data", index, n, index)
        return index

    if hasattr(instance, "data_choice_handler"):
        instance.data_choice_handler = data_choice_handler

    name_cache: dict = {}

    def thread_name(tid: object) -> str:
        name = name_cache.get(tid)
        if name is None:
            getter = getattr(instance, "task", None)
            if getter is not None:
                try:
                    name = getter(tid).name
                except Exception:  # noqa: BLE001 - lookup is cosmetic
                    name = str(tid)
            else:
                name = str(tid)
            name_cache[tid] = name
        return name

    while True:
        if deadline is not None and perf_counter() > deadline:
            outcome = Outcome.ABORTED
            abort_reason = (
                f"execution exceeded its "
                f"{config.execution_budget_seconds:g}s wall-clock budget"
            )
            if observer is not None:
                observer.execution_aborted(steps, abort_reason)
            break
        if (snapshot_cache is not None and not completing_randomly
                and steps > 0 and steps % snapshot_cache.interval == 0):
            # Capture BEFORE recording this state's coverage signature:
            # the stored signatures then cover states 0..steps-1, and the
            # resumed loop records state ``steps`` itself — totals match a
            # full replay exactly.
            t0 = perf_counter() if timers is not None else 0.0
            snapshot_cache.capture(
                decisions=decisions,
                steps=steps,
                policy=policy,
                preemptions=preemptions,
                yields=yields,
                last_tid=last_tid,
                last_was_yield=last_was_yield,
                trace=trace,
                signatures=(prefix_signatures if track_signatures else None),
            )
            if timers is not None:
                elapsed = perf_counter() - t0
                timers.add("snapshot", elapsed)
                if observer is not None:
                    observer.snapshot_capture_timed(
                        elapsed, snapshot_cache.last_capture_bytes,
                        outcome=snapshot_cache.last_capture_outcome)
        if coverage is not None:
            if timers is not None:
                t0 = perf_counter()
                signature = instance.state_signature()
                coverage.record(signature)
                timers.add("hash", perf_counter() - t0)
            else:
                signature = instance.state_signature()
                coverage.record(signature)
            if track_signatures and not completing_randomly:
                prefix_signatures.append(signature)
        if pruner is not None and pruner(
            instance,
            PrunePoint(
                steps=steps,
                decisions=len(decisions),
                last_tid=last_tid,
                last_was_yield=last_was_yield,
                preemptions=preemptions,
            ),
        ):
            outcome = Outcome.VISITED_PRUNED
            break

        enabled = instance.enabled_threads()
        if not enabled:
            status = instance.status()
            outcome = (Outcome.TERMINATED if status is RunStatus.TERMINATED
                       else Outcome.DEADLOCK)
            break

        # Depth-bound handling (before extending the execution).
        if (config.depth_bound is not None and steps >= config.depth_bound
                and not completing_randomly):
            hit_depth_bound = True
            if config.on_depth_exceeded == "divergence":
                # Analyze at most the last half of the execution: the
                # prefix is ordinary progress, only the tail exhibits the
                # divergence.
                window = max(16, min(config.divergence_window, steps // 2))
                divergence = _temporal_verdict(instance) or classify_divergence(
                    trace,
                    window=window,
                    gs_schedule_threshold=config.gs_schedule_threshold,
                    observer=observer,
                )
                if observer is not None:
                    observer.divergence(divergence)
                outcome = Outcome.DIVERGENCE
                break
            if config.on_depth_exceeded == "prune":
                outcome = Outcome.DEPTH_PRUNED
                break
            if config.on_depth_exceeded == "random-completion":
                completing_randomly = True
                rng = completion_rng
                if rng is None:
                    # Derive the fallback from the recorded decision
                    # prefix: a bare Random(config.seed) here would hand
                    # every execution the *same* completion schedule,
                    # correlating the random tails across the search.
                    prefix = ",".join(str(d.index) for d in decisions)
                    rng = random.Random(f"{config.seed}|{prefix}")
                completion_chooser = RandomChooser(rng)
            else:
                raise ValueError(
                    f"unknown on_depth_exceeded mode "
                    f"{config.on_depth_exceeded!r}"
                )
        if (completing_randomly and config.depth_bound is not None
                and steps >= config.depth_bound + config.random_completion_cap):
            outcome = Outcome.DEPTH_PRUNED
            break

        if timers is not None:
            t0 = perf_counter()
            schedulable = policy.schedulable(enabled)
            timers.add("policy", perf_counter() - t0)
            if algo_state is not None:
                observer.priority_relation(algo_state.priority.edge_count())
        else:
            schedulable = policy.schedulable(enabled)
        if not schedulable:
            raise AssertionError(
                "schedulable set empty while threads are enabled — "
                "Theorem 3 broken (or a non-conforming policy)"
            )

        # ---- context bounding -----------------------------------------
        options = _sorted_options(schedulable)
        switch_costs_preemption = False
        if config.preemption_bound is not None and not completing_randomly:
            if last_tid is not None and last_tid in enabled and not last_was_yield:
                if last_tid in schedulable:
                    switch_costs_preemption = True
                elif config.count_fairness_preemptions:
                    switch_costs_preemption = True  # ablation mode
                # else: fairness-forced switch — free, per Section 4.
            if switch_costs_preemption and preemptions >= config.preemption_bound:
                if last_tid in schedulable:
                    options = [last_tid]
                    switch_costs_preemption = False
                else:
                    # Ablation corner: every available choice would exceed
                    # the bound; the execution falls outside the search.
                    outcome = Outcome.DEPTH_PRUNED
                    hit_depth_bound = False
                    break

        if timers is not None:
            t0 = perf_counter()
            index = current_chooser().pick("thread", len(options))
            timers.add("schedule", perf_counter() - t0)
        else:
            index = current_chooser().pick("thread", len(options))
        if not completing_randomly:
            decisions.append(Decision("thread", index, len(options),
                                      options[index]))
            if profiler is not None:
                pnode = profiler.descend(pnode, index)
            if observer is not None:
                observer.decision(steps, "thread", index, len(options),
                                  options[index], len(schedulable),
                                  len(enabled))
        tid = options[index]
        if switch_costs_preemption and tid != last_tid:
            preemptions += 1
            if observer is not None:
                observer.preemption(steps, last_tid, tid, preemptions)

        t0 = perf_counter() if timers is not None else 0.0
        try:
            info = instance.step(tid)
            for monitor in config.monitors:
                monitor(instance)
            for local_monitor in getattr(instance, "monitors", ()):
                local_monitor()
            for temporal in getattr(instance, "temporal_monitors", ()):
                temporal.observe()
        except ExecutionHung as exc:
            outcome = Outcome.ABORTED
            abort_reason = str(exc)
            trace.append(TraceStep(tid, thread_name(tid), f"⌛ {exc}", False,
                                   enabled))
            # The faulting transition counts, same as every other terminal
            # path: the thread was scheduled and (partially) executed.
            steps += 1
            if timers is not None:
                timers.add("execute", perf_counter() - t0)
            if observer is not None:
                observer.execution_aborted(steps, abort_reason)
            break
        except TaskCrash as exc:
            if not config.capture_crashes:
                # Legacy behavior: a crashing task is a property violation
                # (TaskCrash subclasses PropertyViolation).
                violation = exc
                outcome = Outcome.VIOLATION
                trace.append(TraceStep(tid, thread_name(tid), f"† {exc}",
                                       False, enabled))
                steps += 1
                if timers is not None:
                    timers.add("execute", perf_counter() - t0)
                if observer is not None:
                    observer.violation(steps, str(exc))
                break
            crash = exc
            outcome = Outcome.CRASHED
            trace.append(TraceStep(tid, thread_name(tid), f"✗ crash: {exc}",
                                   False, enabled))
            steps += 1
            if timers is not None:
                timers.add("execute", perf_counter() - t0)
            break
        except PropertyViolation as exc:
            violation = exc
            outcome = Outcome.VIOLATION
            trace.append(TraceStep(tid, thread_name(tid), f"† {exc}", False,
                                   enabled))
            steps += 1
            if timers is not None:
                timers.add("execute", perf_counter() - t0)
            if observer is not None:
                observer.violation(steps, str(exc))
            break
        except Exception as exc:  # noqa: BLE001 - quarantine boundary
            if not config.capture_crashes:
                raise
            crash = exc
            outcome = Outcome.CRASHED
            trace.append(TraceStep(tid, thread_name(tid), f"✗ crash: {exc}",
                                   False, enabled))
            steps += 1
            if timers is not None:
                timers.add("execute", perf_counter() - t0)
            break

        if timers is not None:
            timers.add("execute", perf_counter() - t0)
        policy.observe_step(info)
        trace.append(TraceStep(tid, thread_name(tid), info.operation,
                               info.yielded, enabled))
        steps += 1
        last_tid = tid
        last_was_yield = info.yielded
        if observer is not None and info.yielded:
            yields += 1
        if profiler is not None:
            # Attribute the whole iteration (policy, chooser, step,
            # bookkeeping) to the node addressed by the decisions so far.
            now = perf_counter()
            profiler.add_step(pnode, now - pmark)
            pmark = now

    if not config.keep_instance:
        closer = getattr(instance, "close", None)
        if closer is not None:
            closer()
    if profiler is not None:
        # Terminal remainder: classification, the breaking iteration's
        # partial work and instance teardown land on the final node, so
        # the tree total tracks the execution's wall time.
        profiler.finish_execution(pnode, perf_counter() - pmark)
    completed_randomly = completing_randomly and outcome in (
        Outcome.TERMINATED, Outcome.DEADLOCK)
    result = ExecutionResult(
        outcome=outcome,
        decisions=decisions,
        steps=steps,
        preemptions=preemptions,
        violation=violation,
        divergence=divergence,
        trace=tuple(trace),
        hit_depth_bound=hit_depth_bound,
        completed_randomly=completed_randomly,
        crash=crash,
        abort_reason=abort_reason,
    )
    if config.keep_instance:
        result.final_instance = instance
    if observer is not None:
        guide = getattr(chooser, "guide", None)
        if guide:
            # Prefix transitions re-executed through the full engine loop
            # (the hot-path cost the snapshot cache attacks); tracked even
            # with the cache off so benchmarks can report the reduction.
            limit = min(len(guide), len(decisions))
            replayed = sum(
                1 for d in decisions[:limit] if d.kind == "thread")
            if restored is not None:
                replayed -= restored.steps
            observer.prefix_replayed(max(0, replayed))
        observer.execution_finished(result, yields=yields)
    return result
