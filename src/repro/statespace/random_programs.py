"""Random finite-state programs for property-based testing.

Generates small :func:`~repro.statespace.transition_system.pc_program`
systems from a seed: per-thread instruction tables over a bounded shared
variable, with random guards, effects, branches and yield placement.
Property tests draw seeds with hypothesis and validate the paper's
theorems against the generated systems.

Two generators:

* :func:`random_system` — arbitrary programs (may deadlock, livelock,
  starve; good for testing the *mechanism*).
* :func:`random_good_samaritan_system` — programs that structurally
  satisfy the good-samaritan property: every loop of every thread
  contains a yield.  Built by making every *backward* pc jump a yielding
  instruction, so any infinite thread-local path yields infinitely often.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.statespace.transition_system import TransitionSystem, pc_program


def _random_effect(rng: random.Random, domain: int):
    table = tuple(rng.randrange(domain) for _ in range(domain))
    return lambda shared: table[shared]


def _random_guard(rng: random.Random, domain: int, always_prob: float):
    if rng.random() < always_prob:
        return lambda shared: True
    allowed = frozenset(
        value for value in range(domain) if rng.random() < 0.6
    )
    if not allowed:
        allowed = frozenset({rng.randrange(domain)})
    return lambda shared: shared in allowed


def _random_next_pc(rng: random.Random, domain: int, n_pcs: int, pc: int,
                    allow_backward: bool) -> object:
    def pick() -> int:
        if allow_backward:
            return rng.randrange(n_pcs + 1)  # n_pcs = terminated
        return rng.randrange(pc + 1, n_pcs + 1)

    if rng.random() < 0.3:  # branch on the shared value
        table = tuple(pick() for _ in range(domain))
        return lambda shared: table[shared]
    return pick()


def random_system(
    seed: int,
    *,
    n_threads: int = 2,
    n_pcs: int = 3,
    domain: int = 3,
    yield_prob: float = 0.3,
    name: str = "random",
) -> TransitionSystem:
    """An arbitrary small multithreaded program derived from ``seed``."""
    rng = random.Random(seed)
    tables: Dict[str, Tuple] = {}
    for index in range(n_threads):
        rows: List[Tuple] = []
        for pc in range(n_pcs):
            rows.append((
                _random_guard(rng, domain, always_prob=0.5),
                _random_effect(rng, domain),
                _random_next_pc(rng, domain, n_pcs, pc, allow_backward=True),
                rng.random() < yield_prob,
            ))
        tables[f"T{index}"] = tuple(rows)
    return pc_program(f"{name}({seed})", 0, tables)


def random_good_samaritan_system(
    seed: int,
    *,
    n_threads: int = 2,
    n_pcs: int = 3,
    domain: int = 3,
    name: str = "random-gs",
) -> TransitionSystem:
    """A random program satisfying GS by construction.

    Instructions either move strictly forward (eventually terminating the
    thread) or are yielding instructions (which may jump anywhere).  Every
    cycle in a thread's control flow therefore contains a yield, so any
    thread scheduled infinitely often yields infinitely often.  Guards are
    always-true: threads never block, so the GS premise "scheduled
    infinitely often" is within the scheduler's control alone.
    """
    rng = random.Random(seed)
    tables: Dict[str, Tuple] = {}
    for index in range(n_threads):
        rows: List[Tuple] = []
        for pc in range(n_pcs):
            yielding = rng.random() < 0.5
            rows.append((
                lambda shared: True,
                _random_effect(rng, domain),
                _random_next_pc(rng, domain, n_pcs, pc,
                                allow_backward=yielding),
                yielding,
            ))
        tables[f"T{index}"] = tuple(rows)
    return pc_program(f"{name}({seed})", 0, tables)
