"""Random finite-state programs for property-based testing.

Generates small :func:`~repro.statespace.transition_system.pc_program`
systems from a seed: per-thread instruction tables over a bounded shared
variable, with random guards, effects, branches and yield placement.
Property tests draw seeds with hypothesis and validate the paper's
theorems against the generated systems.

Three generators:

* :func:`random_system` — arbitrary programs (may deadlock, livelock,
  starve; good for testing the *mechanism*).
* :func:`random_good_samaritan_system` — programs that structurally
  satisfy the good-samaritan property: every loop of every thread
  contains a yield.  Built by making every *backward* pc jump a yielding
  instruction, so any infinite thread-local path yields infinitely often.
* :func:`random_partitioned_system` — programs whose shared state is a
  tuple of independent variables and whose every instruction reads and
  writes exactly one of them, declared as its resource footprint.  The
  declarations are honest by construction, so partial-order strategies
  get real, sound commutativity to exploit — the substrate of the DPOR
  soundness properties.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.statespace.transition_system import TransitionSystem, pc_program


def _random_effect(rng: random.Random, domain: int):
    table = tuple(rng.randrange(domain) for _ in range(domain))
    return lambda shared: table[shared]


def _random_guard(rng: random.Random, domain: int, always_prob: float):
    if rng.random() < always_prob:
        return lambda shared: True
    allowed = frozenset(
        value for value in range(domain) if rng.random() < 0.6
    )
    if not allowed:
        allowed = frozenset({rng.randrange(domain)})
    return lambda shared: shared in allowed


def _random_next_pc(rng: random.Random, domain: int, n_pcs: int, pc: int,
                    allow_backward: bool) -> object:
    def pick() -> int:
        if allow_backward:
            return rng.randrange(n_pcs + 1)  # n_pcs = terminated
        return rng.randrange(pc + 1, n_pcs + 1)

    if rng.random() < 0.3:  # branch on the shared value
        table = tuple(pick() for _ in range(domain))
        return lambda shared: table[shared]
    return pick()


def random_system(
    seed: int,
    *,
    n_threads: int = 2,
    n_pcs: int = 3,
    domain: int = 3,
    yield_prob: float = 0.3,
    name: str = "random",
) -> TransitionSystem:
    """An arbitrary small multithreaded program derived from ``seed``."""
    rng = random.Random(seed)
    tables: Dict[str, Tuple] = {}
    for index in range(n_threads):
        rows: List[Tuple] = []
        for pc in range(n_pcs):
            rows.append((
                _random_guard(rng, domain, always_prob=0.5),
                _random_effect(rng, domain),
                _random_next_pc(rng, domain, n_pcs, pc, allow_backward=True),
                rng.random() < yield_prob,
            ))
        tables[f"T{index}"] = tuple(rows)
    return pc_program(f"{name}({seed})", 0, tables)


def random_partitioned_system(
    seed: int,
    *,
    n_threads: int = 3,
    n_pcs: int = 3,
    n_vars: int = 3,
    domain: int = 2,
    yield_prob: float = 0.2,
    always_prob: float = 0.7,
    name: str = "random-part",
) -> TransitionSystem:
    """A random program with honest per-instruction resource footprints.

    The shared state is a tuple of ``n_vars`` variables, each over
    ``range(domain)``.  Every instruction is *confined* to one variable:
    its guard, effect and branch target read only that variable, and its
    footprint declaration names exactly that variable.  Two instructions
    on different variables therefore genuinely commute — the declarations
    the DPOR race analysis consumes are sound by construction, never by
    trust.

    Forward-only control flow (``allow_backward=False``) keeps the state
    space finite without a depth bound, so exhaustive strategies
    terminate and ground-truth comparison is exact.
    """
    rng = random.Random(seed)
    tables: Dict[str, Tuple] = {}
    for index in range(n_threads):
        rows: List[Tuple] = []
        for pc in range(n_pcs):
            var = rng.randrange(n_vars)
            guard_v = _random_guard(rng, domain, always_prob=always_prob)
            effect_v = _random_effect(rng, domain)
            next_pc_v = _random_next_pc(rng, domain, n_pcs, pc,
                                        allow_backward=False)

            def guard(shared, var=var, guard_v=guard_v):
                return guard_v(shared[var])

            def effect(shared, var=var, effect_v=effect_v):
                return tuple(
                    effect_v(value) if position == var else value
                    for position, value in enumerate(shared)
                )

            if callable(next_pc_v):
                def next_pc(shared, var=var, next_pc_v=next_pc_v):
                    return next_pc_v(shared[var])
            else:
                next_pc = next_pc_v

            rows.append((
                guard,
                effect,
                next_pc,
                rng.random() < yield_prob,
                (f"v{var}",),
            ))
        tables[f"T{index}"] = tuple(rows)
    initial = tuple(0 for _ in range(n_vars))
    return pc_program(f"{name}({seed})", initial, tables)


def random_good_samaritan_system(
    seed: int,
    *,
    n_threads: int = 2,
    n_pcs: int = 3,
    domain: int = 3,
    name: str = "random-gs",
) -> TransitionSystem:
    """A random program satisfying GS by construction.

    Instructions either move strictly forward (eventually terminating the
    thread) or are yielding instructions (which may jump anywhere).  Every
    cycle in a thread's control flow therefore contains a yield, so any
    thread scheduled infinitely often yields infinitely often.  Guards are
    always-true: threads never block, so the GS premise "scheduled
    infinitely often" is within the scheduler's control alone.
    """
    rng = random.Random(seed)
    tables: Dict[str, Tuple] = {}
    for index in range(n_threads):
        rows: List[Tuple] = []
        for pc in range(n_pcs):
            yielding = rng.random() < 0.5
            rows.append((
                lambda shared: True,
                _random_effect(rng, domain),
                _random_next_pc(rng, domain, n_pcs, pc,
                                allow_backward=yielding),
                yielding,
            ))
        tables[f"T{index}"] = tuple(rows)
    return pc_program(f"{name}({seed})", 0, tables)
