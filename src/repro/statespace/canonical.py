"""Heap canonicalization (Iosif 2001, reference [14] of the paper).

To avoid counting behaviorally equivalent heaps as distinct states, the
paper canonicalizes heaps before hashing.  We implement the standard
technique: traverse the object graph in a deterministic order and replace
object identities with first-visit indices, producing a hashable tree.

``canonicalize`` understands the built-in containers, dataclass-like
objects exposing ``state_signature()`` or ``__dict__``, and arbitrary
acyclic/cyclic object graphs (cycles become back-references).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Tuple

_ATOMIC_TYPES = (type(None), bool, int, float, complex, str, bytes, frozenset)


def canonicalize(value: Any) -> Hashable:
    """Return a hashable canonical form of ``value``.

    Two values that are structurally equal (same shape, same atoms, same
    sharing pattern) canonicalize to equal results regardless of object
    identities or dict insertion order.
    """
    return _canon(value, {}, [0])


def _canon(value: Any, seen: Dict[int, int], counter: list) -> Hashable:
    if isinstance(value, _ATOMIC_TYPES):
        return value
    oid = id(value)
    if oid in seen:
        return ("@ref", seen[oid])
    seen[oid] = counter[0]
    counter[0] += 1
    if isinstance(value, tuple):
        return ("tuple",) + tuple(_canon(v, seen, counter) for v in value)
    if isinstance(value, list):
        return ("list",) + tuple(_canon(v, seen, counter) for v in value)
    if isinstance(value, set):
        items = tuple(sorted((_canon(v, seen, counter) for v in value), key=repr))
        return ("set",) + items
    if isinstance(value, dict):
        items = []
        for key in sorted(value, key=repr):
            items.append((_canon(key, seen, counter),
                          _canon(value[key], seen, counter)))
        return ("dict",) + tuple(items)
    sig = getattr(value, "state_signature", None)
    if callable(sig):
        return (type(value).__name__, _canon(sig(), seen, counter))
    attrs = getattr(value, "__dict__", None)
    if attrs is not None:
        body = tuple(
            (name, _canon(attrs[name], seen, counter))
            for name in sorted(attrs)
            if not name.startswith("_")
        )
        return (type(value).__name__,) + body
    slots = getattr(type(value), "__slots__", None)
    if slots:
        body = tuple(
            (name, _canon(getattr(value, name), seen, counter))
            for name in sorted(slots)
            if not name.startswith("_") and hasattr(value, name)
        )
        return (type(value).__name__,) + body
    # Last resort: a stable type marker with the visit index.  Distinct
    # opaque objects in the same position canonicalize identically, which
    # errs toward merging states — acceptable for coverage counting.
    return (type(value).__name__, "@opaque")


def signature_hash(value: Any) -> int:
    """Hash of the canonical form (the paper's "state signature")."""
    return hash(canonicalize(value))
