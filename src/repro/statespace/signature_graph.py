"""Signature graphs: the explicit state graph of a replayable program.

The stateless checker never *needs* the state graph — that is the point
of the paper — but having it is invaluable for understanding and for
validating the dynamic results: this module extracts the graph of state
*signatures* by exhaustive (bounded) exploration with visited pruning,
annotating every node with its enabled and yielding thread sets.  On top
of it:

* :func:`find_livelock_candidates` — the **fair cycles** of the graph,
  i.e. the static counterparts of the livelocks the fair scheduler
  detects dynamically (Theorem 6's witnesses);
* cross-validation of coverage measurements (the node set equals the
  stateful ground truth).

Precision caveats are those of the stateful search: the program's
signature plus pending operations must determine behavior (see
docs/internals.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.core.model import Program
from repro.core.policies import NonfairPolicy
from repro.engine.executor import ExecutorConfig, GuidedChooser, run_execution
from repro.engine.strategies.base import next_dfs_guide

Sig = Hashable
Tid = Hashable

#: One transition of a cycle: (source signature, thread scheduled).
CycleStep = Tuple[Sig, Tid]


@dataclass
class SignatureGraph:
    """Explicit graph over state signatures."""

    #: signature -> set of enabled thread names
    enabled: Dict[Sig, FrozenSet[str]] = field(default_factory=dict)
    #: signature -> set of thread names whose next transition yields
    yielding: Dict[Sig, FrozenSet[str]] = field(default_factory=dict)
    #: (signature, thread name) -> successor signature
    edges: Dict[Tuple[Sig, str], Sig] = field(default_factory=dict)
    initial: Optional[Sig] = None
    complete: bool = True

    @property
    def state_count(self) -> int:
        return len(self.enabled)

    def successors(self, sig: Sig) -> List[Tuple[str, Sig]]:
        return [(tid, to) for (frm, tid), to in self.edges.items()
                if frm == sig]

    # ------------------------------------------------------------------
    def is_fair_cycle(self, cycle: Sequence[CycleStep]) -> bool:
        """Paper definition: every thread enabled somewhere on the cycle
        is scheduled somewhere on the cycle."""
        scheduled = {tid for _, tid in cycle}
        enabled_somewhere: Set[str] = set()
        for sig, _ in cycle:
            enabled_somewhere.update(self.enabled.get(sig, ()))
        return enabled_somewhere <= scheduled

    def cycle_yield_count(self, cycle: Sequence[CycleStep]) -> int:
        """δ of the cycle: max per-thread yielding transitions."""
        per_thread: Dict[str, int] = {}
        for sig, tid in cycle:
            if tid in self.yielding.get(sig, ()):
                per_thread[tid] = per_thread.get(tid, 0) + 1
        return max(per_thread.values(), default=0)

    def cycles(self, *, limit: int = 10_000):
        """Elementary cycles as ``[(sig, thread), ...]`` sequences."""
        digraph = nx.DiGraph()
        labels: Dict[Tuple[Sig, Sig], List[str]] = {}
        digraph.add_nodes_from(self.enabled)
        for (frm, tid), to in self.edges.items():
            digraph.add_edge(frm, to)
            labels.setdefault((frm, to), []).append(tid)
        produced = 0
        for node_cycle in nx.simple_cycles(digraph):
            expansions: List[List[CycleStep]] = [[]]
            n = len(node_cycle)
            for i, sig in enumerate(node_cycle):
                succ = node_cycle[(i + 1) % n]
                expansions = [
                    steps + [(sig, tid)]
                    for steps in expansions
                    for tid in labels[(sig, succ)]
                ]
                if len(expansions) > limit:
                    expansions = expansions[:limit]
            for steps in expansions:
                yield steps
                produced += 1
                if produced >= limit:
                    return


def build_signature_graph(
    program: Program,
    *,
    depth_bound: int = 400,
    max_executions: Optional[int] = None,
) -> SignatureGraph:
    """Exhaustively explore (unfair, visited-pruned) and record the graph."""
    graph = SignatureGraph()
    visited_keys: Set[Hashable] = set()
    config = ExecutorConfig(depth_bound=depth_bound,
                            on_depth_exceeded="prune")
    executions = 0

    guide: Optional[list] = []
    while guide is not None:
        guide_len = len(guide)
        run_prev: List[Optional[Sig]] = [None]

        def pruner(instance, point) -> bool:
            # Nodes are *precise* signatures: the user abstraction can
            # alias states that differ in pending operations, which would
            # create artifact self-loops (misread as fair cycles).
            precise = getattr(instance, "precise_signature", None)
            sig = precise() if precise is not None \
                else instance.state_signature()
            if sig not in graph.enabled:
                enabled = instance.enabled_threads()
                names = {}
                getter = getattr(instance, "task", None)
                for tid in enabled:
                    names[tid] = (getter(tid).name if getter is not None
                                  else str(tid))
                graph.enabled[sig] = frozenset(names.values())
                graph.yielding[sig] = frozenset(
                    names[tid] for tid in enabled
                    if instance.is_yielding(tid)
                )
            if graph.initial is None:
                graph.initial = sig
            prev = run_prev[0]
            if prev is not None and point.last_tid is not None:
                getter = getattr(instance, "task", None)
                name = (getter(point.last_tid).name if getter is not None
                        else str(point.last_tid))
                graph.edges[(prev, name)] = sig
            run_prev[0] = sig

            if point.decisions < guide_len:
                visited_keys.add(sig)
                return False
            if sig in visited_keys:
                return True
            visited_keys.add(sig)
            return False

        record = run_execution(
            program, NonfairPolicy(), GuidedChooser(guide), config,
            pruner=pruner,
        )
        executions += 1
        if record.hit_depth_bound:
            graph.complete = False
        if max_executions is not None and executions >= max_executions:
            graph.complete = False
            break
        guide = next_dfs_guide(record.decisions)
    return graph


def find_livelock_candidates(
    program: Program,
    *,
    depth_bound: int = 400,
    cycle_limit: int = 2_000,
    max_executions: Optional[int] = 50_000,
) -> List[List[CycleStep]]:
    """Static livelock analysis: fair cycles of the signature graph.

    Every genuine livelock of a finite-state program shows up here as a
    fair cycle; conversely a fair cycle is an infinite fair execution
    once reached, i.e. fair nontermination.  (Subject to the signature
    precision caveat and the bounds.)
    """
    graph = build_signature_graph(program, depth_bound=depth_bound,
                                  max_executions=max_executions)
    return [cycle for cycle in graph.cycles(limit=cycle_limit)
            if graph.is_fair_cycle(cycle)]
