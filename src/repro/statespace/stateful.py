"""Stateful searches: ground truth for the coverage experiments.

Table 2's "Total States" column comes from "a stateful search of the state
space [storing] the state signatures in a hash table".  Two flavors here:

* :func:`reachable_states` — plain graph search over an explicit
  :class:`~repro.statespace.transition_system.TransitionSystem`.
* :func:`stateful_state_count` — replay-based DFS with visited-state
  pruning over *any* :class:`~repro.core.model.Program` (including VM
  programs), optionally under a context bound.  Pruning only fires past
  the guided prefix of each replay, which keeps the enumeration sound;
  with a preemption bound the visited key includes the scheduling context
  (last thread, yield flag, remaining budget) because reachability under
  a context bound is path-dependent.

Stateful pruning requires a *memoryless* policy (the nonfair scheduler):
with the fair policy the future depends on Algorithm 1's auxiliary state,
so pruning on the program state alone would be unsound.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import FrozenSet, Hashable, Optional, Set

from repro.core.model import Program
from repro.core.policies import NonfairPolicy, nonfair_policy
from repro.engine.executor import ExecutorConfig, GuidedChooser, run_execution
from repro.engine.results import Outcome
from repro.engine.strategies.base import next_dfs_guide
from repro.statespace.transition_system import TransitionSystem


@dataclass
class StatefulSearchResult:
    states: FrozenSet[Hashable]
    executions: int
    transitions: int
    complete: bool

    @property
    def count(self) -> int:
        return len(self.states)


@dataclass
class GroundTruth:
    """Full verdict inventory of a stateful search — the oracle the
    stateless strategies are validated against (tests/helpers.py)."""

    #: Every reachable state signature.
    states: FrozenSet[Hashable]
    #: Signatures of states with no enabled thread (normal termination
    #: and deadlocks together — "where executions can end").
    terminal_states: FrozenSet[Hashable]
    #: The deadlocked subset of ``terminal_states``.
    deadlock_states: FrozenSet[Hashable]
    #: Distinct violation messages (property failures and crashes).
    violation_messages: FrozenSet[str]
    executions: int
    transitions: int
    complete: bool

    @property
    def count(self) -> int:
        return len(self.states)


def reachable_states(
    system: TransitionSystem,
    *,
    max_states: int = 1_000_000,
) -> FrozenSet[Hashable]:
    """All reachable states of an explicit system (BFS on the graph)."""
    seen: Set[Hashable] = {system.initial}
    frontier = deque([system.initial])
    while frontier:
        state = frontier.popleft()
        for tid in system.enabled_threads(state):
            successor = system.next_state(state, tid)
            if successor not in seen:
                if len(seen) >= max_states:
                    raise RuntimeError(
                        f"state space exceeds max_states={max_states}"
                    )
                seen.add(successor)
                frontier.append(successor)
    return frozenset(seen)


def stateful_search(
    program: Program,
    *,
    preemption_bound: Optional[int] = None,
    depth_bound: Optional[int] = None,
    max_executions: Optional[int] = None,
) -> GroundTruth:
    """Stateful enumeration with full verdict bookkeeping.

    Same walk as :func:`stateful_state_count`, additionally collecting
    the terminal/deadlock state signatures and the distinct violation
    messages — everything the coverage oracle compares a stateless
    search against.
    """
    states: Set[Hashable] = set()
    terminal: Set[Hashable] = set()
    deadlocked: Set[Hashable] = set()
    violations: Set[str] = set()
    visited_keys: Set[Hashable] = set()
    executions = 0
    transitions = 0
    config = ExecutorConfig(
        depth_bound=depth_bound,
        on_depth_exceeded="prune",
        preemption_bound=preemption_bound,
        keep_instance=True,
    )

    guide: Optional[list] = []
    complete = True
    while guide is not None:
        guide_len = len(guide)

        def pruner(instance, point) -> bool:
            states.add(instance.state_signature())
            # Prune on the *precise* signature: the user abstraction may
            # identify states that differ in pending operations (e.g. a
            # task's implicit start transition), and pruning on it would
            # cut live branches.
            precise = getattr(instance, "precise_signature", None)
            signature = precise() if precise is not None else instance.state_signature()
            if preemption_bound is not None:
                budget = preemption_bound - point.preemptions
                key = (signature, point.last_tid, point.last_was_yield, budget)
            else:
                key = signature
            if point.decisions < guide_len:
                # Strictly inside the guided prefix: record, never prune
                # (the replay must reach its frontier).  The state *after*
                # the final guided decision is new territory — that final
                # decision is the freshly bumped branch — so pruning is
                # allowed from there on.
                visited_keys.add(key)
                return False
            if key in visited_keys:
                return True
            visited_keys.add(key)
            return False

        record = run_execution(
            program,
            NonfairPolicy(),
            GuidedChooser(guide),
            config,
            pruner=pruner,
        )
        executions += 1
        transitions += record.steps
        if record.outcome in (Outcome.TERMINATED, Outcome.DEADLOCK):
            signature = record.final_instance.state_signature()
            terminal.add(signature)
            if record.outcome is Outcome.DEADLOCK:
                deadlocked.add(signature)
        elif record.outcome is Outcome.VIOLATION:
            violations.add(str(record.violation))
        if max_executions is not None and executions >= max_executions:
            complete = False
            break
        guide = next_dfs_guide(record.decisions)

    return GroundTruth(
        states=frozenset(states),
        terminal_states=frozenset(terminal),
        deadlock_states=frozenset(deadlocked),
        violation_messages=frozenset(violations),
        executions=executions,
        transitions=transitions,
        complete=complete,
    )


def stateful_state_count(
    program: Program,
    *,
    preemption_bound: Optional[int] = None,
    depth_bound: Optional[int] = None,
    max_executions: Optional[int] = None,
) -> StatefulSearchResult:
    """Enumerate reachable state signatures of a replayable program.

    The program must expose a *precise* ``state_signature`` (two states
    with equal signatures must have identical future behavior), as the
    paper's manually instrumented examples do.
    """
    truth = stateful_search(
        program,
        preemption_bound=preemption_bound,
        depth_bound=depth_bound,
        max_executions=max_executions,
    )
    return StatefulSearchResult(
        states=truth.states,
        executions=truth.executions,
        transitions=truth.transitions,
        complete=truth.complete,
    )
