"""Run explicit transition systems under the stateless engine.

The adapter wraps a :class:`~repro.statespace.transition_system.TransitionSystem`
as a :class:`~repro.core.model.Program`, so every strategy and policy —
including Algorithm 1 — applies unchanged to explicit models.  The
instance's signature is the state value itself, which makes coverage
measurement exact.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Optional, Tuple

from repro.core.model import Program, ProgramInstance, StepInfo
from repro.statespace.transition_system import TransitionSystem


class TransitionSystemInstance(ProgramInstance):
    """One execution of an explicit transition system."""

    def __init__(self, system: TransitionSystem) -> None:
        self._system = system
        self.state = system.initial

    def thread_ids(self) -> FrozenSet:
        return self._system.thread_ids()

    def enabled_threads(self) -> FrozenSet:
        return self._system.enabled_threads(self.state)

    def is_yielding(self, tid) -> bool:
        return self._system.is_yielding(self.state, tid)

    def has_live_threads(self) -> bool:
        # Explicit systems do not distinguish "finished" from "disabled";
        # a state with no enabled thread is simply terminal (the paper's
        # deadlock/termination distinction is a runtime-level notion).
        return False

    def step(self, tid) -> StepInfo:
        before = self.enabled_threads()
        yielded = self._system.is_yielding(self.state, tid)
        self.state = self._system.next_state(self.state, tid)
        return StepInfo(
            tid=tid,
            enabled_before=before,
            enabled_after=self.enabled_threads(),
            yielded=yielded,
            operation=f"{tid}@{self.state!r}",
        )

    def state_signature(self) -> Hashable:
        return self.state

    # -- partial-order reduction hooks ---------------------------------
    def pending_resources(self, tid) -> Optional[Tuple]:
        """Declared footprint of ``tid``'s next transition (None when the
        thread declares none — conservatively dependent with everything).
        Consulted by the DPOR strategy's race analysis."""
        return self._system.pending_resources(self.state, tid)

    def live_threads(self) -> FrozenSet:
        """Threads that may still take a step in some extension.

        Explicit systems report no-enabled as TERMINATED even when
        threads are merely blocked, so partial-order strategies must ask
        here — a blocked-but-live thread's pending transition still
        participates in race analysis.
        """
        return self._system.live_threads(self.state)


class TransitionSystemProgram(Program):
    """Program factory over a transition system (instances share the pure
    system object; only the current state is per-instance)."""

    def __init__(self, system: TransitionSystem) -> None:
        self._system = system
        self.name = system.name

    def instantiate(self) -> TransitionSystemInstance:
        return TransitionSystemInstance(self._system)

    @property
    def system(self) -> TransitionSystem:
        return self._system
