"""Explicit finite-state multithreaded transition systems.

This is the paper's Section 3 formalism made concrete: a program is a set
of threads, each with a deterministic transition function over a shared
state value, plus the two predicates ``enabled(t)`` and ``yield(t)``.
Used for theory validation (Theorems 1–6), for the Figure 3 state-space
diagram, and as the substrate of the hypothesis-generated random programs.

States must be hashable values; transition functions must be pure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Hashable, Tuple

State = Hashable
Tid = Hashable


@dataclass(frozen=True)
class ThreadSpec:
    """One thread: guard, transition and yield predicate over states."""

    enabled: Callable[[State], bool]
    step: Callable[[State], State]
    #: The paper's ``yield(t)``: executing the thread from this state is a
    #: yielding transition.  Only consulted when ``enabled`` holds.
    is_yield: Callable[[State], bool] = staticmethod(lambda state: False)


class TransitionSystem:
    """A finite-state multithreaded program with explicit transitions."""

    def __init__(self, name: str, initial: State,
                 threads: Dict[Tid, ThreadSpec]) -> None:
        if not threads:
            raise ValueError("a transition system needs at least one thread")
        self.name = name
        self.initial = initial
        self.threads = dict(threads)

    # ------------------------------------------------------------------
    def thread_ids(self) -> FrozenSet[Tid]:
        return frozenset(self.threads)

    def enabled_threads(self, state: State) -> FrozenSet[Tid]:
        return frozenset(
            tid for tid, spec in self.threads.items() if spec.enabled(state)
        )

    def is_yielding(self, state: State, tid: Tid) -> bool:
        spec = self.threads[tid]
        return spec.enabled(state) and spec.is_yield(state)

    def next_state(self, state: State, tid: Tid) -> State:
        spec = self.threads[tid]
        if not spec.enabled(state):
            raise ValueError(f"thread {tid!r} is not enabled in {state!r}")
        return spec.step(state)

    def __repr__(self) -> str:
        return f"<TransitionSystem {self.name} threads={sorted(map(repr, self.threads))}>"


def pc_program(
    name: str,
    shared_initial: Hashable,
    thread_tables: Dict[Tid, Tuple],
) -> TransitionSystem:
    """Build a transition system from per-thread instruction tables.

    The state is ``(shared, pcs)`` where ``pcs`` maps thread id to program
    counter.  Each thread's table is a tuple of instructions, one per pc;
    an instruction is ``(guard, effect, next_pc, is_yield)`` with

    * ``guard(shared) -> bool`` — thread enabled at this pc iff true;
    * ``effect(shared) -> shared`` — the state update;
    * ``next_pc`` — either an int, or a callable ``(shared) -> int`` for
      branches (evaluated on the *pre*-effect shared value);
    * ``is_yield`` — whether executing this instruction yields.

    A pc equal to ``len(table)`` means the thread has terminated (never
    enabled).  This is the format the random-program generator emits.
    """
    tids = tuple(thread_tables)

    def unpack(state):
        shared, pcs = state
        return shared, dict(zip(tids, pcs))

    def make_spec(tid: Tid, table: Tuple) -> ThreadSpec:
        def enabled(state) -> bool:
            shared, pcs = unpack(state)
            pc = pcs[tid]
            if pc >= len(table):
                return False
            guard = table[pc][0]
            return bool(guard(shared))

        def is_yield(state) -> bool:
            shared, pcs = unpack(state)
            pc = pcs[tid]
            if pc >= len(table):
                return False
            return bool(table[pc][3])

        def step(state):
            shared, pcs = unpack(state)
            pc = pcs[tid]
            _, effect, next_pc, _ = table[pc]
            new_shared = effect(shared)
            pcs[tid] = next_pc(shared) if callable(next_pc) else next_pc
            return (new_shared, tuple(pcs[t] for t in tids))

        return ThreadSpec(enabled=enabled, step=step, is_yield=is_yield)

    threads = {tid: make_spec(tid, table) for tid, table in thread_tables.items()}
    initial = (shared_initial, tuple(0 for _ in tids))
    return TransitionSystem(name, initial, threads)


def figure3_system() -> TransitionSystem:
    """The Figure 3 program as an explicit transition system.

    States are the pairs shown in the paper's diagram: ``(pc_t, pc_u)``
    with the shared variable folded into the pcs (``x`` becomes 1 exactly
    when ``t`` moves from ``a`` to ``b``).
    """
    # shared = x; thread t: a -> b;  thread u: c -> (c|d) -> c.
    return pc_program(
        "figure3",
        0,
        {
            "t": (
                # a: x := 1
                (lambda x: True, lambda x: 1, 1, False),
            ),
            "u": (
                # c: while (x != 1) — falls through to end when x == 1
                (lambda x: True, lambda x: x, lambda x: 2 if x == 1 else 1,
                 False),
                # d: yield(); back to c
                (lambda x: True, lambda x: x, 0, True),
            ),
        },
    )
