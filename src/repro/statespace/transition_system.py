"""Explicit finite-state multithreaded transition systems.

This is the paper's Section 3 formalism made concrete: a program is a set
of threads, each with a deterministic transition function over a shared
state value, plus the two predicates ``enabled(t)`` and ``yield(t)``.
Used for theory validation (Theorems 1–6), for the Figure 3 state-space
diagram, and as the substrate of the hypothesis-generated random programs.

States must be hashable values; transition functions must be pure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Hashable, Optional, Tuple

State = Hashable
Tid = Hashable


@dataclass(frozen=True)
class ThreadSpec:
    """One thread: guard, transition and yield predicate over states."""

    enabled: Callable[[State], bool]
    step: Callable[[State], State]
    #: The paper's ``yield(t)``: executing the thread from this state is a
    #: yielding transition.  Only consulted when ``enabled`` holds.
    is_yield: Callable[[State], bool] = staticmethod(lambda state: False)
    #: Resource footprint of the thread's next transition from a state —
    #: a tuple of hashable resource ids (disjoint footprints ⇒ the
    #: transitions commute).  ``None`` means *undeclared*: partial-order
    #: strategies must treat the thread as dependent with everything.
    #: The declaration is a soundness contract, not a hint — two
    #: transitions with disjoint declared footprints must genuinely
    #: commute from every state where both are enabled.
    resources: Optional[Callable[[State], Tuple]] = None
    #: Whether the thread is *finished* (can never become enabled again
    #: from this state, in any extension).  ``None`` means unknown —
    #: partial-order strategies must conservatively assume the thread
    #: may still act.  A disabled-but-live thread's pending transition
    #: participates in race analysis; a finished thread's does not.
    live: Optional[Callable[[State], bool]] = None


class TransitionSystem:
    """A finite-state multithreaded program with explicit transitions."""

    def __init__(self, name: str, initial: State,
                 threads: Dict[Tid, ThreadSpec]) -> None:
        if not threads:
            raise ValueError("a transition system needs at least one thread")
        self.name = name
        self.initial = initial
        self.threads = dict(threads)

    # ------------------------------------------------------------------
    def thread_ids(self) -> FrozenSet[Tid]:
        return frozenset(self.threads)

    def enabled_threads(self, state: State) -> FrozenSet[Tid]:
        return frozenset(
            tid for tid, spec in self.threads.items() if spec.enabled(state)
        )

    def is_yielding(self, state: State, tid: Tid) -> bool:
        spec = self.threads[tid]
        return spec.enabled(state) and spec.is_yield(state)

    def next_state(self, state: State, tid: Tid) -> State:
        spec = self.threads[tid]
        if not spec.enabled(state):
            raise ValueError(f"thread {tid!r} is not enabled in {state!r}")
        return spec.step(state)

    def pending_resources(self, state: State, tid: Tid) -> Optional[Tuple]:
        """Declared footprint of ``tid``'s next transition, or None."""
        spec = self.threads[tid]
        if spec.resources is None:
            return None
        return spec.resources(state)

    def live_threads(self, state: State) -> FrozenSet[Tid]:
        """Threads that may still take a step in some extension.

        A thread with no ``live`` predicate is conservatively counted as
        live — claiming it finished when it could re-enable would hide
        its pending transition from partial-order race analysis.
        """
        return frozenset(
            tid for tid, spec in self.threads.items()
            if spec.live is None or spec.live(state)
        )

    def __repr__(self) -> str:
        return f"<TransitionSystem {self.name} threads={sorted(map(repr, self.threads))}>"


def pc_program(
    name: str,
    shared_initial: Hashable,
    thread_tables: Dict[Tid, Tuple],
) -> TransitionSystem:
    """Build a transition system from per-thread instruction tables.

    The state is ``(shared, pcs)`` where ``pcs`` maps thread id to program
    counter.  Each thread's table is a tuple of instructions, one per pc;
    an instruction is ``(guard, effect, next_pc, is_yield)`` or
    ``(guard, effect, next_pc, is_yield, resources)`` with

    * ``guard(shared) -> bool`` — thread enabled at this pc iff true;
    * ``effect(shared) -> shared`` — the state update;
    * ``next_pc`` — either an int, or a callable ``(shared) -> int`` for
      branches (evaluated on the *pre*-effect shared value);
    * ``is_yield`` — whether executing this instruction yields;
    * ``resources`` — optional footprint declaration for partial-order
      reduction: a tuple of resource ids, or ``(shared) -> tuple``.
      Omitted (4-tuple) means undeclared — the instruction is treated as
      dependent with everything.  Declaring a footprint asserts that the
      guard, effect and next_pc of this instruction read and write only
      the named resources.

    A pc equal to ``len(table)`` means the thread has terminated (never
    enabled).  This is the format the random-program generator emits.
    """
    tids = tuple(thread_tables)

    def unpack(state):
        shared, pcs = state
        return shared, dict(zip(tids, pcs))

    def make_spec(tid: Tid, table: Tuple) -> ThreadSpec:
        def enabled(state) -> bool:
            shared, pcs = unpack(state)
            pc = pcs[tid]
            if pc >= len(table):
                return False
            guard = table[pc][0]
            return bool(guard(shared))

        def is_yield(state) -> bool:
            shared, pcs = unpack(state)
            pc = pcs[tid]
            if pc >= len(table):
                return False
            return bool(table[pc][3])

        def step(state):
            shared, pcs = unpack(state)
            pc = pcs[tid]
            effect, next_pc = table[pc][1], table[pc][2]
            new_shared = effect(shared)
            pcs[tid] = next_pc(shared) if callable(next_pc) else next_pc
            return (new_shared, tuple(pcs[t] for t in tids))

        def resources(state):
            shared, pcs = unpack(state)
            pc = pcs[tid]
            if pc >= len(table) or len(table[pc]) < 5:
                return None
            declared = table[pc][4]
            return declared(shared) if callable(declared) else declared

        def live(state) -> bool:
            shared, pcs = unpack(state)
            return pcs[tid] < len(table)

        declares = any(len(instruction) >= 5 for instruction in table)
        return ThreadSpec(
            enabled=enabled, step=step, is_yield=is_yield,
            resources=resources if declares else None,
            live=live,
        )

    threads = {tid: make_spec(tid, table) for tid, table in thread_tables.items()}
    initial = (shared_initial, tuple(0 for _ in tids))
    return TransitionSystem(name, initial, threads)


def figure3_system() -> TransitionSystem:
    """The Figure 3 program as an explicit transition system.

    States are the pairs shown in the paper's diagram: ``(pc_t, pc_u)``
    with the shared variable folded into the pcs (``x`` becomes 1 exactly
    when ``t`` moves from ``a`` to ``b``).
    """
    # shared = x; thread t: a -> b;  thread u: c -> (c|d) -> c.
    return pc_program(
        "figure3",
        0,
        {
            "t": (
                # a: x := 1
                (lambda x: True, lambda x: 1, 1, False),
            ),
            "u": (
                # c: while (x != 1) — falls through to end when x == 1
                (lambda x: True, lambda x: x, lambda x: 2 if x == 1 else 1,
                 False),
                # d: yield(); back to c
                (lambda x: True, lambda x: x, 0, True),
            ),
        },
    )
