"""Explicit-state layer: transition systems, ground-truth search, cycles.

The checker proper is stateless; this subpackage exists for the parts of
the paper that reason *about* state spaces — the "Total States" columns of
Table 2 (a stateful search storing signatures in a hash table), the
fair/unfair cycle definitions behind Theorems 4–6, heap canonicalization,
and the random finite-state programs used by the property-based tests.
"""

from repro.statespace.adapter import (
    TransitionSystemInstance,
    TransitionSystemProgram,
)
from repro.statespace.canonical import canonicalize, signature_hash
from repro.statespace.cycles import (
    StateGraph,
    build_state_graph,
    cycle_yield_count,
    enumerate_cycles,
    find_fair_cycles,
    has_fair_cycle,
    is_fair_cycle,
)
from repro.statespace.random_programs import (
    random_good_samaritan_system,
    random_partitioned_system,
    random_system,
)
from repro.statespace.signature_graph import (
    SignatureGraph,
    build_signature_graph,
    find_livelock_candidates,
)
from repro.statespace.stateful import (
    GroundTruth,
    StatefulSearchResult,
    reachable_states,
    stateful_search,
    stateful_state_count,
)
from repro.statespace.transition_system import (
    ThreadSpec,
    TransitionSystem,
    figure3_system,
    pc_program,
)

__all__ = [
    "GroundTruth",
    "SignatureGraph",
    "StateGraph",
    "StatefulSearchResult",
    "build_signature_graph",
    "find_livelock_candidates",
    "ThreadSpec",
    "TransitionSystem",
    "TransitionSystemInstance",
    "TransitionSystemProgram",
    "build_state_graph",
    "canonicalize",
    "cycle_yield_count",
    "enumerate_cycles",
    "figure3_system",
    "find_fair_cycles",
    "has_fair_cycle",
    "is_fair_cycle",
    "pc_program",
    "random_good_samaritan_system",
    "random_partitioned_system",
    "random_system",
    "reachable_states",
    "signature_hash",
    "stateful_search",
    "stateful_state_count",
]
