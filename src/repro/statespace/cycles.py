"""State-graph construction and fair/unfair cycle analysis.

Implements the definitions behind Theorems 4–6: a cycle
``x0 -t0-> x1 ... xn -tn-> x0`` (distinct states) is **fair** iff every
thread enabled somewhere on the cycle is scheduled on the cycle; it is
**unfair** otherwise.  The **yield count** ``δ`` of a transition sequence
is the maximum, over threads, of the number of yielding transitions that
thread performs in it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterator, List, Sequence, Tuple

import networkx as nx

from repro.statespace.transition_system import TransitionSystem

State = Hashable
Tid = Hashable

#: One transition of a cycle: (source state, thread scheduled).
CycleStep = Tuple[State, Tid]


@dataclass
class StateGraph:
    """Explicit state graph of a transition system."""

    system: TransitionSystem
    states: FrozenSet[State]
    #: state -> tuple of (tid, successor, yielded)
    edges: Dict[State, Tuple[Tuple[Tid, State, bool], ...]]

    @property
    def state_count(self) -> int:
        return len(self.states)

    def successors(self, state: State) -> Tuple[Tuple[Tid, State, bool], ...]:
        return self.edges.get(state, ())


def build_state_graph(system: TransitionSystem,
                      max_states: int = 100_000) -> StateGraph:
    """BFS the full reachable state graph."""
    edges: Dict[State, Tuple[Tuple[Tid, State, bool], ...]] = {}
    seen = {system.initial}
    frontier = deque([system.initial])
    while frontier:
        state = frontier.popleft()
        outgoing: List[Tuple[Tid, State, bool]] = []
        for tid in sorted(system.enabled_threads(state), key=repr):
            successor = system.next_state(state, tid)
            yielded = system.is_yielding(state, tid)
            outgoing.append((tid, successor, yielded))
            if successor not in seen:
                if len(seen) >= max_states:
                    raise RuntimeError("state graph exceeds max_states")
                seen.add(successor)
                frontier.append(successor)
        edges[state] = tuple(outgoing)
    return StateGraph(system=system, states=frozenset(seen), edges=edges)


def enumerate_cycles(graph: StateGraph, *, limit: int = 10_000
                     ) -> Iterator[List[CycleStep]]:
    """Yield elementary cycles as ``[(state, tid), ...]`` sequences.

    Node cycles come from Johnson's algorithm (via networkx); each is
    expanded into every combination of thread labels realizing it.
    """
    digraph = nx.DiGraph()
    digraph.add_nodes_from(graph.states)
    labels: Dict[Tuple[State, State], List[Tid]] = {}
    for state, outgoing in graph.edges.items():
        for tid, successor, _ in outgoing:
            digraph.add_edge(state, successor)
            labels.setdefault((state, successor), []).append(tid)

    produced = 0
    for node_cycle in nx.simple_cycles(digraph):
        expansions: List[List[CycleStep]] = [[]]
        n = len(node_cycle)
        for i, state in enumerate(node_cycle):
            successor = node_cycle[(i + 1) % n]
            tids = labels[(state, successor)]
            expansions = [
                steps + [(state, tid)] for steps in expansions for tid in tids
            ]
            if len(expansions) > limit:
                expansions = expansions[:limit]
        for steps in expansions:
            yield steps
            produced += 1
            if produced >= limit:
                return


def threads_enabled_on_cycle(system: TransitionSystem,
                             cycle: Sequence[CycleStep]) -> FrozenSet[Tid]:
    enabled = set()
    for state, _ in cycle:
        enabled.update(system.enabled_threads(state))
    return frozenset(enabled)


def is_fair_cycle(system: TransitionSystem,
                  cycle: Sequence[CycleStep]) -> bool:
    """The paper's definition: every thread enabled somewhere on the cycle
    is also scheduled somewhere on the cycle."""
    scheduled = {tid for _, tid in cycle}
    return threads_enabled_on_cycle(system, cycle) <= scheduled


def cycle_yield_count(system: TransitionSystem,
                      cycle: Sequence[CycleStep]) -> int:
    """``δ(cycle)``: max over threads of their yielding transitions."""
    per_thread: Dict[Tid, int] = {}
    for state, tid in cycle:
        if system.is_yielding(state, tid):
            per_thread[tid] = per_thread.get(tid, 0) + 1
    return max(per_thread.values(), default=0)


def find_fair_cycles(system: TransitionSystem, *, limit: int = 10_000
                     ) -> List[List[CycleStep]]:
    """All (bounded) fair cycles — livelock candidates."""
    graph = build_state_graph(system)
    return [
        cycle for cycle in enumerate_cycles(graph, limit=limit)
        if is_fair_cycle(system, cycle)
    ]


def has_fair_cycle(system: TransitionSystem, *, limit: int = 10_000) -> bool:
    graph = build_state_graph(system)
    for cycle in enumerate_cycles(graph, limit=limit):
        if is_fair_cycle(system, cycle):
            return True
    return False
