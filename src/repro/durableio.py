"""The one atomic-write helper every durable artifact goes through.

Three near-identical tmp-write-then-``os.replace`` snippets used to
live in ``engine/persistence.py``, ``service/store.py``, and
``resilience/checkpoint.py`` — none of them fsynced, so a crash after
the rename could publish an empty or torn file, and a crash after a
successful-looking save could lose it entirely.  They are unified here
with the full durability dance:

1. write the payload to ``path.tmp`` (same directory, so the rename
   stays atomic);
2. ``fsync`` the temp file — the *contents* are on disk before the name
   points at them;
3. ``os.replace`` onto the destination — readers see either the old
   file or the complete new one, never a mixture;
4. ``fsync`` the containing directory — the *rename itself* is on disk,
   so kill -9 after return cannot roll the file back.

``durable=False`` skips both fsyncs for artifacts whose loss is
acceptable (they are rewritten every interval anyway) when the caller
prefers throughput.

Every step is a chaos fault point (``{label}.write`` / ``.fsync`` /
``.replace`` / ``.dirsync``) and is logged to the active
:class:`~repro.chaos.faults.WriteRecorder`, which is what lets the
torture suite replay every crash prefix of the physical sequence.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Union

from repro.chaos.faults import InjectedFault, fault_at, record_op

__all__ = ["atomic_write", "atomic_write_json", "atomic_write_text",
           "fsync_dir"]


def fsync_dir(directory: Path, *, label: str = "dir") -> None:
    """fsync a directory so renames/unlinks inside it are durable.

    Best-effort on platforms whose filesystems refuse directory fds
    (the ``OSError`` pass matches what SQLite and friends do).
    """
    fault_at(f"{label}.dirsync", path=str(directory))
    record_op("fsync_dir", str(directory))
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write(path: Union[str, Path], data: bytes, *,
                 durable: bool = True, label: str = "file") -> None:
    """Atomically (and, by default, durably) publish ``data`` at ``path``.

    ``label`` names the artifact in fault points and telemetry
    (``checkpoint``, ``job``, ``schedule``, ...).  Raises ``OSError``
    on real disk failure — callers that must survive ENOSPC catch it;
    :class:`InjectedFault` (a simulated crash) is never caught here.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")

    rule = fault_at(f"{label}.write", path=str(path))
    payload = data
    torn = False
    if rule is not None and rule.kind in ("torn-write", "short-write"):
        payload = data[: int(len(data) * rule.keep)]
        torn = rule.kind == "torn-write"

    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        os.write(fd, payload)
        record_op("write", str(tmp), payload)
        if torn:
            # Simulated kill mid-write: the temp file stays behind,
            # the destination is never touched.
            raise InjectedFault(f"torn write at {tmp}")
        if durable:
            drop = fault_at(f"{label}.fsync", path=str(path))
            if drop is None or drop.kind != "fsync-drop":
                os.fsync(fd)
                record_op("fsync", str(tmp))
    finally:
        os.close(fd)

    rule = fault_at(f"{label}.replace", path=str(path))
    if rule is not None and rule.kind == "replace-interrupted":
        raise InjectedFault(f"crash before replace of {path}")
    os.replace(tmp, path)
    record_op("replace", str(tmp), str(path))

    if durable:
        fsync_dir(path.parent, label=label)


def atomic_write_text(path: Union[str, Path], text: str, *,
                      durable: bool = True, label: str = "file") -> None:
    atomic_write(path, text.encode("utf-8"), durable=durable, label=label)


def atomic_write_json(path: Union[str, Path], obj, *, durable: bool = True,
                      label: str = "file", indent: int = 2,
                      sort_keys: bool = True) -> None:
    text = json.dumps(obj, indent=indent, sort_keys=sort_keys) + "\n"
    atomic_write(path, text.encode("utf-8"), durable=durable, label=label)
