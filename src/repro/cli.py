"""Command-line interface: ``python -m repro``.

Subcommands:

* ``check MODULE:FACTORY`` — model-check a program.  ``FACTORY`` is a
  zero-or-more-argument callable returning a
  :class:`~repro.core.model.Program`; positional factory arguments are
  given with ``-a`` (parsed as Python literals).
* ``replay REPRO_FILE MODULE:FACTORY`` — replay a saved counterexample.
* ``demo NAME`` — run a built-in workload demonstration.
* ``demos`` — list the built-in demonstrations.
* ``profile snapshots [MODULE:FACTORY]`` — snapshot-cache amortization
  report with an on/off verdict (docs/profiling.md).
* ``bench compare BASELINE CURRENT`` — diff two benchmark JSON files
  with noise tolerances; exits non-zero on regression.

Examples::

    python -m repro check repro.workloads.dining:dining_philosophers_livelock -a 2
    python -m repro demo dining-livelock
    python -m repro check mymodule:make_program --no-fairness --depth-bound 50
"""

from __future__ import annotations

import argparse
import ast
import importlib
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.checker import Checker
from repro.core.model import Program
from repro.engine.persistence import load_and_replay, save_schedule
from repro.engine.results import format_trace


def _demos() -> Dict[str, Callable[[], Program]]:
    from repro.workloads.ape import ape_program
    from repro.workloads.boundedbuffer import bounded_buffer_program
    from repro.workloads.coherence import coherence_program
    from repro.workloads.dining import (
        dining_philosophers,
        dining_philosophers_livelock,
    )
    from repro.workloads.lockfree import treiber_stack_program
    from repro.workloads.dryad_channels import dryad_pipeline
    from repro.workloads.promise import promise_program
    from repro.workloads.singularity import singularity_boot
    from repro.workloads.spinloop import spinloop, spinloop_no_yield
    from repro.workloads.workerpool import worker_pool
    from repro.workloads.wsq import work_stealing_queue

    return {
        "spinloop": spinloop,
        "spinloop-no-yield": spinloop_no_yield,
        "dining": lambda: dining_philosophers(2),
        "dining-livelock": lambda: dining_philosophers_livelock(2),
        "wsq": lambda: work_stealing_queue(items=1, stealers=1),
        "wsq-bug1": lambda: work_stealing_queue(items=1, stealers=1, bug=1),
        "promise-livelock": lambda: promise_program(2, stale_read_bug=True),
        "worker-pool-spin": lambda: worker_pool(tasks=1, workers=1),
        "dryad": lambda: dryad_pipeline(items=1, capacity=1, transforms=0),
        "ape": lambda: ape_program(items=1, workers=1),
        "singularity": lambda: singularity_boot(apps=1),
        "bounded-buffer": lambda: bounded_buffer_program(items=2,
                                                         consumers=2),
        "treiber": lambda: treiber_stack_program(items=1, poppers=2),
        "msi-coherence": lambda: coherence_program(),
        "msi-livelock": lambda: coherence_program(
            [[("w", 10)], [("w", 20)]], bug="upgrade-livelock"),
    }


def _resolve_factory(spec: str) -> Callable[..., Program]:
    if ":" not in spec:
        raise SystemExit(
            f"program spec must look like 'package.module:factory', "
            f"got {spec!r}"
        )
    module_name, _, attr = spec.partition(":")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise SystemExit(f"cannot import {module_name!r}: {exc}") from exc
    factory = getattr(module, attr, None)
    if factory is None:
        raise SystemExit(f"{module_name!r} has no attribute {attr!r}")
    return factory


def _build_program(spec: str, raw_args: List[str]) -> Program:
    factory = _resolve_factory(spec)
    args = []
    for raw in raw_args:
        try:
            args.append(ast.literal_eval(raw))
        except (ValueError, SyntaxError):
            args.append(raw)  # keep as string
    if not callable(factory):
        raise SystemExit(f"{spec} is not callable")
    result = factory(*args)
    if not isinstance(result, Program):
        raise SystemExit(
            f"{spec} returned {type(result).__name__}, expected a Program"
        )
    return result


def _add_checker_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--no-fairness", action="store_true",
                        help="use the classical unfair scheduler")
    parser.add_argument("--strategy", default="dfs",
                        choices=["dfs", "icb", "bfs", "random", "por",
                                 "dpor"])
    parser.add_argument("--depth-bound", type=int, default=5000,
                        help="divergence bound (fair) / prune bound (unfair)")
    parser.add_argument("--preemption-bound", type=int, default=None,
                        help="context bound (max preemptions per execution)")
    parser.add_argument("--k-yield", type=int, default=1,
                        help="process every k-th yield (soundness knob)")
    parser.add_argument("--max-executions", type=int, default=None)
    parser.add_argument("--max-seconds", type=float, default=None)
    parser.add_argument("--random-executions", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--coverage", action="store_true",
                        help="track state coverage (needs state_signature)")
    parser.add_argument("--keep-going", action="store_true",
                        help="do not stop at the first violation")
    parser.add_argument("--trace-limit", type=int, default=40)
    parser.add_argument("--save-repro", metavar="PATH",
                        help="write the first counterexample's schedule "
                             "to a repro file")
    telemetry = parser.add_argument_group(
        "telemetry", "exploration observability (docs/observability.md)")
    telemetry.add_argument("--stats", action="store_true",
                           help="print phase timings and search metrics "
                                "after the verdict")
    telemetry.add_argument("--metrics-json", metavar="FILE",
                           help="export metrics + phase timers as JSON")
    telemetry.add_argument("--trace-out", metavar="FILE",
                           help="write the full event trace as JSONL "
                                "(replay-compatible)")
    telemetry.add_argument("--progress", action="store_true",
                           help="print periodic progress lines to stderr")
    telemetry.add_argument("--progress-interval", type=float, default=1.0,
                           metavar="SECONDS",
                           help="minimum seconds between progress lines")
    telemetry.add_argument("--profile-out", metavar="FILE",
                           help="attribute wall-clock cost to decision-"
                                "sequence prefixes and write folded stacks "
                                "(flamegraph.pl / speedscope input; "
                                "docs/profiling.md)")
    telemetry.add_argument("--chrome-trace", metavar="FILE",
                           help="write search/shard span timelines as "
                                "Chrome trace-event JSON (open in Perfetto "
                                "or chrome://tracing)")
    resilience = parser.add_argument_group(
        "resilience", "long-search armor (docs/resilience.md)")
    resilience.add_argument("--checkpoint", metavar="PATH",
                            help="write periodic search checkpoints to PATH "
                                 "(atomic; also flushed on SIGINT/SIGTERM)")
    resilience.add_argument("--checkpoint-interval", type=int, default=200,
                            metavar="N",
                            help="executions between periodic checkpoints")
    resilience.add_argument("--resume", action="store_true",
                            help="resume from --checkpoint if it exists "
                                 "(starts fresh otherwise)")
    resilience.add_argument("--execution-budget", type=float, default=None,
                            metavar="SECONDS",
                            help="wall-clock budget per execution; hung "
                                 "executions are aborted, not fatal")
    resilience.add_argument("--max-crashes", type=int, default=None,
                            metavar="N",
                            help="capture crashing executions as quarantined "
                                 "findings and stop after N of them")
    resilience.add_argument("--quarantine-dir", metavar="DIR",
                            help="save each quarantined crash's schedule as "
                                 "a repro file in DIR")
    performance = parser.add_argument_group(
        "performance", "exploration hot-path tuning (docs/performance.md)")
    performance.add_argument("--snapshot-cache", action="store_true",
                             help="cache prefix snapshots so guided "
                                  "executions skip re-executing shared "
                                  "prefixes (VM and native-thread "
                                  "programs)")
    performance.add_argument("--snapshot-interval", type=int, default=16,
                             metavar="N",
                             help="snapshot every N transitions along an "
                                  "execution (smaller = less re-execution, "
                                  "more memory)")
    performance.add_argument("--snapshot-memory-mb", type=int, default=64,
                             metavar="MB",
                             help="memory budget for the snapshot cache "
                                  "(LRU eviction past it)")
    parallel = parser.add_argument_group(
        "parallel", "sharded multi-process search (docs/parallel.md)")
    parallel.add_argument("--workers", type=int, default=1, metavar="N",
                          help="worker processes for the search (1 = serial; "
                               "merged totals are worker-count independent)")
    parallel.add_argument("--shards", type=int, default=None, metavar="N",
                          help="target shard count for the parallel plan "
                               "(default 16; more shards = finer-grained "
                               "load balancing)")


def _make_observer(options: argparse.Namespace):
    """Build an Observer when any telemetry flag was given, else None."""
    wants_observer = (options.stats or options.metrics_json
                      or options.trace_out or options.progress
                      or options.profile_out or options.chrome_trace)
    if not wants_observer:
        return None
    from repro.obs import JsonlTraceWriter, Observer, ProgressReporter

    sink = JsonlTraceWriter(options.trace_out) if options.trace_out else None
    progress = (ProgressReporter(interval_seconds=options.progress_interval)
                if options.progress else None)
    profiler = None
    if options.profile_out:
        from repro.obs.profile import DecisionProfiler

        profiler = DecisionProfiler()
    return Observer(sink=sink, progress=progress, profiler=profiler)


def _make_checker(program: Program, options: argparse.Namespace) -> Checker:
    return Checker(
        program,
        fairness=not options.no_fairness,
        k_yield=options.k_yield,
        strategy=options.strategy,
        preemption_bound=options.preemption_bound,
        depth_bound=options.depth_bound,
        max_executions=options.max_executions,
        max_seconds=options.max_seconds,
        stop_on_first_violation=not options.keep_going,
        random_executions=options.random_executions,
        collect_coverage=options.coverage,
        seed=options.seed,
        observer=_make_observer(options),
        checkpoint_path=options.checkpoint,
        checkpoint_interval=options.checkpoint_interval,
        execution_budget_seconds=options.execution_budget,
        max_crashes=options.max_crashes,
        quarantine_dir=options.quarantine_dir,
        workers=options.workers,
        shard_target=options.shards,
        snapshot_cache=options.snapshot_cache,
        snapshot_interval=options.snapshot_interval,
        snapshot_memory_mb=options.snapshot_memory_mb,
    )


def _report_and_save(program: Program, checker: Checker,
                     options: argparse.Namespace) -> int:
    resume_from = None
    if getattr(options, "resume", False):
        if not options.checkpoint:
            raise SystemExit("--resume needs --checkpoint PATH")
        if Path(options.checkpoint).exists():
            resume_from = options.checkpoint
        # A missing checkpoint starts fresh, so the same command line is
        # idempotent: first run searches, reruns resume.
    try:
        result = checker.run(resume_from=resume_from)
    finally:
        if checker.observer is not None:
            checker.observer.close()
    print(result.report(trace_limit=options.trace_limit))
    observer = checker.observer
    if observer is not None:
        if options.stats:
            print()
            print(observer.summary())
        if options.metrics_json:
            path = observer.dump_json(options.metrics_json)
            print(f"metrics written to {path}")
        if options.trace_out:
            print(f"event trace written to {options.trace_out}")
        if options.profile_out and observer.profiler is not None:
            Path(options.profile_out).write_text(
                observer.profiler.to_folded(), encoding="utf-8")
            print(f"decision profile (folded stacks) written to "
                  f"{options.profile_out}")
        if options.chrome_trace:
            from repro.obs.profile import write_chrome_trace

            write_chrome_trace(
                options.chrome_trace, observer.spans.spans,
                timers=observer.timers.to_dict(),
                lane_names=observer.spans.lane_names,
                metadata={"program": program.name,
                          "strategy": checker.strategy,
                          "workers": checker.workers},
            )
            print(f"chrome trace written to {options.chrome_trace}")
    record = result.violation or result.divergence
    if options.save_repro and record is not None:
        path = save_schedule(
            options.save_repro, program, record,
            policy_name=checker.policy_factory().name,
            config=checker.config,
        )
        print(f"repro file written to {path}")
    if result.interrupted:
        # Conventional exit code for a SIGINT-terminated process; the
        # partial verdict above still tells the operator what was seen.
        return 130
    return 0 if result.ok else 1


def _cmd_check(options: argparse.Namespace) -> int:
    program = _build_program(options.program, options.factory_arg)
    checker = _make_checker(program, options)
    return _report_and_save(program, checker, options)


def _cmd_replay(options: argparse.Namespace) -> int:
    program = _build_program(options.program, options.factory_arg)
    checker = _make_checker(program, options)
    record = load_and_replay(options.repro_file, program,
                             checker.policy_factory, checker.config)
    print(f"replayed {record.steps} steps; outcome: {record.outcome.value}")
    if record.violation is not None:
        print(f"violation: {record.violation}")
    print(format_trace(record.trace, limit=options.trace_limit))
    return 0 if record.violation is None else 1


def _cmd_demo(options: argparse.Namespace) -> int:
    demos = _demos()
    if options.name not in demos:
        print(f"unknown demo {options.name!r}; try: "
              f"{', '.join(sorted(demos))}", file=sys.stderr)
        return 2
    program = demos[options.name]()
    options.program = options.name
    checker = _make_checker(program, options)
    needs_bound = ("wsq", "wsq-bug1", "dryad", "ape", "singularity",
                   "bounded-buffer", "treiber", "msi-coherence")
    if options.name in needs_bound and options.preemption_bound is None:
        checker.config.preemption_bound = 2
    return _report_and_save(program, checker, options)


def _cmd_demos(options: argparse.Namespace) -> int:
    for name in sorted(_demos()):
        print(name)
    return 0


def _cmd_profile_snapshots(options: argparse.Namespace) -> int:
    """Measure snapshot-cache amortization and print the verdict report."""
    from repro.obs.profile import format_snapshot_report, snapshot_amortization

    if options.program:
        def program_factory():
            return _build_program(options.program, options.factory_arg)
    else:
        from repro.workloads.boundedbuffer import bounded_buffer_program

        def program_factory():
            return bounded_buffer_program(items=2, consumers=2)

    report = snapshot_amortization(
        program_factory,
        strategy=options.strategy,
        depth_bound=options.depth_bound,
        preemption_bound=options.preemption_bound,
        snapshot_interval=options.snapshot_interval,
        max_executions=options.max_executions,
        snapshot_memory_mb=options.snapshot_memory_mb,
    )
    print(format_snapshot_report(report))
    if options.json_out:
        import json

        Path(options.json_out).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        print(f"report written to {options.json_out}")
    return 0


def _cmd_bench_compare(options: argparse.Namespace) -> int:
    """Compare two benchmark JSON files; non-zero exit on regression."""
    from repro.obs.profile import compare_bench, load_bench

    try:
        baseline = load_bench(options.baseline)
        current = load_bench(options.current)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot load benchmark file: {exc}") from exc
    comparison = compare_bench(baseline, current,
                               tolerance=options.tolerance)
    print(comparison.summary())
    return comparison.exit_code


def _cmd_chaos(options: argparse.Namespace) -> int:
    """Run the seeded fault matrix (and optionally the torture sweep)."""
    from repro.chaos.harness import SCENARIOS, run_matrix

    if options.list_scenarios:
        for name in SCENARIOS:
            print(name)
        return 0
    try:
        matrix = run_matrix(seed=options.seed,
                            only=options.scenarios or None)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    print(matrix.summary())
    exit_code = matrix.exit_code
    if options.torture:
        from repro.chaos.torture import run_torture

        print("\ncrash-consistency torture:")
        for result in run_torture(prefix_stride=options.torture_stride):
            print(result.describe())
            if not result.ok:
                exit_code = 1
    return exit_code


def _cmd_serve(options: argparse.Namespace) -> int:
    from repro.service import CheckServer
    from repro.service.http_api import ServiceHttpServer

    weights = None
    if options.weight:
        weights = {}
        for raw in options.weight:
            name, _, value = raw.partition("=")
            try:
                weights[name] = int(value)
            except ValueError:
                raise SystemExit(f"bad --weight {raw!r}; expected class=N")
    try:
        server = CheckServer(
            options.data_dir,
            fleet=options.fleet,
            quantum_executions=options.quantum,
            weights=weights,
            max_active_per_client=options.max_active_per_client,
            submit_rate=options.submit_rate,
            submit_burst=options.submit_burst,
            retention_seconds=options.retention,
        )
    except OSError as exc:
        # An unwritable jobs directory must be a loud boot failure, not
        # a server that idles while silently losing every submission.
        print(f"error: jobs directory {options.data_dir!r} is not "
              f"writable: {exc}", file=sys.stderr, flush=True)
        return 2
    http_server = None
    if options.http is not None:
        http_server = ServiceHttpServer(server, host=options.http_host,
                                        port=options.http)
        http_server.start()
        print(f"http: {http_server.url}", flush=True)
    print(f"serving {options.data_dir} "
          f"(fleet={options.fleet}, quantum={options.quantum})", flush=True)
    try:
        server.serve_forever(idle_exit_seconds=options.idle_exit)
    finally:
        if http_server is not None:
            http_server.stop()
    print("server stopped", flush=True)
    return 0


def _job_client(options: argparse.Namespace):
    from repro.service.client import make_client

    if (options.data_dir is None) == (getattr(options, "url", None) is None):
        raise SystemExit("pass exactly one of --data-dir or --url")
    return make_client(data_dir=options.data_dir, url=options.url)


def _job_exit_code(record: dict) -> int:
    """--wait exit codes: pass 0, fail 1, cancelled 3, infra failure 4."""
    state = record.get("state")
    if state == "done":
        return 0 if record.get("verdict") == "pass" else 1
    if state == "cancelled":
        return 3
    return 4


def _cmd_job_submit(options: argparse.Namespace) -> int:
    from repro.service import JobSpec
    from repro.service.server import RateLimitedError

    config = {}
    for raw in options.config:
        key, sep, value = raw.partition("=")
        if not sep:
            raise SystemExit(f"bad --config {raw!r}; expected key=value")
        try:
            config[key] = ast.literal_eval(value)
        except (ValueError, SyntaxError):
            config[key] = value
    spec = JobSpec(program=options.program,
                   factory_args=list(options.factory_arg),
                   config=config, priority=options.priority,
                   client=options.client, stream=options.stream)
    try:
        spec.validate()
    except ValueError as exc:
        raise SystemExit(str(exc))
    client = _job_client(options)
    try:
        job_id = client.submit(spec)
    except RateLimitedError as exc:
        print(f"rate limited: {exc}", file=sys.stderr)
        return 4
    print(job_id, flush=True)
    if not options.wait:
        return 0
    record = client.wait(job_id, timeout=options.timeout)
    print(f"{record['state']}"
          + (f" verdict={record['verdict']}" if record.get("verdict")
             else "")
          + (f" error={record['error']}" if record.get("error") else ""))
    return _job_exit_code(record)


def _cmd_job_status(options: argparse.Namespace) -> int:
    import json as json_module

    client = _job_client(options)
    try:
        record = client.status(options.job_id)
    except KeyError:
        print(f"unknown job {options.job_id}", file=sys.stderr)
        return 2
    print(json_module.dumps(record, indent=2, sort_keys=True, default=str))
    return 0


def _cmd_job_list(options: argparse.Namespace) -> int:
    client = _job_client(options)
    for record in client.list_jobs():
        verdict = record.get("verdict") or "-"
        spec = record.get("spec", {})
        print(f"{record['id']}  {record['state']:<9} {verdict:<5} "
              f"{spec.get('priority', '?'):<7} "
              f"exec={record.get('executions', 0):<7} "
              f"{spec.get('program', '?')}")
    return 0


def _cmd_job_watch(options: argparse.Namespace) -> int:
    import json as json_module

    client = _job_client(options)
    try:
        for event in client.watch(options.job_id, timeout=options.timeout):
            print(json_module.dumps(event, sort_keys=True, default=str),
                  flush=True)
    except TimeoutError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    record = client.status(options.job_id)
    return _job_exit_code(record)


def _cmd_job_result(options: argparse.Namespace) -> int:
    import json as json_module

    client = _job_client(options)
    result = client.result(options.job_id)
    if result is None:
        print("result not ready", file=sys.stderr)
        return 2
    print(json_module.dumps(result, indent=2, sort_keys=True, default=str))
    return 0


def _cmd_job_cancel(options: argparse.Namespace) -> int:
    client = _job_client(options)
    client.cancel(options.job_id)
    if not options.wait:
        print("cancel requested", flush=True)
        return 0
    record = client.wait(options.job_id, timeout=options.timeout)
    print(record["state"])
    return _job_exit_code(record)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="fairchess — fair stateless model checking",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check_parser = sub.add_parser("check", help="model-check a program")
    check_parser.add_argument("program",
                              help="factory spec: package.module:factory")
    check_parser.add_argument("-a", "--factory-arg", action="append",
                              default=[], help="argument for the factory "
                              "(Python literal); repeatable")
    _add_checker_options(check_parser)
    check_parser.set_defaults(func=_cmd_check)

    replay_parser = sub.add_parser("replay", help="replay a repro file")
    replay_parser.add_argument("repro_file")
    replay_parser.add_argument("program")
    replay_parser.add_argument("-a", "--factory-arg", action="append",
                               default=[])
    _add_checker_options(replay_parser)
    replay_parser.set_defaults(func=_cmd_replay)

    demo_parser = sub.add_parser("demo", help="run a built-in demo")
    demo_parser.add_argument("name")
    demo_parser.add_argument("-a", "--factory-arg", action="append",
                             default=[])
    _add_checker_options(demo_parser)
    demo_parser.set_defaults(func=_cmd_demo)

    demos_parser = sub.add_parser("demos", help="list built-in demos")
    demos_parser.set_defaults(func=_cmd_demos)

    chaos_parser = sub.add_parser(
        "chaos",
        help="seeded fault-injection matrix (docs/resilience.md)")
    chaos_parser.add_argument(
        "--seed", type=int, default=0,
        help="derives every fault trigger; same seed = same faults")
    chaos_parser.add_argument(
        "--scenario", action="append", default=[], dest="scenarios",
        help="run only this scenario (repeatable; default: all)")
    chaos_parser.add_argument(
        "--list", action="store_true", dest="list_scenarios",
        help="list the scenarios and exit")
    chaos_parser.add_argument(
        "--torture", action="store_true",
        help="also run the crash-consistency torture sweep (replays "
             "every prefix of the write sequence for every strategy)")
    chaos_parser.add_argument(
        "--torture-stride", type=int, default=1,
        help="check every N-th write-sequence prefix (default: all)")
    chaos_parser.set_defaults(func=_cmd_chaos)

    profile_parser = sub.add_parser(
        "profile", help="profiling reports (docs/profiling.md)")
    profile_sub = profile_parser.add_subparsers(dest="profile_command",
                                                required=True)
    snapshots_parser = profile_sub.add_parser(
        "snapshots",
        help="snapshot-cache amortization report: per-phase capture/"
             "restore cost vs replay savings, with an on/off verdict")
    snapshots_parser.add_argument(
        "program", nargs="?", default=None,
        help="factory spec package.module:factory "
             "(default: the hot-path bench workload, "
             "bounded_buffer_program(items=2, consumers=2))")
    snapshots_parser.add_argument("-a", "--factory-arg", action="append",
                                  default=[])
    snapshots_parser.add_argument("--strategy", default="dfs",
                                  choices=["dfs", "icb", "bfs", "random",
                                           "por", "dpor"])
    snapshots_parser.add_argument("--depth-bound", type=int, default=200)
    snapshots_parser.add_argument("--preemption-bound", type=int, default=2)
    snapshots_parser.add_argument("--snapshot-interval", type=int, default=4)
    snapshots_parser.add_argument("--max-executions", type=int, default=250)
    snapshots_parser.add_argument("--snapshot-memory-mb", type=int,
                                  default=64)
    snapshots_parser.add_argument("--json-out", metavar="FILE",
                                  help="also write the report as JSON")
    snapshots_parser.set_defaults(func=_cmd_profile_snapshots)

    bench_parser = sub.add_parser(
        "bench", help="benchmark tooling (docs/performance.md)")
    bench_sub = bench_parser.add_subparsers(dest="bench_command",
                                            required=True)
    compare_parser = bench_sub.add_parser(
        "compare",
        help="diff two benchmark JSON files with noise tolerances; "
             "exits non-zero when the current file regresses")
    compare_parser.add_argument("baseline", help="baseline BENCH_*.json")
    compare_parser.add_argument("current", help="current BENCH_*.json")
    compare_parser.add_argument("--tolerance", type=float, default=0.2,
                                help="relative slack for noisy metrics "
                                     "(default 0.2 = 20%%)")
    compare_parser.set_defaults(func=_cmd_bench_compare)

    serve_parser = sub.add_parser(
        "serve", help="run the checking service (docs/service.md)")
    serve_parser.add_argument("--data-dir", required=True,
                              help="durable service state directory")
    serve_parser.add_argument("--fleet", type=int, default=2, metavar="N",
                              help="worker threads shared across jobs")
    serve_parser.add_argument("--quantum", type=int, default=50, metavar="N",
                              help="executions per scheduler quantum")
    serve_parser.add_argument("--http", type=int, default=None,
                              metavar="PORT",
                              help="also listen on localhost HTTP "
                                   "(0 = ephemeral port, printed on start)")
    serve_parser.add_argument("--http-host", default="127.0.0.1")
    serve_parser.add_argument("--idle-exit", type=float, default=None,
                              metavar="SECONDS",
                              help="exit after this long with no active jobs")
    serve_parser.add_argument("--max-active-per-client", type=int,
                              default=None, metavar="N",
                              help="per-client concurrent-job cap "
                                   "(excess is backlogged)")
    serve_parser.add_argument("--submit-rate", type=float, default=None,
                              metavar="PER_SECOND",
                              help="per-client submission token-bucket rate")
    serve_parser.add_argument("--submit-burst", type=float, default=None,
                              metavar="TOKENS")
    serve_parser.add_argument("--retention", type=float, default=None,
                              metavar="SECONDS",
                              help="delete terminal job dirs older than this")
    serve_parser.add_argument("--weight", action="append", default=[],
                              metavar="CLASS=N",
                              help="override a priority class weight; "
                                   "repeatable (default smoke=6 default=3 "
                                   "bulk=1)")
    serve_parser.set_defaults(func=_cmd_serve)

    job_parser = sub.add_parser(
        "job", help="batch client for the checking service")
    job_sub = job_parser.add_subparsers(dest="job_command", required=True)

    def _add_transport(p: argparse.ArgumentParser) -> None:
        p.add_argument("--data-dir", default=None,
                       help="filesystem transport: the server's data dir")
        p.add_argument("--url", default=None,
                       help="HTTP transport: the server's base URL")

    submit_parser = job_sub.add_parser("submit", help="submit a job")
    submit_parser.add_argument("program",
                               help="factory spec package.module:factory")
    submit_parser.add_argument("-a", "--factory-arg", action="append",
                               default=[],
                               help="argument for the factory (Python "
                                    "literal); repeatable")
    submit_parser.add_argument("--priority", default="default",
                               choices=["smoke", "default", "bulk"])
    submit_parser.add_argument("--client", default="anonymous",
                               help="client identity for rate limiting")
    submit_parser.add_argument("--stream", default="lifecycle",
                               choices=["lifecycle", "executions",
                                        "decisions"],
                               help="events.jsonl verbosity")
    submit_parser.add_argument("--config", action="append", default=[],
                               metavar="KEY=VALUE",
                               help="checker config entry (Python literal "
                                    "value); repeatable, e.g. "
                                    "--config strategy='dfs' "
                                    "--config max_executions=500")
    submit_parser.add_argument("--wait", action="store_true",
                               help="block until terminal; exit 0 pass, "
                                    "1 fail, 3 cancelled, 4 failed")
    submit_parser.add_argument("--timeout", type=float, default=None)
    _add_transport(submit_parser)
    submit_parser.set_defaults(func=_cmd_job_submit)

    status_parser = job_sub.add_parser("status", help="show one job record")
    status_parser.add_argument("job_id")
    _add_transport(status_parser)
    status_parser.set_defaults(func=_cmd_job_status)

    list_parser = job_sub.add_parser("list", help="list all jobs")
    _add_transport(list_parser)
    list_parser.set_defaults(func=_cmd_job_list)

    watch_parser = job_sub.add_parser(
        "watch", help="stream a job's events until it finishes")
    watch_parser.add_argument("job_id")
    watch_parser.add_argument("--timeout", type=float, default=None)
    _add_transport(watch_parser)
    watch_parser.set_defaults(func=_cmd_job_watch)

    result_parser = job_sub.add_parser("result",
                                       help="print a job's final result")
    result_parser.add_argument("job_id")
    _add_transport(result_parser)
    result_parser.set_defaults(func=_cmd_job_result)

    cancel_parser = job_sub.add_parser("cancel", help="cancel a job")
    cancel_parser.add_argument("job_id")
    cancel_parser.add_argument("--wait", action="store_true")
    cancel_parser.add_argument("--timeout", type=float, default=None)
    _add_transport(cancel_parser)
    cancel_parser.set_defaults(func=_cmd_job_cancel)

    options = parser.parse_args(argv)
    return options.func(options)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
