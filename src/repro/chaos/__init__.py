"""Deterministic fault injection and crash-consistency torture.

The chaos plane has three layers:

* :mod:`repro.chaos.faults` — named fault points, seeded
  :class:`~repro.chaos.faults.FaultPlan` rules, and the process-global
  injector that the durable-write helpers and worker pool consult;
* :mod:`repro.chaos.torture` — a simulated disk that replays every
  prefix of a recorded write sequence to enumerate post-crash states;
* :mod:`repro.chaos.harness` — the seeded scenario matrix behind
  ``repro chaos``, asserting the durability invariants (no lost
  verdicts, bit-identical resumed totals, honored exit codes) against
  real workloads.
"""

from repro.chaos.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultRule,
    FiredFault,
    InjectedFault,
    WriteRecorder,
    active,
    fault_at,
    fault_plan,
    install,
    install_recorder,
    record_op,
    uninstall,
    uninstall_recorder,
)

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FiredFault",
    "InjectedFault",
    "WriteRecorder",
    "active",
    "fault_at",
    "fault_plan",
    "install",
    "install_recorder",
    "record_op",
    "uninstall",
    "uninstall_recorder",
]
