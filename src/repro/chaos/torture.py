"""Crash-consistency torture: replay every prefix of the write log.

The atomic-write discipline (:mod:`repro.durableio`) claims that a crash
at *any* instant leaves the checkpoint store recoverable.  This module
checks the claim exhaustively instead of anecdotally:

1. run a real checkpointed search with a
   :class:`~repro.chaos.faults.WriteRecorder` installed, capturing the
   physical op sequence (``write``/``fsync``/``replace``/``link``/
   ``fsync_dir``) the writers emitted;
2. replay **every prefix** of that sequence through a
   :class:`SimulatedDisk` and materialize the two bracketing post-crash
   states POSIX permits:

   * **all-durable** — every op made it to the platter (the lucky
     crash);
   * **min-durable** — only explicitly fsync'd file content survived;
     renames and hardlinks became durable only at the following
     ``fsync_dir`` of their directory; un-synced content is torn in
     half (the adversarial crash);

3. resume the search from each materialized state and require the final
   totals (executions, transitions, per-outcome counts, verdict) to be
   **bit-identical** to an unfaulted baseline — across all six
   strategies.

Any real state the hardware can produce lies between the two brackets,
so a green torture run means no crash instant can lose a verdict.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.chaos.faults import WriteRecorder, install_recorder, \
    uninstall_recorder
from repro.checker import Checker
from repro.resilience import CheckpointStore
from repro.workloads.dining import dining_philosophers

STRATEGIES = ("dfs", "bfs", "random", "por", "icb", "dpor")


@dataclass
class _FileState:
    """One file in a simulated view: content + was it ever fsync'd."""

    content: bytes
    synced: bool


class SimulatedDisk:
    """Replays a recorded op sequence into bracketing crash states.

    ``logical`` applies every op the instant it was issued (the
    all-durable bracket).  ``durable`` applies content only at
    ``fsync`` and namespace changes (rename/link) only at the
    ``fsync_dir`` that follows them — with un-synced content torn at
    half length (the min-durable bracket).
    """

    def __init__(self) -> None:
        self.logical: Dict[str, _FileState] = {}
        self.durable: Dict[str, bytes] = {}
        # Namespace ops (publish path -> content/synced) waiting for the
        # fsync of their parent directory, in issue order.
        self.pending: Dict[str, List[Tuple[str, bytes, bool]]] = {}

    def apply(self, op: tuple) -> None:
        kind = op[0]
        if kind == "write":
            _, tmp, payload = op
            self.logical[tmp] = _FileState(bytes(payload), synced=False)
        elif kind == "fsync":
            _, tmp = op
            state = self.logical.get(tmp)
            if state is not None:
                state.synced = True
        elif kind == "replace":
            _, tmp, path = op
            state = self.logical.pop(tmp, _FileState(b"", False))
            self.logical[path] = state
            self._queue(path, state)
        elif kind == "link":
            _, src, dst = op
            state = self.logical.get(src, _FileState(b"", False))
            copy = _FileState(state.content, state.synced)
            self.logical[dst] = copy
            self._queue(dst, copy)
        elif kind == "unlink":
            _, path = op
            self.logical.pop(path, None)
            self._queue_unlink(path)
        elif kind == "fsync_dir":
            _, directory = op
            for path, content, synced in self.pending.pop(directory, []):
                if content is None:
                    self.durable.pop(path, None)
                elif synced:
                    self.durable[path] = content
                else:
                    self.durable[path] = content[: len(content) // 2]
        else:  # pragma: no cover - future op kinds fail loudly
            raise ValueError(f"unknown recorded op {op!r}")

    def _queue(self, path: str, state: _FileState) -> None:
        parent = str(Path(path).parent)
        self.pending.setdefault(parent, []).append(
            (path, state.content, state.synced))

    def _queue_unlink(self, path: str) -> None:
        parent = str(Path(path).parent)
        self.pending.setdefault(parent, []).append((path, None, False))

    # ------------------------------------------------------------------
    def all_durable_view(self) -> Dict[str, bytes]:
        """Every issued op applied; un-synced content intact (the crash
        that lost nothing)."""
        return {path: state.content
                for path, state in self.logical.items()}

    def min_durable_view(self) -> Dict[str, bytes]:
        """Only synced content and dir-synced namespace ops; a crashed
        writer's volatile bytes torn at half."""
        view = dict(self.durable)
        # Temp files whose *creation* predates any dirsync can still be
        # present after a crash (metadata journaling); surface them torn
        # so recovery's tmp sweep is exercised.
        for path, state in self.logical.items():
            if path in view:
                continue
            if path.endswith((".tmp", ".prevtmp")):
                view[path] = (state.content if state.synced
                              else state.content[: len(state.content) // 2])
        return view


def materialize(view: Dict[str, bytes], src_root: Path,
                dst_root: Path) -> None:
    """Write one simulated view into a fresh directory tree."""
    for path, content in view.items():
        rel = Path(path).relative_to(src_root)
        target = dst_root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(content)


# ----------------------------------------------------------------------
# the torture loop
# ----------------------------------------------------------------------

@dataclass
class TortureResult:
    """Outcome of one strategy's prefix sweep."""

    strategy: str
    prefixes: int = 0
    states_checked: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        line = (f"[{status}] {self.strategy}: {self.prefixes} prefixes, "
                f"{self.states_checked} crash states")
        if self.failures:
            line += "\n" + "\n".join(f"    - {f}"
                                     for f in self.failures[:10])
            if len(self.failures) > 10:
                line += f"\n    - ... {len(self.failures) - 10} more"
        return line


def _checker(strategy: str, workdir: Path,
             max_executions: int) -> Checker:
    return Checker(
        dining_philosophers(2),
        strategy=strategy,
        depth_bound=60,
        max_executions=max_executions,
        random_executions=max_executions,
        preemption_bound=2 if strategy == "icb" else None,
        checkpoint_path=str(workdir / "search.ckpt"),
        checkpoint_interval=1,
        handle_signals=False,
    )


def _totals(result) -> dict:
    exploration = result.exploration
    return {
        "verdict": "pass" if result.ok else "fail",
        "executions": exploration.executions,
        "transitions": exploration.transitions,
        "outcomes": {outcome.value: count for outcome, count
                     in sorted(exploration.outcomes.items(),
                               key=lambda item: item[0].value)},
    }


def torture_strategy(strategy: str, *, max_executions: int = 10,
                     prefix_stride: int = 1) -> TortureResult:
    """Replay every op-sequence prefix for one strategy.

    ``prefix_stride`` subsamples the prefixes (every N-th, always
    including the first and last) for quicker sweeps.
    """
    outcome = TortureResult(strategy=strategy)
    with tempfile.TemporaryDirectory(prefix=f"torture-{strategy}-") as tmp:
        root = Path(tmp)
        baseline_dir = root / "baseline"
        baseline_dir.mkdir()
        baseline = _totals(
            _checker(strategy, baseline_dir, max_executions).run())

        recorded_dir = root / "recorded"
        recorded_dir.mkdir()
        recorder = install_recorder(WriteRecorder())
        try:
            recorded = _totals(
                _checker(strategy, recorded_dir, max_executions).run())
        finally:
            uninstall_recorder()
        if recorded != baseline:
            outcome.failures.append(
                f"recorded run diverged from baseline: {recorded} "
                f"vs {baseline}")
            return outcome
        ops = list(recorder.ops)
        if not ops:
            outcome.failures.append("recorder captured no write ops")
            return outcome

        indices = list(range(len(ops) + 1))
        if prefix_stride > 1:
            kept = set(indices[::prefix_stride])
            kept.update((0, len(ops)))
            indices = sorted(kept)

        disk = SimulatedDisk()
        applied = 0
        for cut in indices:
            while applied < cut:
                disk.apply(ops[applied])
                applied += 1
            outcome.prefixes += 1
            for label, view in (("all-durable", disk.all_durable_view()),
                                ("min-durable", disk.min_durable_view())):
                outcome.states_checked += 1
                failure = _check_state(strategy, max_executions, view,
                                       recorded_dir, root, baseline,
                                       f"prefix {cut} [{label}]")
                if failure is not None:
                    outcome.failures.append(failure)
    return outcome


def _check_state(strategy: str, max_executions: int,
                 view: Dict[str, bytes], src_root: Path, root: Path,
                 baseline: dict, label: str) -> Optional[str]:
    """Materialize one crash state; resume must reproduce baseline."""
    with tempfile.TemporaryDirectory(dir=root, prefix="state-") as state:
        state_dir = Path(state)
        materialize(view, src_root, state_dir)
        ckpt = state_dir / "search.ckpt"
        checker = _checker(strategy, state_dir, max_executions)
        try:
            resume = (str(ckpt) if CheckpointStore(ckpt).recoverable()
                      else None)
            result = checker.run(resume_from=resume)
        except Exception as exc:
            return (f"{label}: resume raised "
                    f"{type(exc).__name__}: {exc}")
        totals = _totals(result)
        if totals != baseline:
            return (f"{label}: resumed totals diverged: {totals} "
                    f"vs {baseline}")
    return None


def run_torture(*, strategies=STRATEGIES, max_executions: int = 10,
                prefix_stride: int = 1) -> List[TortureResult]:
    """The full suite: every strategy, every (strided) prefix, both
    durability brackets."""
    return [torture_strategy(name, max_executions=max_executions,
                             prefix_stride=prefix_stride)
            for name in strategies]
