"""The seeded fault matrix behind ``repro chaos``.

Each *scenario* arms one :class:`~repro.chaos.faults.FaultPlan` against a
real checkpointed search of a real workload and asserts the hardening
invariants the rest of the repo advertises:

* **no lost verdicts** — a faulted-then-recovered run reaches the same
  PASS/FAIL verdict as the unfaulted baseline;
* **bit-identical resumed totals** — executions, transitions and
  per-outcome counts after crash + resume equal the baseline exactly
  (the checkpoint-at-iteration-start discipline, docs/resilience.md);
* **degradation, not death** — ENOSPC/EIO during a checkpoint flush
  fails the flush (counted, warned) and never the search;
* **wedge/crash recovery** — a SIGKILLed or SIGSTOPped worker is
  detected, its shard requeued, and the merged totals are unchanged.

Every trigger point in the matrix is drawn from the run's seed
(:meth:`FaultPlan.seeded`), so ``repro chaos --seed N`` reproduces the
exact same fault schedule bit for bit.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.chaos.faults import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    fault_plan,
    install,
    uninstall,
)
from repro.checker import Checker, CheckResult
from repro.resilience import CheckpointStore
from repro.obs import Observer
from repro.workloads.dining import dining_philosophers


def _totals(result: CheckResult) -> dict:
    """The bit-identical comparison key for 'no lost work'."""
    exploration = result.exploration
    return {
        "verdict": "pass" if result.ok else "fail",
        "executions": exploration.executions,
        "transitions": exploration.transitions,
        "outcomes": {outcome.value: count for outcome, count
                     in sorted(exploration.outcomes.items(),
                               key=lambda item: item[0].value)},
    }


@dataclass
class ScenarioResult:
    """Outcome of one fault scenario."""

    name: str
    plan: str
    ok: bool
    details: List[str] = field(default_factory=list)
    fired: int = 0

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        line = f"[{status}] {self.name}  ({self.plan}; fired={self.fired})"
        if self.details:
            line += "\n" + "\n".join(f"    - {d}" for d in self.details)
        return line


@dataclass
class MatrixResult:
    """All scenarios of one ``repro chaos`` run."""

    seed: int
    scenarios: List[ScenarioResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.scenarios)

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def summary(self) -> str:
        lines = [f"chaos matrix (seed={self.seed}): "
                 f"{sum(s.ok for s in self.scenarios)}/"
                 f"{len(self.scenarios)} scenarios ok"]
        lines.extend(s.describe() for s in self.scenarios)
        return "\n".join(lines)


class _Check:
    """Collects invariant violations for one scenario."""

    def __init__(self) -> None:
        self.details: List[str] = []

    def expect(self, condition: bool, message: str) -> None:
        if not condition:
            self.details.append(message)

    def expect_totals(self, label: str, got: dict, want: dict) -> None:
        if got != want:
            self.details.append(f"{label}: totals diverged\n"
                                f"      got  {got}\n"
                                f"      want {want}")


def _checker(workdir: Path, *, observer: Optional[Observer] = None,
             checkpoint: bool = True, **overrides) -> Checker:
    """A small but real checkpointed search (dining philosophers)."""
    kwargs = dict(
        strategy="dfs",
        depth_bound=60,
        checkpoint_interval=1,
        handle_signals=False,
        observer=observer,
    )
    if checkpoint:
        kwargs["checkpoint_path"] = str(workdir / "search.ckpt")
    kwargs.update(overrides)
    return Checker(dining_philosophers(2), **kwargs)


def _count_checkpoint_saves(workdir: Path) -> dict:
    """Probe run under an empty plan: the injector's hit counters tell
    the scenarios how many times each fault point fires in a clean run
    (so seeded triggers can land on e.g. 'the final save')."""
    injector = install(FaultPlan(name="probe"))
    try:
        baseline = _checker(workdir).run()
    finally:
        uninstall()
    return {"totals": _totals(baseline), "hits": dict(injector.hits)}


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------

def scenario_checkpoint_enospc(seed: int, workdir: Path) -> ScenarioResult:
    """ENOSPC during a checkpoint flush degrades the flush, not the run."""
    baseline = _totals(_checker(workdir / "baseline").run())
    plan = FaultPlan.seeded(seed, "checkpoint.write", "enospc",
                            name="checkpoint-enospc")
    observer = Observer()
    check = _Check()
    faulted = workdir / "faulted"
    with fault_plan(plan, observer=observer) as injector:
        result = _checker(faulted, observer=observer).run()
    check.expect_totals("faulted run", _totals(result), baseline)
    check.expect(len(injector.fired) >= 1, "enospc rule never fired")
    check.expect(
        observer.metrics.counter("checkpoints.write_failed").value >= 1,
        "checkpoint write failure was not counted (degradation path "
        "did not run)")
    return ScenarioResult("checkpoint-enospc", plan.describe(),
                          ok=not check.details, details=check.details,
                          fired=len(injector.fired))


def scenario_checkpoint_replace_interrupted(
        seed: int, workdir: Path) -> ScenarioResult:
    """Crash between tmp write and rename; resume is bit-identical."""
    baseline = _totals(_checker(workdir / "baseline").run())
    plan = FaultPlan.seeded(seed, "checkpoint.replace",
                            "replace-interrupted",
                            name="checkpoint-replace-interrupted")
    check = _Check()
    faulted = workdir / "faulted"
    crashed = False
    with fault_plan(plan) as injector:
        try:
            _checker(faulted).run()
        except InjectedFault:
            crashed = True
    check.expect(crashed, "replace-interrupted fault never crashed "
                          "the run")
    observer = Observer()
    # Mirror the service's boot logic: resume from whatever snapshot is
    # recoverable; a crash before the *first* publish restarts fresh.
    ckpt = faulted / "search.ckpt"
    resume = str(ckpt) if CheckpointStore(ckpt).recoverable() else None
    resumed = _checker(faulted, observer=observer).run(resume_from=resume)
    check.expect_totals("resumed run", _totals(resumed), baseline)
    return ScenarioResult("checkpoint-replace-interrupted",
                          plan.describe(), ok=not check.details,
                          details=check.details,
                          fired=len(injector.fired))


def scenario_checkpoint_corrupt_recovery(
        seed: int, workdir: Path) -> ScenarioResult:
    """The final save publishes a torn file (fsync dropped, then a
    crash); resume falls back to the ``.prev`` rotation sibling."""
    probe = _count_checkpoint_saves(workdir / "baseline")
    baseline = probe["totals"]
    saves = probe["hits"].get("checkpoint.write", 0)
    check = _Check()
    check.expect(saves >= 2, f"workload produced only {saves} checkpoint "
                             "saves; cannot exercise rotation")
    # Tear the *final* publish specifically: every later save would
    # overwrite the damage, so only the last one leaves it for resume.
    plan = FaultPlan(
        rules=[FaultRule(point="checkpoint.write", kind="short-write",
                         at=max(2, saves))],
        seed=seed, name="checkpoint-corrupt-recovery")
    faulted = workdir / "faulted"
    with fault_plan(plan) as injector:
        result = _checker(faulted).run()
    check.expect_totals("faulted run (short write is silent)",
                        _totals(result), baseline)
    check.expect(len(injector.fired) >= 1, "short-write rule never fired")
    observer = Observer()
    resumed = _checker(faulted, observer=observer).run(
        resume_from=str(faulted / "search.ckpt"))
    check.expect_totals("recovered resume", _totals(resumed), baseline)
    check.expect(
        observer.metrics.counter("checkpoints.recovered").value >= 1,
        "corrupt checkpoint was not recovered from .prev")
    check.expect(
        any("quarantined" in w for w in resumed.warnings),
        "recovery did not surface a warning")
    return ScenarioResult("checkpoint-corrupt-recovery", plan.describe(),
                          ok=not check.details, details=check.details,
                          fired=len(injector.fired))


def _parallel_checker(workdir: Path, *, observer: Optional[Observer],
                      wedge: bool) -> Checker:
    overrides = dict(workers=2, shard_target=8)
    if wedge:
        # Tight liveness clock so a SIGSTOPped worker is detected in
        # test time rather than operator time.
        overrides.update(heartbeat_interval=0.05, wedge_timeout=1.0)
    return _checker(workdir, observer=observer, checkpoint=False,
                    **overrides)


def scenario_worker_kill(seed: int, workdir: Path) -> ScenarioResult:
    """SIGKILL a worker mid-shard; the shard is requeued, no work lost."""
    baseline = _totals(
        _parallel_checker(workdir / "baseline", observer=None,
                          wedge=False).run())
    plan = FaultPlan.seeded(seed, "worker.execution", "worker-kill",
                            name="worker-kill", match={"worker": 0})
    observer = Observer()
    check = _Check()
    with fault_plan(plan):
        result = _parallel_checker(workdir / "faulted", observer=observer,
                                   wedge=False).run()
    check.expect_totals("post-crash merge", _totals(result), baseline)
    check.expect(
        observer.metrics.counter("workers.crashed").value >= 1,
        "worker crash was never observed by the coordinator")
    return ScenarioResult("worker-kill", plan.describe(),
                          ok=not check.details, details=check.details,
                          fired=observer.metrics.counter(
                              "workers.crashed").value)


def scenario_worker_stall(seed: int, workdir: Path) -> ScenarioResult:
    """SIGSTOP a worker mid-shard; heartbeat silence flags it wedged,
    the coordinator kills + requeues, merged totals are unchanged."""
    baseline = _totals(
        _parallel_checker(workdir / "baseline", observer=None,
                          wedge=False).run())
    plan = FaultPlan.seeded(seed, "worker.execution", "worker-stall",
                            name="worker-stall", match={"worker": 0})
    observer = Observer()
    check = _Check()
    with fault_plan(plan):
        result = _parallel_checker(workdir / "faulted", observer=observer,
                                   wedge=True).run()
    check.expect_totals("post-wedge merge", _totals(result), baseline)
    check.expect(
        observer.metrics.counter("workers.wedged").value >= 1,
        "wedged worker was never detected")
    check.expect(
        any("wedged" in w for w in result.warnings),
        "wedge recovery did not surface a warning")
    return ScenarioResult("worker-stall", plan.describe(),
                          ok=not check.details, details=check.details,
                          fired=observer.metrics.counter(
                              "workers.wedged").value)


SCENARIOS: Dict[str, Callable[[int, Path], ScenarioResult]] = {
    "checkpoint-enospc": scenario_checkpoint_enospc,
    "checkpoint-replace-interrupted":
        scenario_checkpoint_replace_interrupted,
    "checkpoint-corrupt-recovery": scenario_checkpoint_corrupt_recovery,
    "worker-kill": scenario_worker_kill,
    "worker-stall": scenario_worker_stall,
}


def run_matrix(seed: int = 0,
               only: Optional[List[str]] = None) -> MatrixResult:
    """Run the fault matrix; every trigger derives from ``seed``."""
    names = list(SCENARIOS) if not only else list(only)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        raise ValueError(f"unknown chaos scenario(s): "
                         f"{', '.join(unknown)} "
                         f"(expected: {', '.join(SCENARIOS)})")
    matrix = MatrixResult(seed=seed)
    for name in names:
        with tempfile.TemporaryDirectory(prefix=f"chaos-{name}-") as tmp:
            try:
                matrix.scenarios.append(SCENARIOS[name](seed, Path(tmp)))
            except Exception as exc:  # invariant harness must not die
                matrix.scenarios.append(ScenarioResult(
                    name, plan=f"seed={seed}", ok=False,
                    details=[f"scenario raised "
                             f"{type(exc).__name__}: {exc}"]))
            finally:
                uninstall()
    return matrix
