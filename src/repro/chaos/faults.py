"""Deterministic fault injection: the chaos plane's core.

Every durability claim in this repo — atomic repro files, resumable
checkpoints, durable job records, crash-requeued shards — is a claim
about behavior *under faults*.  This module makes those faults
injectable, deterministic, and cheap to leave compiled in:

* a **fault point** is a named call site (``checkpoint.write``,
  ``worker.execution``, ``job.replace``, ...) that asks the active
  injector "does a fault fire here?" before doing the real work;
* a :class:`FaultRule` arms one fault *kind* at one point, firing on the
  N-th hit of that point (optionally restricted to a context match such
  as one worker id);
* a :class:`FaultPlan` is an ordered, serializable set of rules — the
  unit the ``repro chaos`` harness sweeps over, derived from a seed so
  every run of the matrix is reproducible bit for bit.

With no plan installed, a fault point costs one module-global ``is
None`` check — the production hot path stays fault-free and branchless
in the common case.

Fault kinds
-----------

========================  ====================================================
``torn-write``            write only a prefix of the payload, then die
                          (:class:`InjectedFault`) before the rename
``short-write``           write only a prefix of the payload and *carry on*
                          silently — the atomic rename then publishes a
                          corrupt file (a dropped-fsync-then-crash artifact)
``fsync-drop``            skip the fsync silently (the write is volatile;
                          only the simulated-disk torture replay can see it)
``replace-interrupted``   die (:class:`InjectedFault`) between writing the
                          temp file and the ``os.replace``
``enospc``                raise ``OSError(ENOSPC)`` from the fault point
``eio``                   raise ``OSError(EIO)`` from the fault point
``worker-kill``           SIGKILL the current process (parallel workers)
``worker-stall``          SIGSTOP the current process — a *wedge*, not a
                          crash: the process is alive but makes no progress
``clock-stall``           stop the worker's heartbeat clock: the process
                          keeps running but looks wedged to the coordinator
========================  ====================================================
"""

from __future__ import annotations

import errno
import fnmatch
import os
import random
import signal
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

FAULT_KINDS = (
    "torn-write",
    "short-write",
    "fsync-drop",
    "replace-interrupted",
    "enospc",
    "eio",
    "worker-kill",
    "worker-stall",
    "clock-stall",
)

#: Fault kinds that model disk misbehavior at atomic-write fault points.
WRITE_FAULT_KINDS = ("torn-write", "short-write", "fsync-drop",
                     "replace-interrupted", "enospc", "eio")

#: Fault kinds that model a sick worker process.
PROCESS_FAULT_KINDS = ("worker-kill", "worker-stall", "clock-stall")


class InjectedFault(Exception):
    """A simulated crash raised by the chaos plane.

    Distinct from ``OSError`` on purpose: the hardened code paths catch
    ``OSError`` (real disk errors they must degrade around) and let
    ``InjectedFault`` propagate — it stands in for SIGKILL, so nothing
    may handle it except the test harness that injected it.
    """


@dataclass
class FaultRule:
    """Arm one fault kind at one fault point.

    ``point`` is an ``fnmatch`` pattern over fault-point names; ``at`` is
    the 1-based hit count at which the rule first fires and ``times`` how
    many consecutive hits it fires for.  ``match`` restricts firing to
    hits whose context carries the same key/value pairs (e.g.
    ``{"worker": 0}`` fires only in the original worker 0, never in its
    respawned replacements).  ``keep`` is the fraction of the payload a
    torn/short write keeps.
    """

    point: str
    kind: str
    at: int = 1
    times: int = 1
    match: Optional[Dict[str, object]] = None
    keep: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(expected one of {', '.join(FAULT_KINDS)})")
        if self.at < 1:
            raise ValueError("FaultRule.at is 1-based; got "
                             f"{self.at}")
        if not 0.0 <= self.keep <= 1.0:
            raise ValueError("FaultRule.keep must be a fraction in [0, 1]")

    def to_dict(self) -> dict:
        data = {"point": self.point, "kind": self.kind, "at": self.at,
                "times": self.times, "keep": self.keep}
        if self.match:
            data["match"] = dict(self.match)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        return cls(point=data["point"], kind=data["kind"],
                   at=data.get("at", 1), times=data.get("times", 1),
                   match=data.get("match"), keep=data.get("keep", 0.5))

    def describe(self) -> str:
        scope = f" {self.match}" if self.match else ""
        return f"{self.kind}@{self.point}#{self.at}{scope}"


@dataclass
class FaultPlan:
    """An ordered set of fault rules plus the seed that derived them."""

    rules: List[FaultRule] = field(default_factory=list)
    seed: int = 0
    name: str = ""

    def to_dict(self) -> dict:
        return {"name": self.name, "seed": self.seed,
                "rules": [r.to_dict() for r in self.rules]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(rules=[FaultRule.from_dict(r)
                          for r in data.get("rules", [])],
                   seed=data.get("seed", 0), name=data.get("name", ""))

    def describe(self) -> str:
        label = self.name or f"plan(seed={self.seed})"
        return f"{label}: " + ", ".join(r.describe() for r in self.rules)

    @classmethod
    def seeded(cls, seed: int, point: str, kind: str, *,
               max_hit: int = 3, name: str = "",
               match: Optional[Dict[str, object]] = None) -> "FaultPlan":
        """One-rule plan whose trigger hit is drawn deterministically
        from ``seed`` — the unit of the ``repro chaos`` matrix."""
        rng = random.Random((seed, point, kind).__repr__())
        rule = FaultRule(point=point, kind=kind,
                         at=rng.randint(1, max(1, max_hit)), match=match)
        return cls(rules=[rule], seed=seed,
                   name=name or f"{kind}@{point}")


@dataclass(frozen=True)
class FiredFault:
    """One fault that actually fired (the injector's audit log entry)."""

    point: str
    kind: str
    hit: int
    context: Tuple[Tuple[str, object], ...]


class FaultInjector:
    """Matches fault points against an armed :class:`FaultPlan`.

    Thread-safe: the parallel coordinator's pool and the service fleet
    hit fault points from several threads.  Hit counters are per-point
    and per-process (forked workers inherit a snapshot and count on
    independently — use ``match={"worker": id}`` for cross-process
    determinism).
    """

    def __init__(self, plan: FaultPlan,
                 on_fire: Optional[Callable[[FiredFault], None]] = None
                 ) -> None:
        self.plan = plan
        self.on_fire = on_fire
        self.hits: Dict[str, int] = {}
        self.fired: List[FiredFault] = []
        self._lock = threading.Lock()

    def check(self, point: str, **context) -> Optional[FaultRule]:
        """Count one hit of ``point``; return the rule that fires, if any.

        ``enospc``/``eio`` rules raise the mapped ``OSError`` directly —
        the caller exercises its real error path, not a simulation of it.
        ``worker-kill``/``worker-stall`` deliver the real signal.
        """
        with self._lock:
            hit = self.hits.get(point, 0) + 1
            self.hits[point] = hit
            rule = self._match(point, hit, context)
            if rule is None:
                return None
            fired = FiredFault(point=point, kind=rule.kind, hit=hit,
                               context=tuple(sorted(context.items())))
            self.fired.append(fired)
        if self.on_fire is not None:
            try:
                self.on_fire(fired)
            except Exception:
                pass  # telemetry must never mask the fault itself
        if rule.kind == "enospc":
            raise OSError(errno.ENOSPC, os.strerror(errno.ENOSPC),
                          str(context.get("path", point)))
        if rule.kind == "eio":
            raise OSError(errno.EIO, os.strerror(errno.EIO),
                          str(context.get("path", point)))
        if rule.kind == "worker-kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if rule.kind == "worker-stall":
            os.kill(os.getpid(), signal.SIGSTOP)
        return rule

    def _match(self, point: str, hit: int,
               context: dict) -> Optional[FaultRule]:
        for rule in self.plan.rules:
            if not fnmatch.fnmatchcase(point, rule.point):
                continue
            if not rule.at <= hit < rule.at + rule.times:
                continue
            if rule.match and any(context.get(k) != v
                                  for k, v in rule.match.items()):
                continue
            return rule
        return None


class WriteRecorder:
    """Captures the physical write-op sequence of the atomic writers.

    The crash-consistency torture suite installs one of these, runs a
    real checkpointed search, then replays every prefix of the recorded
    sequence through a simulated disk to enumerate post-crash states
    (see :mod:`repro.chaos.torture`).

    Ops: ``("write", tmp, payload_bytes)``, ``("fsync", tmp)``,
    ``("replace", tmp, path)``, ``("fsync_dir", dir)``,
    ``("unlink", path)``, ``("link", src, dst)``.
    """

    def __init__(self) -> None:
        self.ops: List[tuple] = []
        self._lock = threading.Lock()

    def record(self, *op) -> None:
        with self._lock:
            self.ops.append(op)


# ----------------------------------------------------------------------
# The process-global plane.  ``fault_at`` / ``record_op`` are the two
# hooks instrumented code calls; both are no-ops (one ``is None`` branch)
# until ``install`` arms them.  Forked worker processes inherit the
# installed plane — that is how the parallel pool gets its faults.
# ----------------------------------------------------------------------

_injector: Optional[FaultInjector] = None
_recorder: Optional[WriteRecorder] = None


def install(plan: FaultPlan, *, observer=None) -> FaultInjector:
    """Arm ``plan`` process-wide; returns the injector (its ``fired``
    log is the harness's audit trail).  ``observer`` receives one
    ``fault.injected`` event per firing."""
    global _injector
    on_fire = None
    if observer is not None:
        def on_fire(fired: FiredFault, _obs=observer) -> None:
            _obs.fault_injected(fired.point, fired.kind, fired.hit)
    _injector = FaultInjector(plan, on_fire=on_fire)
    return _injector


def uninstall() -> None:
    global _injector
    _injector = None


def active() -> Optional[FaultInjector]:
    return _injector


def fault_at(point: str, **context) -> Optional[FaultRule]:
    """The fault point hook: one global ``is None`` branch when idle."""
    if _injector is None:
        return None
    return _injector.check(point, **context)


def install_recorder(recorder: Optional[WriteRecorder] = None
                     ) -> WriteRecorder:
    global _recorder
    _recorder = recorder if recorder is not None else WriteRecorder()
    return _recorder


def uninstall_recorder() -> None:
    global _recorder
    _recorder = None


def record_op(*op) -> None:
    if _recorder is not None:
        _recorder.record(*op)


class fault_plan:
    """``with fault_plan(plan) as injector:`` — scoped install."""

    def __init__(self, plan: FaultPlan, *, observer=None) -> None:
        self._plan = plan
        self._observer = observer

    def __enter__(self) -> FaultInjector:
        return install(self._plan, observer=self._observer)

    def __exit__(self, *exc_info) -> None:
        uninstall()
