"""The top-level checker: fair stateless model checking as a tool.

This is the reproduction of CHESS-with-fairness as users would consume it:
point it at a :class:`~repro.core.model.Program` and it systematically
tests the program, reporting

* safety violations (assertions, sync misuse, crashes, deadlocks) with a
  replayable schedule;
* livelocks — fair nonterminating executions (Section 2, outcome 3);
* good-samaritan violations — threads that spin without yielding
  (Section 2, outcome 2);
* or a clean verdict when the bounded search space is exhausted.

Example::

    from repro import Checker
    from repro.workloads.dining import dining_philosophers

    result = Checker(dining_philosophers(2), depth_bound=400).run()
    print(result.report())
"""

from __future__ import annotations

import dataclasses
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import for annotations only
    from repro.obs.observer import Observer

from repro.core.model import Program
from repro.core.policies import PolicyFactory, fair_policy, nonfair_policy
from repro.engine.coverage import CoverageTracker
from repro.engine.executor import ExecutorConfig
from repro.engine.replay import explain_deadlock, replay_schedule
from repro.engine.results import (
    DivergenceKind,
    ExecutionResult,
    ExplorationResult,
    Outcome,
    format_trace,
)
from repro.engine.strategies import (
    BfsStrategy,
    DfsStrategy,
    DporStrategy,
    ExplorationLimits,
    IcbStrategy,
    RandomWalkStrategy,
    SleepSetStrategy,
    merge_sweeps,
)
from repro.resilience import (
    CheckpointStore,
    GracefulStop,
    ResilienceController,
    ResilienceOptions,
)

#: Back-compat alias (the merge logic moved to the strategies package).
_merge_sweeps = merge_sweeps

#: Divergence kinds that indicate program errors (as opposed to the
#: unfair divergences a baseline unfair search wastes time on).
_ERROR_DIVERGENCES = frozenset({
    DivergenceKind.LIVELOCK,
    DivergenceKind.GOOD_SAMARITAN_VIOLATION,
    DivergenceKind.TEMPORAL,
})


@dataclass
class CheckResult:
    """Verdict of one checker run."""

    program_name: str
    exploration: ExplorationResult
    warnings: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        """No safety violation, no deadlock, no crash and no erroneous
        divergence."""
        if self.exploration.found_violation:
            return False
        if self.exploration.crashes:
            return False
        return not any(
            r.divergence and r.divergence.kind in _ERROR_DIVERGENCES
            for r in self.exploration.divergences
        )

    @property
    def interrupted(self) -> bool:
        """The search stopped early on SIGINT/SIGTERM; results are partial."""
        return self.exploration.interrupted

    @property
    def violation(self) -> Optional[ExecutionResult]:
        if self.exploration.violations:
            return self.exploration.violations[0]
        if self.exploration.deadlocks:
            return self.exploration.deadlocks[0]
        return None

    @property
    def crashed(self) -> Optional[ExecutionResult]:
        """First quarantined crash, when crash capture was enabled."""
        if self.exploration.crashes:
            return self.exploration.crashes[0]
        return None

    @property
    def livelock(self) -> Optional[ExecutionResult]:
        records = self.exploration.livelocks()
        return records[0] if records else None

    @property
    def gs_violation(self) -> Optional[ExecutionResult]:
        records = self.exploration.gs_violations()
        return records[0] if records else None

    @property
    def divergence(self) -> Optional[ExecutionResult]:
        records = self.exploration.divergences
        return records[0] if records else None

    # ------------------------------------------------------------------
    def report(self, *, trace_limit: int = 60) -> str:
        lines = [self.exploration.summary()]
        record = self.violation
        if record is not None:
            label = ("deadlock" if record.violation is None
                     else str(record.violation))
            lines.append(f"counterexample ({label}):")
            lines.append(format_trace(record.trace, limit=trace_limit))
            lines.append(f"replay schedule: {record.schedule}")
        for divergent in self.exploration.divergences[:1]:
            lines.append(f"divergent execution ({divergent.divergence}):")
            lines.append(format_trace(divergent.trace, limit=trace_limit))
        for crashed in self.exploration.crashes[:1]:
            lines.append(f"quarantined crash ({crashed.crash}):")
            lines.append(format_trace(crashed.trace, limit=trace_limit))
            lines.append(f"replay schedule: {crashed.schedule}")
        lines.extend(f"warning: {w}" for w in self.warnings)
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(f"verdict: {verdict}")
        return "\n".join(lines)


class Checker:
    """Configure and run fair stateless model checking on one program."""

    def __init__(
        self,
        program: Program,
        *,
        fairness: bool = True,
        k_yield: int = 1,
        strategy: str = "dfs",
        preemption_bound: Optional[int] = None,
        depth_bound: Optional[int] = 5000,
        nonfair_completion: str = "random-completion",
        max_executions: Optional[int] = None,
        max_seconds: Optional[float] = None,
        stop_on_first_violation: bool = True,
        stop_on_first_divergence: bool = True,
        random_executions: int = 200,
        collect_coverage: bool = False,
        seed: int = 0,
        policy_factory: Optional[PolicyFactory] = None,
        observer: Optional["Observer"] = None,
        checkpoint_path: Optional[str] = None,
        checkpoint_interval: int = 200,
        execution_budget_seconds: Optional[float] = None,
        max_crashes: Optional[int] = None,
        quarantine_dir: Optional[str] = None,
        handle_signals: bool = True,
        workers: int = 1,
        shard_target: Optional[int] = None,
        snapshot_cache: bool = False,
        snapshot_interval: int = 16,
        snapshot_memory_mb: int = 64,
        external_stop=None,
        heartbeat_interval: float = 0.5,
        wedge_timeout: Optional[float] = 30.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be positive")
        self.program = program
        #: Optional :class:`repro.resilience.GracefulStop` another thread
        #: can ``request()`` to stop this search at the next execution
        #: boundary (the checking service's cancellation path).  Works
        #: with ``handle_signals=False``, off the main thread.
        self.external_stop = external_stop
        #: Worker processes for the sharded search (1 = serial, today's
        #: behavior; see docs/parallel.md).
        self.workers = workers
        self.shard_target = shard_target
        #: Seconds between worker liveness heartbeats and the silence
        #: threshold after which a worker counts as *wedged* (SIGSTOP,
        #: livelock) and is killed + its shard requeued.  ``None``
        #: disables wedge detection (docs/parallel.md).
        self.heartbeat_interval = heartbeat_interval
        self.wedge_timeout = wedge_timeout
        self.fairness = fairness
        #: Optional :class:`repro.obs.Observer`; None (the default) keeps
        #: the exploration hot path free of telemetry work.
        self.observer = observer
        if policy_factory is not None:
            self.policy_factory = policy_factory
        elif fairness:
            self.policy_factory = fair_policy(k_yield)
        else:
            self.policy_factory = nonfair_policy()
        self.strategy = strategy
        self.random_executions = random_executions
        self.seed = seed
        self.coverage = (CoverageTracker(observer=observer)
                         if collect_coverage else None)
        self.resilience_options = ResilienceOptions(
            checkpoint_path=checkpoint_path,
            checkpoint_interval=checkpoint_interval,
            execution_budget_seconds=execution_budget_seconds,
            max_crashes=max_crashes,
            quarantine_dir=quarantine_dir,
            handle_signals=handle_signals,
        )
        self.config = ExecutorConfig(
            depth_bound=depth_bound,
            on_depth_exceeded="divergence" if fairness else nonfair_completion,
            preemption_bound=preemption_bound,
            seed=seed,
            execution_budget_seconds=execution_budget_seconds,
            capture_crashes=self.resilience_options.capture_crashes,
            snapshot_cache=snapshot_cache,
            snapshot_interval=snapshot_interval,
            snapshot_memory_mb=snapshot_memory_mb,
        )
        self.limits = ExplorationLimits(
            max_executions=max_executions,
            max_seconds=max_seconds,
            stop_on_first_violation=stop_on_first_violation,
            stop_on_first_divergence=stop_on_first_divergence,
            max_crashes=max_crashes,
        )

    def _make_strategy(self, resilience=None):
        """Build the strategy object for this checker's configuration."""
        if self.strategy == "dfs":
            return DfsStrategy(
                self.program, self.policy_factory, self.config, self.limits,
                coverage=self.coverage, observer=self.observer,
                resilience=resilience,
            )
        if self.strategy == "icb":
            # Iterative context bounding: sweep preemption bounds 0..max
            # (the PLDI'07 strategy); `preemption_bound` is the ceiling.
            ceiling = (self.config.preemption_bound
                       if self.config.preemption_bound is not None else 2)
            return IcbStrategy(
                self.program, self.policy_factory, ceiling,
                dataclasses.replace(self.config, preemption_bound=None),
                self.limits, coverage=self.coverage,
                stop_on_violation=self.limits.stop_on_first_violation,
                observer=self.observer, resilience=resilience,
            )
        if self.strategy == "bfs":
            return BfsStrategy(
                self.program, self.policy_factory, self.config, self.limits,
                coverage=self.coverage, observer=self.observer,
                resilience=resilience,
            )
        if self.strategy == "random":
            return RandomWalkStrategy(
                self.program, self.policy_factory, self.config, self.limits,
                executions=self.random_executions, seed=self.seed,
                coverage=self.coverage, observer=self.observer,
                resilience=resilience,
            )
        if self.strategy == "por":
            return SleepSetStrategy(
                self.program, self.policy_factory,
                depth_bound=self.config.depth_bound, limits=self.limits,
                coverage=self.coverage, observer=self.observer,
                resilience=resilience, config=self.config,
            )
        if self.strategy == "dpor":
            return DporStrategy(
                self.program, self.policy_factory,
                depth_bound=self.config.depth_bound, limits=self.limits,
                coverage=self.coverage, observer=self.observer,
                resilience=resilience, config=self.config,
            )
        raise ValueError(
            f"unknown strategy {self.strategy!r} "
            f"(expected 'dfs', 'icb', 'bfs', 'random', 'por' or 'dpor')"
        )

    def run(self, *, resume_from: Optional[str] = None) -> CheckResult:
        """Run the search; ``resume_from`` continues a saved checkpoint.

        With any resilience option set (checkpointing, watchdog, crash
        quarantine) the search also converts the first SIGINT/SIGTERM
        into a graceful stop: a final checkpoint is flushed and the
        partial results come back with ``stop_reason="interrupted"``.

        With ``workers > 1`` the schedule space is sharded across a pool
        of worker processes (docs/parallel.md); counted sweeps merge to
        the same totals and verdicts as a serial run.
        """
        if self.workers > 1:
            return self._run_parallel(resume_from)
        options = self.resilience_options
        controller = None
        if (options.enabled or resume_from is not None
                or self.external_stop is not None):
            controller = ResilienceController(
                options,
                program=self.program,
                policy_name=self.policy_factory().name,
                config=self.config,
                observer=self.observer,
            )
            if self.external_stop is not None:
                controller.attach_stop(self.external_stop)
        strategy = self._make_strategy(resilience=controller)
        resume_warnings: List[str] = []
        if resume_from is not None:
            payload, resume_warnings = self._load_resume(resume_from)
            strategy.load_state_dict(payload["state"])

        with self._search_span():
            if (controller is not None and options.handle_signals
                    and self.external_stop is None):
                with GracefulStop() as stop:
                    controller.attach_stop(stop)
                    raw = strategy.explore()
            else:
                raw = strategy.explore()

        if self.strategy == "icb":
            exploration = merge_sweeps(self.program.name,
                                       self.policy_factory().name, raw)
        else:
            exploration = raw

        return CheckResult(
            program_name=self.program.name,
            exploration=exploration,
            warnings=self._build_warnings(exploration,
                                          extra=resume_warnings),
        )

    def _load_resume(self, resume_from: str):
        """Load a resume checkpoint, surviving a corrupt primary.

        A truncated or corrupt checkpoint is quarantined and the
        previous rotation snapshot loaded instead (``checkpoint.
        recovered`` event + a result warning); only a checkpoint with
        *no* loadable snapshot at all raises.
        """
        store = CheckpointStore(resume_from)
        payload, recovered, quarantined = store.load_or_recover()
        warnings: List[str] = []
        if recovered:
            note = (f"checkpoint {resume_from} was corrupt; resumed from "
                    f"the previous snapshot")
            if quarantined is not None:
                note += f" (bad file quarantined at {quarantined})"
            warnings.append(note)
            if self.observer is not None:
                self.observer.checkpoint_recovered(
                    str(resume_from),
                    str(quarantined) if quarantined else None)
        recorded = payload.get("program")
        if recorded not in (None, self.program.name):
            raise ValueError(
                f"checkpoint was recorded for program {recorded!r}, "
                f"got {self.program.name!r}"
            )
        return payload, warnings

    def _search_span(self):
        """Wall-clock span around the whole search (Chrome-trace export
        root; a no-op context without an observer)."""
        if self.observer is None:
            return nullcontext()
        return self.observer.spans.measure(
            f"search {self.program.name}", "search",
            strategy=self.strategy, workers=self.workers)

    def _build_warnings(self, exploration: ExplorationResult,
                        extra: Optional[List[str]] = None) -> List[str]:
        options = self.resilience_options
        warnings: List[str] = list(extra or [])
        if exploration.interrupted:
            note = "search interrupted; results are partial"
            if options.checkpoint_path is not None:
                note += (f" (resume with the checkpoint at "
                         f"{options.checkpoint_path})")
            warnings.append(note)
        elif exploration.limit_hit:
            warnings.append(
                "search stopped by a resource limit before exhausting the "
                "bounded execution tree"
            )
        for record in exploration.divergences:
            if record.divergence and record.divergence.kind is DivergenceKind.UNFAIR:
                warnings.append(
                    f"unfair divergence observed ({record.divergence.detail}); "
                    f"enable fairness to prune such schedules"
                )
        return warnings

    def _run_parallel(self, resume_from: Optional[str]) -> CheckResult:
        """The ``workers > 1`` path: shard, fan out, merge."""
        from repro.parallel import ParallelCoordinator

        options = self.resilience_options
        controller = None
        if (options.enabled or resume_from is not None
                or self.external_stop is not None):
            controller = ResilienceController(
                options,
                program=self.program,
                policy_name=self.policy_factory().name,
                config=self.config,
                observer=self.observer,
            )
            if self.external_stop is not None:
                controller.attach_stop(self.external_stop)
        max_bound = (self.config.preemption_bound
                     if self.config.preemption_bound is not None else 2)
        coordinator = ParallelCoordinator(
            self.program, self.policy_factory, self.config, self.limits,
            strategy=self.strategy,
            workers=self.workers,
            shard_target=self.shard_target,
            seed=self.seed,
            random_executions=self.random_executions,
            max_bound=max_bound,
            coverage=self.coverage,
            observer=self.observer,
            resilience=controller,
            resilience_options=options,
            heartbeat_interval=self.heartbeat_interval,
            wedge_timeout=self.wedge_timeout,
        )
        resume_warnings: List[str] = []
        if resume_from is not None:
            payload, resume_warnings = self._load_resume(resume_from)
            coordinator.load_state_dict(payload["state"])

        with self._search_span():
            if (controller is not None and options.handle_signals
                    and self.external_stop is None):
                with GracefulStop() as stop:
                    controller.attach_stop(stop)
                    exploration = coordinator.run()
            else:
                exploration = coordinator.run()

        return CheckResult(
            program_name=self.program.name,
            exploration=exploration,
            warnings=self._build_warnings(
                exploration,
                extra=resume_warnings + coordinator.warnings),
        )

    # ------------------------------------------------------------------
    def replay(self, record: ExecutionResult) -> ExecutionResult:
        """Reproduce a counterexample found by :meth:`run` with a full trace."""
        return replay_schedule(
            self.program, record.decisions, self.policy_factory, self.config,
        )

    def explain_deadlock(self, record: ExecutionResult) -> str:
        """Describe the wait-for set of a deadlocked execution."""
        return explain_deadlock(
            self.program, record, self.policy_factory, self.config,
        )

    def confirm_divergence(self, record: ExecutionResult, *,
                           factor: int = 8,
                           max_period: int = 64) -> ExecutionResult:
        """Re-examine a divergent execution at a much larger bound.

        The paper's protocol: a divergence warning at bound *B* may be a
        false alarm when *B* is too small — "the user simply increases
        the bound and runs the model checker again".  A divergence is
        *demonic*: extending it needs the scheduler to keep making the
        cycle-preserving choices.  So this detects the period of the
        recorded schedule's suffix and **pumps** it — replays the
        schedule with the periodic tail repeated out to ``factor × B``
        transitions.  If some pumping keeps the program in its cycle the
        divergence is confirmed (and reclassified over the longer
        suffix); if every candidate period escapes (the program
        terminates or the schedule stops fitting), the warning was an
        artifact of the small bound and the terminating record is
        returned.
        """
        if self.config.depth_bound is None:
            raise ValueError("confirm_divergence needs a depth bound")
        target = self.config.depth_bound * factor
        extended = dataclasses.replace(
            self.config,
            depth_bound=target,
            trace_window=max(512, self.config.depth_bound),
            divergence_window=max(256, self.config.depth_bound // 2),
        )

        decisions = list(record.decisions)
        best: Optional[ExecutionResult] = None
        for period in range(1, min(max_period, len(decisions) // 2) + 1):
            if decisions[-period:] != decisions[-2 * period:-period]:
                continue
            pattern = [d.index for d in decisions[-period:]]
            repeats = max(1, (target - len(decisions)) // period + 1)
            guide = [d.index for d in decisions] + pattern * repeats
            try:
                result = replay_schedule(
                    self.program, guide, self.policy_factory, extended,
                    trace_window=extended.trace_window,
                )
            except ValueError:
                continue  # the pumped schedule stopped fitting
            if result.outcome is Outcome.DIVERGENCE:
                return result  # the cycle pumps: genuinely divergent
            best = best or result
        if best is not None:
            return best
        # No periodic suffix at all: fall back to default continuation.
        return replay_schedule(
            self.program, [d.index for d in decisions],
            self.policy_factory, extended,
            trace_window=extended.trace_window,
        )


def check(program: Program, **kwargs) -> CheckResult:
    """One-shot convenience wrapper around :class:`Checker`."""
    return Checker(program, **kwargs).run()
