"""Acyclic priority relation over threads (the relation ``P`` of Algorithm 1).

The fair scheduler of Musuvathi & Qadeer (PLDI 2008) maintains a relation
``P ⊆ Tid × Tid`` in every state.  An edge ``(t, u) ∈ P`` means thread ``t``
has *lower* priority than thread ``u``: ``t`` may be scheduled only in states
where ``u`` is disabled.  Formally the set of schedulable threads is::

    T = ES \\ pre(P, ES)       where  pre(R, X) = {x | ∃y. (x, y) ∈ R ∧ y ∈ X}

Theorem 3 of the paper shows that the algorithm keeps ``P`` acyclic, which
guarantees ``T = ∅  ⇔  ES = ∅`` (the fair scheduler never reports a false
deadlock).  :meth:`PriorityRelation.is_acyclic` lets tests check that
invariant directly.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, Mapping, Set, Tuple

Tid = Hashable

_EMPTY: FrozenSet = frozenset()


class PriorityRelation:
    """A mutable binary relation on thread ids, stored as out-edge sets.

    ``self._out[t]`` is the set of threads ``u`` with ``(t, u)`` in the
    relation, i.e. the threads that currently outrank ``t``.

    The out-edge sets are stored as *immutable* frozensets and replaced
    (never mutated in place) on every update.  This copy-on-write layout
    is what makes :meth:`snapshot_state` O(threads-with-edges): a
    snapshot is a shallow dict copy whose values are shared with the
    live relation — and with every other snapshot taken while those
    entries stay unchanged (structural sharing, see
    ``docs/performance.md``).
    """

    __slots__ = ("_out",)

    def __init__(self, edges: Iterable[Tuple[Tid, Tid]] = ()) -> None:
        self._out: Dict[Tid, FrozenSet[Tid]] = {}
        for t, u in edges:
            self.add_edge(t, u)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_edge(self, t: Tid, u: Tid) -> None:
        """Add the edge ``(t, u)``: deprioritize ``t`` below ``u``."""
        if t == u:
            raise ValueError("a thread cannot be deprioritized below itself")
        current = self._out.get(t, _EMPTY)
        if u not in current:
            self._out[t] = current | {u}

    def add_edges(self, t: Tid, targets: Iterable[Tid]) -> None:
        """Add edges ``{t} × targets`` (line 25 of Algorithm 1)."""
        targets = frozenset(targets) - {t}
        if targets:
            current = self._out.get(t, _EMPTY)
            if not targets <= current:
                self._out[t] = current | targets

    def remove_sink(self, t: Tid) -> None:
        """Remove every edge whose sink is ``t`` (line 13 of Algorithm 1).

        Scheduling ``t`` lowers its relative priority: threads that were
        waiting for ``t`` to be disabled are released.
        """
        for src in list(self._out):
            targets = self._out[src]
            if t in targets:
                remaining = targets - {t}
                if remaining:
                    self._out[src] = remaining
                else:
                    del self._out[src]

    def clear(self) -> None:
        self._out.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def successors(self, t: Tid) -> FrozenSet[Tid]:
        """Threads that currently outrank ``t``."""
        return self._out.get(t, _EMPTY)

    def blocked(self, enabled: FrozenSet[Tid]) -> Set[Tid]:
        """``pre(P, enabled)``: threads blocked by an enabled higher-priority
        thread."""
        return {
            t
            for t, targets in self._out.items()
            if not targets.isdisjoint(enabled)
        }

    def schedulable(self, enabled: FrozenSet[Tid]) -> FrozenSet[Tid]:
        """``T = enabled \\ pre(P, enabled)`` (line 7 of Algorithm 1)."""
        if not self._out:  # hot path: empty relation blocks nothing
            return enabled if isinstance(enabled, frozenset) \
                else frozenset(enabled)
        blocked = self.blocked(enabled)
        if not blocked:
            return enabled if isinstance(enabled, frozenset) \
                else frozenset(enabled)
        return frozenset(enabled) - blocked

    def edges(self) -> Iterator[Tuple[Tid, Tid]]:
        for t, targets in self._out.items():
            for u in targets:
                yield (t, u)

    def edge_count(self) -> int:
        return sum(len(targets) for targets in self._out.values())

    def __contains__(self, edge: Tuple[Tid, Tid]) -> bool:
        t, u = edge
        return u in self._out.get(t, ())

    def __bool__(self) -> bool:
        return any(self._out.values())

    def is_acyclic(self) -> bool:
        """Check acyclicity by iterated sink elimination (Theorem 3 invariant)."""
        out = {t: set(targets) for t, targets in self._out.items() if targets}
        nodes: Set[Tid] = set(out)
        for targets in out.values():
            nodes.update(targets)
        while nodes:
            # A "maximal" node has no outgoing edge inside the remaining graph.
            sinks = {n for n in nodes if not (out.get(n, set()) & nodes)}
            if not sinks:
                return False
            nodes -= sinks
        return True

    def copy(self) -> "PriorityRelation":
        clone = PriorityRelation()
        # Values are immutable frozensets: a shallow dict copy is a full
        # copy as far as any caller can observe.
        clone._out = {t: targets for t, targets in self._out.items() if targets}
        return clone

    # ------------------------------------------------------------------
    # Persistent-snapshot protocol (docs/performance.md)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Mapping[Tid, FrozenSet[Tid]]:
        """An immutable-by-convention snapshot of the relation.

        O(threads-with-edges): the frozenset values are shared, not
        copied, so snapshots taken while the relation is quiescent cost
        a small dict copy and nothing else.
        """
        return dict(self._out)

    def restore_state(self, state: Mapping[Tid, FrozenSet[Tid]]) -> None:
        """Adopt a :meth:`snapshot_state` value (shared, never mutated)."""
        self._out = dict(state)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PriorityRelation):
            return NotImplemented
        return set(self.edges()) == set(other.edges())

    def __hash__(self) -> int:  # pragma: no cover - relations are mutable
        raise TypeError("PriorityRelation is unhashable")

    def __repr__(self) -> str:
        pairs = sorted(self.edges(), key=repr)
        inner = ", ".join(f"({t!r}, {u!r})" for t, u in pairs)
        return f"PriorityRelation({{{inner}}})"
