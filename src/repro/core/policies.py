"""Scheduling policies: which threads may the demonic scheduler pick?

A *policy* narrows the enabled set ``ES`` of each state to the schedulable
set ``T`` the search branches over.  The engine creates one policy object
per execution (policies are stateful — the fair policy carries Algorithm 1's
``P``/``E``/``D``/``S``) and feeds it every executed transition.

Provided policies:

* :class:`FairPolicy` — the paper's contribution (Algorithm 1), optionally
  parameterized by ``k`` to process only every ``k``-th yield of a thread
  (the generalization at the end of Section 3).
* :class:`NonfairPolicy` — the standard fully nondeterministic scheduler of
  prior stateless model checkers (``T = ES``); the paper's baseline.
* :class:`RoundRobinPolicy` — a deterministic fair-ish scheduler kept as a
  cautionary baseline: the paper notes it "does not consider many
  interleavings" and is useless for coverage.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, FrozenSet, Hashable, Optional

from repro.core.fairness import FairSchedulerState
from repro.core.model import StepInfo

Tid = Hashable

PolicyFactory = Callable[[], "SchedulingPolicy"]


class SchedulingPolicy(abc.ABC):
    """Per-execution scheduling filter."""

    #: Human-readable name used in reports and benchmark tables.
    name: str = "policy"
    #: True when the policy guarantees Theorem 1 (fair divergences only).
    is_fair: bool = False

    @abc.abstractmethod
    def schedulable(self, enabled: FrozenSet[Tid]) -> FrozenSet[Tid]:
        """Compute ``T`` from ``ES`` for the current state."""

    def observe_step(self, info: StepInfo) -> None:
        """Called after each executed transition."""

    def register_thread(self, tid: Tid) -> None:
        """Called for every thread existing at the start of the execution."""

    def fairness_blocked(self, tid: Tid, enabled: FrozenSet[Tid]) -> bool:
        """True iff ``tid`` is enabled but excluded from ``T`` by priority.

        Context-bounded search must not count a context switch forced this
        way as a preemption (Section 4 of the paper).
        """
        return False

    # ------------------------------------------------------------------
    # Persistent-snapshot protocol.
    #
    # ``snapshot_state()`` returns an immutable-by-convention value that
    # ``restore_state()`` can later apply to *any* fresh instance of the
    # same policy configuration.  The prefix-snapshot cache
    # (engine/snapshots.py) uses this pair instead of ``copy.deepcopy``:
    # built-in policies return structurally shared values (dicts of
    # frozensets), making capture and restore O(changed) rather than
    # O(total state).  Policies that do not override these fall back to
    # a deepcopy inside the cache — correct, just slower.
    # ------------------------------------------------------------------
    def snapshot_state(self) -> object:
        """Capture the policy's mutable state as a persistent value."""
        raise NotImplementedError

    def restore_state(self, state: object) -> None:
        """Reset this instance to a previously captured ``snapshot_state``."""
        raise NotImplementedError


class NonfairPolicy(SchedulingPolicy):
    """The classical demonic scheduler: every enabled thread is schedulable."""

    name = "nonfair"
    is_fair = False

    def schedulable(self, enabled: FrozenSet[Tid]) -> FrozenSet[Tid]:
        return enabled

    def snapshot_state(self) -> object:  # stateless
        return None

    def restore_state(self, state: object) -> None:
        pass


class FairPolicy(SchedulingPolicy):
    """Algorithm 1 as a policy, with the optional ``k``-th-yield parameter.

    With ``k > 1`` only every ``k``-th yield of each thread is *processed*
    (window bookkeeping and edge insertion); intervening yields are treated
    as ordinary transitions.  This recovers soundness for programs whose
    states need executions with yield count up to ``k - 1`` (Theorems 5/6
    generalized).
    """

    is_fair = True

    def __init__(self, k: int = 1, *, check_acyclic: bool = False) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self._k = k
        self._state = FairSchedulerState(check_acyclic=check_acyclic)
        self._yield_counts: Dict[Tid, int] = {}
        self.name = "fair" if k == 1 else f"fair(k={k})"

    @property
    def algorithm_state(self) -> FairSchedulerState:
        """The underlying Algorithm 1 state (exposed for tests/Fig. 4)."""
        return self._state

    def register_thread(self, tid: Tid) -> None:
        self._state.register_thread(tid)

    def schedulable(self, enabled: FrozenSet[Tid]) -> FrozenSet[Tid]:
        return self._state.schedulable(enabled)

    def observe_step(self, info: StepInfo) -> None:
        if info.yielded and self._k > 1:
            count = self._yield_counts.get(info.tid, 0) + 1
            self._yield_counts[info.tid] = count
            if count % self._k != 0:
                info = StepInfo(
                    tid=info.tid,
                    enabled_before=info.enabled_before,
                    enabled_after=info.enabled_after,
                    yielded=False,
                    spawned=info.spawned,
                    operation=info.operation,
                )
        self._state.observe_step(info)

    def fairness_blocked(self, tid: Tid, enabled: FrozenSet[Tid]) -> bool:
        return tid in enabled and tid not in self._state.schedulable(enabled)

    def snapshot_state(self) -> object:
        return (self._state.snapshot_state(), dict(self._yield_counts))

    def restore_state(self, state: object) -> None:
        algo_state, yield_counts = state
        self._state.restore_state(algo_state)
        self._yield_counts = dict(yield_counts)


class RoundRobinPolicy(SchedulingPolicy):
    """Deterministic round-robin over a fixed thread order.

    Fair but not demonic: it yields exactly one schedule.  Used in tests
    and ablations to demonstrate why fairness alone is insufficient for
    coverage (Section 2).
    """

    name = "round-robin"
    is_fair = True

    def __init__(self) -> None:
        self._order: list = []
        self._last: Optional[Tid] = None

    def register_thread(self, tid: Tid) -> None:
        if tid not in self._order:
            self._order.append(tid)

    def schedulable(self, enabled: FrozenSet[Tid]) -> FrozenSet[Tid]:
        if not enabled:
            return frozenset()
        for tid in enabled:
            if tid not in self._order:
                self._order.append(tid)
        if self._last in self._order:
            start = self._order.index(self._last) + 1
        else:
            start = 0
        n = len(self._order)
        for offset in range(n):
            candidate = self._order[(start + offset) % n]
            if candidate in enabled:
                return frozenset({candidate})
        return frozenset()

    def observe_step(self, info: StepInfo) -> None:
        self._last = info.tid
        for spawned in info.spawned:
            self.register_thread(spawned)

    def snapshot_state(self) -> object:
        return (tuple(self._order), self._last)

    def restore_state(self, state: object) -> None:
        order, last = state
        self._order = list(order)
        self._last = last


def fair_policy(k: int = 1, *, check_acyclic: bool = False) -> PolicyFactory:
    """Factory of :class:`FairPolicy` instances for the exploration engine."""
    return lambda: FairPolicy(k, check_acyclic=check_acyclic)


def nonfair_policy() -> PolicyFactory:
    """Factory of :class:`NonfairPolicy` instances."""
    return NonfairPolicy


def round_robin_policy() -> PolicyFactory:
    """Factory of :class:`RoundRobinPolicy` instances."""
    return RoundRobinPolicy
