"""Algorithm 1 of the paper: the fair, demonic scheduler state machine.

The scheduler maintains, per state, the priority relation ``P`` plus three
auxiliary per-thread predicates describing the current *window* of each
thread (a window of ``t`` spans from just after one yielding transition of
``t`` to just after the next):

* ``S(t)`` — threads scheduled since the last yield of ``t``;
* ``E(t)`` — threads continuously enabled since the last yield of ``t``;
* ``D(t)`` — threads disabled by some transition of ``t`` in the window.

On a yielding transition of ``t`` the scheduler computes::

    H = (E(t) ∪ D(t)) \\ S(t)

— the threads ``t`` should have given a chance to but did not — and adds
the edges ``{t} × H`` to ``P``, deprioritizing the yielding thread.
Scheduling ``t`` removes all edges with sink ``t``.

Initialization matches the paper exactly: ``E(u) = ∅`` and
``D(u) = S(u) = Tid``, which guarantees the *first* yield of any thread adds
no edges.  We represent the ``D = S = Tid`` phase with a closed-window flag
(``_window_open[u] = False``); this also generalizes soundly to dynamic
thread creation (threads created mid-execution start with a closed window,
exactly the paper's convention applied at creation time).

The class is deliberately independent of any particular program
representation: callers feed it the observations of each transition
(:class:`repro.core.model.StepInfo`) and ask it for the schedulable set.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Tuple

from repro.core.model import StepInfo
from repro.core.priority import PriorityRelation

Tid = Hashable

_EMPTY: FrozenSet = frozenset()


class FairSchedulerState:
    """Mutable state of Algorithm 1 for one execution.

    The per-thread window sets ``E``/``D``/``S`` are stored as immutable
    frozensets replaced copy-on-write: an update that changes nothing
    costs a set comparison, an update that changes something rebinds one
    dict slot to a fresh frozenset.  That layout makes
    :meth:`snapshot_state` a handful of shallow dict copies whose values
    are *shared* between the live state and every snapshot — the
    structural sharing behind the engine's O(changed) prefix-snapshot
    capture (docs/performance.md).
    """

    __slots__ = ("priority", "_E", "_D", "_S", "_window_open", "_check_acyclic")

    def __init__(
        self,
        threads: Iterable[Tid] = (),
        *,
        check_acyclic: bool = False,
    ) -> None:
        self.priority = PriorityRelation()
        self._E: Dict[Tid, FrozenSet[Tid]] = {}
        self._D: Dict[Tid, FrozenSet[Tid]] = {}
        self._S: Dict[Tid, FrozenSet[Tid]] = {}
        self._window_open: Dict[Tid, bool] = {}
        self._check_acyclic = check_acyclic
        for t in threads:
            self.register_thread(t)

    # ------------------------------------------------------------------
    def register_thread(self, t: Tid) -> None:
        """Install the paper's initial values for a (possibly new) thread."""
        if t in self._window_open:
            return
        self._E[t] = _EMPTY
        self._D[t] = _EMPTY
        self._S[t] = _EMPTY
        # Closed window encodes D(t) = S(t) = Tid: the first yield of t
        # opens the window and adds no priority edges.
        self._window_open[t] = False

    def known_threads(self) -> FrozenSet[Tid]:
        return frozenset(self._window_open)

    # ------------------------------------------------------------------
    def schedulable(self, enabled: FrozenSet[Tid]) -> FrozenSet[Tid]:
        """Line 7: ``T = ES \\ pre(P, ES)``."""
        return self.priority.schedulable(enabled)

    # ------------------------------------------------------------------
    def observe_step(self, info: StepInfo) -> None:
        """Lines 13–29 of Algorithm 1, applied after executing ``info.tid``."""
        t = info.tid
        if t not in self._window_open:  # defensive: auto-register strangers
            self.register_thread(t)
        for spawned in info.spawned:
            self.register_thread(spawned)

        # Line 13: next.P := curr.P \ (Tid × {t}) — drop edges with sink t.
        self.priority.remove_sink(t)

        enabled_after = info.enabled_after

        # Lines 14–22: update E, D, S for every thread's open window.
        # Copy-on-write: a window set is replaced only when it actually
        # changes, so unchanged frozensets keep being shared with any
        # snapshots that captured them.
        for u, is_open in self._window_open.items():
            if not is_open:
                continue  # closed window: E stays ∅, D = S = Tid implicitly
            E = self._E[u]
            if not E <= enabled_after:
                self._E[u] = E & enabled_after
            S = self._S[u]
            if t not in S:
                self._S[u] = S | {t}
        if self._window_open.get(t):
            disabled_now = info.enabled_before - enabled_after
            if disabled_now and not disabled_now <= self._D[t]:
                self._D[t] = self._D[t] | disabled_now

        # Lines 23–29: yielding transition ends t's window.
        if info.yielded:
            if self._window_open[t]:
                # H = (E(t) ∪ D(t)) \ S(t).  Note t ∈ S(t) (line 21 above),
                # so t never deprioritizes itself and P stays acyclic
                # together with the sink-removal at line 13 (Theorem 3).
                blame = (self._E[t] | self._D[t]) - self._S[t]
                self.priority.add_edges(t, blame)
                if self._check_acyclic and not self.priority.is_acyclic():
                    raise AssertionError(
                        "priority relation became cyclic — Theorem 3 broken"
                    )
            else:
                self._window_open[t] = True
            self._E[t] = frozenset(enabled_after)
            self._D[t] = _EMPTY
            self._S[t] = _EMPTY

    # ------------------------------------------------------------------
    # Introspection (used by tests and the Figure 4 emulation harness).
    # ------------------------------------------------------------------
    def window_open(self, t: Tid) -> bool:
        return self._window_open.get(t, False)

    def continuously_enabled(self, t: Tid) -> FrozenSet[Tid]:
        """``E(t)`` (empty while the window is closed, as in the paper)."""
        return self._E.get(t, _EMPTY)

    def disabled_by(self, t: Tid) -> FrozenSet[Tid]:
        """``D(t)``; ``Tid`` (all known threads) while the window is closed."""
        if not self._window_open.get(t, False):
            return self.known_threads()
        return self._D[t]

    def scheduled_since_yield(self, t: Tid) -> FrozenSet[Tid]:
        """``S(t)``; ``Tid`` while the window is closed."""
        if not self._window_open.get(t, False):
            return self.known_threads()
        return self._S[t]

    # ------------------------------------------------------------------
    # Persistent-snapshot protocol (docs/performance.md)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Tuple:
        """Capture (P, E, D, S, windows) with structural sharing.

        Five shallow dict copies; every value is an immutable frozenset
        (or bool) shared with the live state.  Cost is O(threads), not
        O(total set contents), and consecutive snapshots share all
        unchanged per-thread entries.
        """
        return (
            self.priority.snapshot_state(),
            dict(self._E),
            dict(self._D),
            dict(self._S),
            dict(self._window_open),
        )

    def restore_state(self, state: Tuple) -> None:
        """Adopt a :meth:`snapshot_state` value — O(threads), like capture.

        The snapshot's dicts are copied (so the restored state can keep
        mutating copy-on-write without touching the cached entry); the
        frozenset values are shared, never copied.
        """
        priority_state, E, D, S, window_open = state
        self.priority.restore_state(priority_state)
        self._E = dict(E)
        self._D = dict(D)
        self._S = dict(S)
        self._window_open = dict(window_open)

    def snapshot(self) -> Dict[str, object]:
        """A readable dump of (P, E, D, S) for traces and the Fig. 4 test."""
        return {
            "P": sorted(self.priority.edges(), key=repr),
            "E": {t: sorted(self.continuously_enabled(t), key=repr)
                  for t in self.known_threads()},
            "D": {t: sorted(self.disabled_by(t), key=repr)
                  for t in self.known_threads()},
            "S": {t: sorted(self.scheduled_since_yield(t), key=repr)
                  for t in self.known_threads()},
        }

    def __repr__(self) -> str:
        return f"FairSchedulerState(P={self.priority!r})"
