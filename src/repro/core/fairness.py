"""Algorithm 1 of the paper: the fair, demonic scheduler state machine.

The scheduler maintains, per state, the priority relation ``P`` plus three
auxiliary per-thread predicates describing the current *window* of each
thread (a window of ``t`` spans from just after one yielding transition of
``t`` to just after the next):

* ``S(t)`` — threads scheduled since the last yield of ``t``;
* ``E(t)`` — threads continuously enabled since the last yield of ``t``;
* ``D(t)`` — threads disabled by some transition of ``t`` in the window.

On a yielding transition of ``t`` the scheduler computes::

    H = (E(t) ∪ D(t)) \\ S(t)

— the threads ``t`` should have given a chance to but did not — and adds
the edges ``{t} × H`` to ``P``, deprioritizing the yielding thread.
Scheduling ``t`` removes all edges with sink ``t``.

Initialization matches the paper exactly: ``E(u) = ∅`` and
``D(u) = S(u) = Tid``, which guarantees the *first* yield of any thread adds
no edges.  We represent the ``D = S = Tid`` phase with a closed-window flag
(``_window_open[u] = False``); this also generalizes soundly to dynamic
thread creation (threads created mid-execution start with a closed window,
exactly the paper's convention applied at creation time).

The class is deliberately independent of any particular program
representation: callers feed it the observations of each transition
(:class:`repro.core.model.StepInfo`) and ask it for the schedulable set.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Set

from repro.core.model import StepInfo
from repro.core.priority import PriorityRelation

Tid = Hashable


class FairSchedulerState:
    """Mutable state of Algorithm 1 for one execution."""

    __slots__ = ("priority", "_E", "_D", "_S", "_window_open", "_check_acyclic")

    def __init__(
        self,
        threads: Iterable[Tid] = (),
        *,
        check_acyclic: bool = False,
    ) -> None:
        self.priority = PriorityRelation()
        self._E: Dict[Tid, Set[Tid]] = {}
        self._D: Dict[Tid, Set[Tid]] = {}
        self._S: Dict[Tid, Set[Tid]] = {}
        self._window_open: Dict[Tid, bool] = {}
        self._check_acyclic = check_acyclic
        for t in threads:
            self.register_thread(t)

    # ------------------------------------------------------------------
    def register_thread(self, t: Tid) -> None:
        """Install the paper's initial values for a (possibly new) thread."""
        if t in self._window_open:
            return
        self._E[t] = set()
        self._D[t] = set()
        self._S[t] = set()
        # Closed window encodes D(t) = S(t) = Tid: the first yield of t
        # opens the window and adds no priority edges.
        self._window_open[t] = False

    def known_threads(self) -> FrozenSet[Tid]:
        return frozenset(self._window_open)

    # ------------------------------------------------------------------
    def schedulable(self, enabled: FrozenSet[Tid]) -> FrozenSet[Tid]:
        """Line 7: ``T = ES \\ pre(P, ES)``."""
        return self.priority.schedulable(enabled)

    # ------------------------------------------------------------------
    def observe_step(self, info: StepInfo) -> None:
        """Lines 13–29 of Algorithm 1, applied after executing ``info.tid``."""
        t = info.tid
        if t not in self._window_open:  # defensive: auto-register strangers
            self.register_thread(t)
        for spawned in info.spawned:
            self.register_thread(spawned)

        # Line 13: next.P := curr.P \ (Tid × {t}) — drop edges with sink t.
        self.priority.remove_sink(t)

        enabled_after = info.enabled_after

        # Lines 14–22: update E, D, S for every thread's open window.
        for u, is_open in self._window_open.items():
            if not is_open:
                continue  # closed window: E stays ∅, D = S = Tid implicitly
            self._E[u].intersection_update(enabled_after)
            self._S[u].add(t)
        if self._window_open.get(t):
            disabled_now = info.enabled_before - enabled_after
            if disabled_now:
                self._D[t].update(disabled_now)

        # Lines 23–29: yielding transition ends t's window.
        if info.yielded:
            if self._window_open[t]:
                # H = (E(t) ∪ D(t)) \ S(t).  Note t ∈ S(t) (line 21 above),
                # so t never deprioritizes itself and P stays acyclic
                # together with the sink-removal at line 13 (Theorem 3).
                blame = (self._E[t] | self._D[t]) - self._S[t]
                self.priority.add_edges(t, blame)
                if self._check_acyclic and not self.priority.is_acyclic():
                    raise AssertionError(
                        "priority relation became cyclic — Theorem 3 broken"
                    )
            else:
                self._window_open[t] = True
            self._E[t] = set(enabled_after)
            self._D[t] = set()
            self._S[t] = set()

    # ------------------------------------------------------------------
    # Introspection (used by tests and the Figure 4 emulation harness).
    # ------------------------------------------------------------------
    def window_open(self, t: Tid) -> bool:
        return self._window_open.get(t, False)

    def continuously_enabled(self, t: Tid) -> FrozenSet[Tid]:
        """``E(t)`` (empty while the window is closed, as in the paper)."""
        return frozenset(self._E.get(t, ()))

    def disabled_by(self, t: Tid) -> FrozenSet[Tid]:
        """``D(t)``; ``Tid`` (all known threads) while the window is closed."""
        if not self._window_open.get(t, False):
            return self.known_threads()
        return frozenset(self._D[t])

    def scheduled_since_yield(self, t: Tid) -> FrozenSet[Tid]:
        """``S(t)``; ``Tid`` while the window is closed."""
        if not self._window_open.get(t, False):
            return self.known_threads()
        return frozenset(self._S[t])

    def snapshot(self) -> Dict[str, object]:
        """A readable dump of (P, E, D, S) for traces and the Fig. 4 test."""
        return {
            "P": sorted(self.priority.edges(), key=repr),
            "E": {t: sorted(self.continuously_enabled(t), key=repr)
                  for t in self.known_threads()},
            "D": {t: sorted(self.disabled_by(t), key=repr)
                  for t in self.known_threads()},
            "S": {t: sorted(self.scheduled_since_yield(t), key=repr)
                  for t in self.known_threads()},
        }

    def __repr__(self) -> str:
        return f"FairSchedulerState(P={self.priority!r})"
