"""Core algorithm layer: the paper's fair demonic scheduler.

This subpackage is pure: it knows nothing about how programs execute.  It
provides the priority relation ``P`` (:mod:`repro.core.priority`), the
Algorithm 1 state machine (:mod:`repro.core.fairness`), the scheduling
policies the engine branches over (:mod:`repro.core.policies`) and the
abstract program model (:mod:`repro.core.model`).
"""

from repro.core.fairness import FairSchedulerState
from repro.core.model import Program, ProgramInstance, RunStatus, StepInfo
from repro.core.policies import (
    FairPolicy,
    NonfairPolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
    fair_policy,
    nonfair_policy,
    round_robin_policy,
)
from repro.core.priority import PriorityRelation

__all__ = [
    "FairPolicy",
    "FairSchedulerState",
    "NonfairPolicy",
    "PriorityRelation",
    "Program",
    "ProgramInstance",
    "RoundRobinPolicy",
    "RunStatus",
    "SchedulingPolicy",
    "StepInfo",
    "fair_policy",
    "nonfair_policy",
    "round_robin_policy",
]
