"""Abstract program model used by the exploration engine.

The paper formalizes a multithreaded program as a set of threads over a
shared state with two state predicates per thread: ``enabled(t)`` and
``yield(t)`` (true iff ``t`` is enabled and executing ``t`` results in a
yield), plus a function ``NextState(s, t)``.

Two concrete models implement this interface:

* :class:`repro.runtime.vm.VirtualMachine` — executions of real Python
  workloads written against the instrumented :mod:`repro.sync` primitives
  (the CHESS-style runtime); and
* :class:`repro.statespace.adapter.TransitionSystemInstance` — explicit
  finite-state transition systems used for theory validation and for the
  stateful ground-truth searches of Table 2.

The engine is *stateless*: it never snapshots a :class:`ProgramInstance`.
To revisit a prefix it asks the :class:`Program` factory for a fresh
instance and replays the recorded choices.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Hashable, Optional, Tuple

Tid = Hashable


class RunStatus(enum.Enum):
    """Lifecycle of one program execution."""

    RUNNING = "running"
    TERMINATED = "terminated"  # every thread finished
    DEADLOCK = "deadlock"  # unfinished threads exist but none is enabled


@dataclass(frozen=True)
class StepInfo:
    """Observation of one transition, consumed by scheduling policies.

    Attributes mirror the quantities Algorithm 1 reads at each loop
    iteration: the enabled sets before/after the step and whether the
    executed transition was a yielding one (``curr.yield(t)``).
    """

    tid: Tid
    enabled_before: FrozenSet[Tid]
    enabled_after: FrozenSet[Tid]
    yielded: bool
    spawned: Tuple[Tid, ...] = field(default=())
    operation: str = ""


class ProgramInstance(abc.ABC):
    """One live execution of a program."""

    @abc.abstractmethod
    def thread_ids(self) -> FrozenSet[Tid]:
        """Ids of all threads that exist so far (running or finished)."""

    @abc.abstractmethod
    def enabled_threads(self) -> FrozenSet[Tid]:
        """The set ``ES`` of the current state."""

    @abc.abstractmethod
    def is_yielding(self, tid: Tid) -> bool:
        """The predicate ``yield(t)``: ``t`` is enabled and executing it
        from the current state performs a yield."""

    @abc.abstractmethod
    def step(self, tid: Tid) -> StepInfo:
        """Execute one transition of ``tid`` (``NextState``).

        Raises :class:`repro.runtime.errors.PropertyViolation` (or a
        subclass) if the transition violates a safety property.
        """

    def status(self) -> RunStatus:
        if self.enabled_threads():
            return RunStatus.RUNNING
        if self.has_live_threads():
            return RunStatus.DEADLOCK
        return RunStatus.TERMINATED

    @abc.abstractmethod
    def has_live_threads(self) -> bool:
        """True iff some thread exists that has not finished."""

    def state_signature(self) -> Optional[Hashable]:
        """A hashable abstraction of the current state, or ``None``.

        The paper measures state coverage by *manually added* state
        extraction (Section 4.2.1); models that support it return a
        canonical, hashable signature here.
        """
        return None


class Program(abc.ABC):
    """Factory producing fresh, deterministic executions of one program."""

    name: str = "program"

    @abc.abstractmethod
    def instantiate(self) -> ProgramInstance:
        """Create a new instance at the initial state.

        Successive instances must be *identical*: the engine relies on
        deterministic replay (same choices ⇒ same execution).
        """
