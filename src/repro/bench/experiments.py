"""Experiment runners shared by the benchmark suite and EXPERIMENTS.md.

Each function reproduces the measurement behind one of the paper's tables
or figures, scaled by caps (executions / wall seconds) so the whole
harness runs on a laptop.  Cells that hit a cap are marked with ``*`` —
the same convention the paper uses for its 5000-second timeouts.

Timing goes through :class:`repro.obs.metrics.MetricsRegistry` timers
(histograms named ``<experiment>.seconds``) rather than ad-hoc
``perf_counter`` pairs, so benchmark output and checker telemetry share
one JSON schema; pass your own registry to accumulate measurements across
calls and export them with :meth:`MetricsRegistry.dump_json`.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.model import Program
from repro.core.policies import fair_policy, nonfair_policy
from repro.engine.coverage import CoverageTracker
from repro.engine.executor import ExecutorConfig, RandomChooser, run_execution
from repro.engine.results import ExplorationResult, Outcome
from repro.engine.strategies import ExplorationLimits, explore_dfs
from repro.obs.metrics import MetricsRegistry
from repro.statespace.stateful import stateful_state_count


def _registry(metrics: Optional[MetricsRegistry]) -> MetricsRegistry:
    return metrics if metrics is not None else MetricsRegistry()


def bench_provenance() -> Dict[str, object]:
    """Machine identity stamped into benchmark JSON documents.

    ``repro bench compare`` reports differences in these fields as
    *drift* warnings: a baseline captured on another host or Python
    makes the timing comparison suspect rather than wrong.
    """
    import platform

    return {
        "host": platform.node(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }


def _record_search(registry: MetricsRegistry,
                   result: ExplorationResult) -> None:
    """Fold a search result into the shared checker-metrics schema."""
    registry.counter("executions").inc(result.executions)
    registry.counter("transitions").inc(result.transitions)
    if result.found_violation:
        registry.counter("violations").inc(len(result.violations))
        registry.counter("deadlocks").inc(len(result.deadlocks))
    if result.divergences:
        registry.counter("divergences").inc(len(result.divergences))

# ----------------------------------------------------------------------
# Figure 2: nonterminating executions vs depth bound
# ----------------------------------------------------------------------


def count_nonterminating_executions(
    program_factory: Callable[[], Program],
    depth_bound: int,
    *,
    max_executions: int = 200_000,
    max_seconds: float = 60.0,
    metrics: Optional[MetricsRegistry] = None,
) -> Tuple[int, int, float]:
    """Unfair depth-bounded DFS; returns (nonterminating, executions, s)."""
    registry = _registry(metrics)
    with registry.timer("fig2.search") as timer:
        result = explore_dfs(
            program_factory(),
            nonfair_policy(),
            ExecutorConfig(depth_bound=depth_bound, on_depth_exceeded="prune"),
            ExplorationLimits(max_executions=max_executions,
                              max_seconds=max_seconds,
                              stop_on_first_violation=False,
                              stop_on_first_divergence=False),
        )
    _record_search(registry, result)
    return (result.nonterminating_executions, result.executions,
            timer.seconds)


# ----------------------------------------------------------------------
# Table 2 / Figures 5-6: state coverage and search time
# ----------------------------------------------------------------------

@dataclass
class CoverageCell:
    """One cell of Table 2."""

    strategy: str  # "cb=1".."cb=3" or "dfs"
    fair: bool
    depth_bound: Optional[int]  # None for fair runs
    total_states: int
    states: int
    executions: int
    seconds: float
    timed_out: bool

    @property
    def label(self) -> str:
        mark = "*" if self.timed_out else ""
        return f"{self.states}{mark}"

    @property
    def full_coverage(self) -> bool:
        return self.states >= self.total_states


def _strategy_bound(strategy: str) -> Optional[int]:
    if strategy == "dfs":
        return None
    if strategy.startswith("cb="):
        return int(strategy.split("=", 1)[1])
    raise ValueError(f"unknown strategy {strategy!r}")


def measure_coverage(
    program_factory: Callable[[], Program],
    strategy: str,
    *,
    fair: bool,
    depth_bound: Optional[int] = None,
    divergence_bound: int = 400,
    total_states: Optional[int] = None,
    max_executions: int = 50_000,
    max_seconds: float = 20.0,
    seed: int = 0,
    metrics: Optional[MetricsRegistry] = None,
) -> CoverageCell:
    """One Table 2 cell: run the search, count covered states.

    Fair runs use the divergence bound (they terminate by Theorem 2 on
    fair-terminating programs); unfair runs prune at ``depth_bound`` and
    finish each pruned execution with random search, as the paper does.
    """
    registry = _registry(metrics)
    preemption_bound = _strategy_bound(strategy)
    if total_states is None:
        truth = stateful_state_count(
            program_factory(), preemption_bound=preemption_bound,
            depth_bound=divergence_bound,
        )
        total_states = truth.count

    coverage = CoverageTracker()
    if fair:
        config = ExecutorConfig(depth_bound=divergence_bound,
                                on_depth_exceeded="divergence",
                                preemption_bound=preemption_bound, seed=seed)
    else:
        config = ExecutorConfig(depth_bound=depth_bound,
                                on_depth_exceeded="random-completion",
                                preemption_bound=preemption_bound, seed=seed)
    with registry.timer("coverage.search") as timer:
        result = explore_dfs(
            program_factory(),
            fair_policy() if fair else nonfair_policy(),
            config,
            ExplorationLimits(max_executions=max_executions,
                              max_seconds=max_seconds,
                              stop_on_first_violation=False,
                              stop_on_first_divergence=False),
            coverage=coverage,
        )
    _record_search(registry, result)
    registry.counter("states.new").inc(coverage.count)
    return CoverageCell(
        strategy=strategy,
        fair=fair,
        depth_bound=depth_bound,
        total_states=total_states,
        states=coverage.count,
        executions=result.executions,
        seconds=timer.seconds,
        timed_out=result.limit_hit,
    )


def table2_rows(
    program_factory: Callable[[], Program],
    *,
    strategies: Sequence[str] = ("cb=1", "cb=2", "cb=3", "dfs"),
    depth_bounds: Sequence[int] = (20, 30, 40),
    divergence_bound: int = 400,
    max_executions: int = 50_000,
    max_seconds: float = 15.0,
    metrics: Optional[MetricsRegistry] = None,
) -> List[List[object]]:
    """All cells for one program configuration of Table 2.

    Row format: [strategy, total, with-fairness, nf db=..., ...].
    """
    registry = _registry(metrics)
    rows: List[List[object]] = []
    for strategy in strategies:
        preemption_bound = _strategy_bound(strategy)
        truth = stateful_state_count(
            program_factory(), preemption_bound=preemption_bound,
            depth_bound=divergence_bound,
        )
        fair_cell = measure_coverage(
            program_factory, strategy, fair=True,
            divergence_bound=divergence_bound, total_states=truth.count,
            max_executions=max_executions, max_seconds=max_seconds,
            metrics=registry,
        )
        row: List[object] = [strategy, truth.count, fair_cell.label]
        cells = [fair_cell]
        for depth_bound in depth_bounds:
            cell = measure_coverage(
                program_factory, strategy, fair=False,
                depth_bound=depth_bound, divergence_bound=divergence_bound,
                total_states=truth.count,
                max_executions=max_executions, max_seconds=max_seconds,
                metrics=registry,
            )
            row.append(cell.label)
            cells.append(cell)
        row.append(cells)  # raw cells for assertions (stripped on print)
        rows.append(row)
    return rows


def search_times(
    program_factory: Callable[[], Program],
    *,
    strategies: Sequence[str] = ("cb=1", "cb=2", "cb=3"),
    depth_bounds: Sequence[int] = (20, 30, 40),
    divergence_bound: int = 400,
    max_executions: int = 50_000,
    max_seconds: float = 15.0,
    metrics: Optional[MetricsRegistry] = None,
) -> List[List[object]]:
    """Figures 5/6: time to complete the search, fair vs unfair-with-db."""
    registry = _registry(metrics)
    rows: List[List[object]] = []
    for strategy in strategies:
        fair_cell = measure_coverage(
            program_factory, strategy, fair=True,
            divergence_bound=divergence_bound,
            max_executions=max_executions, max_seconds=max_seconds,
            metrics=registry,
        )
        row: List[object] = [strategy, f"{fair_cell.seconds:.2f}"]
        cells = [fair_cell]
        for depth_bound in depth_bounds:
            cell = measure_coverage(
                program_factory, strategy, fair=False,
                depth_bound=depth_bound,
                divergence_bound=divergence_bound,
                max_executions=max_executions, max_seconds=max_seconds,
                metrics=registry,
            )
            mark = "*" if cell.timed_out else ""
            row.append(f"{cell.seconds:.2f}{mark}")
            cells.append(cell)
        row.append(cells)
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Parallel speedup: the Fig. 5/6 sweep under Checker(workers=N)
# ----------------------------------------------------------------------


def parallel_speedup(
    program_factory: Callable[[], Program],
    *,
    worker_counts: Sequence[int] = (1, 4),
    strategy: str = "dfs",
    depth_bound: int = 400,
    preemption_bound: Optional[int] = None,
    shard_target: Optional[int] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Dict[str, object]:
    """One program's counted sweep at each worker count (docs/parallel.md).

    Every run must agree with the ``workers=1`` baseline on verdict,
    executions and transitions — that is the determinism contract, so a
    mismatch raises instead of being reported as a (meaningless) timing.
    Returns a JSON-ready dict with per-worker-count wall times and the
    speedup over the serial baseline.
    """
    from repro.checker import Checker

    registry = _registry(metrics)
    baseline: Optional[Dict[str, object]] = None
    runs: List[Dict[str, object]] = []
    for workers in worker_counts:
        with registry.timer(f"parallel.workers{workers}") as timer:
            result = Checker(
                program_factory(),
                strategy=strategy,
                depth_bound=depth_bound,
                preemption_bound=preemption_bound,
                stop_on_first_violation=False,
                stop_on_first_divergence=False,
                handle_signals=False,
                workers=workers,
                shard_target=shard_target,
            ).run()
        _record_search(registry, result.exploration)
        run = {
            "workers": workers,
            "seconds": round(timer.seconds, 3),
            "ok": result.ok,
            "executions": result.exploration.executions,
            "transitions": result.exploration.transitions,
        }
        if baseline is None:
            baseline = run
        else:
            for key in ("ok", "executions", "transitions"):
                if run[key] != baseline[key]:
                    raise AssertionError(
                        f"workers={workers} diverged from serial on {key}: "
                        f"{run[key]!r} != {baseline[key]!r}"
                    )
        run["speedup"] = round(float(baseline["seconds"]) / timer.seconds, 2)
        runs.append(run)
    return {
        "program": program_factory().name,
        "strategy": strategy,
        "depth_bound": depth_bound,
        "preemption_bound": preemption_bound,
        "cpu_count": os.cpu_count(),
        "runs": runs,
    }


# ----------------------------------------------------------------------
# Hot path: prefix replay cost with and without the snapshot cache
# ----------------------------------------------------------------------


def hotpath_replay(
    program_factory: Callable[[], Program],
    *,
    strategy: str = "dfs",
    depth_bound: int = 200,
    preemption_bound: Optional[int] = 2,
    snapshot_interval: int = 4,
    max_executions: int = 250,
    metrics: Optional[MetricsRegistry] = None,
) -> Dict[str, object]:
    """One program's counted sweep with the snapshot cache off, then on
    (docs/performance.md).

    Both runs must agree on verdict, executions and transitions — the
    cache is a pure optimization, so a mismatch raises instead of being
    reported as a (meaningless) timing.  Two numbers matter:
    ``executions.replayed_steps`` (prefix transitions re-executed through
    the full scheduling loop; with the cache on, transitions carried by
    ``fast_forward`` land in ``executions.restored_steps`` instead) and
    the wall-clock ``cache_speedup`` ratio (seconds-off / seconds-on) —
    machine-relative, so it is comparable across hosts where absolute
    seconds are not.  Returns a JSON-ready dict with both runs'
    counters, the replayed-steps reduction ratio and the speedup.
    """
    from repro.checker import Checker
    from repro.obs import Observer

    registry = _registry(metrics)
    baseline: Optional[Dict[str, object]] = None
    runs: List[Dict[str, object]] = []
    for cached in (False, True):
        observer = Observer()
        label = "cache-on" if cached else "cache-off"
        with registry.timer(f"hotpath.{label}") as timer:
            result = Checker(
                program_factory(),
                strategy=strategy,
                depth_bound=depth_bound,
                preemption_bound=preemption_bound,
                max_executions=max_executions,
                snapshot_cache=cached,
                snapshot_interval=snapshot_interval,
                stop_on_first_violation=False,
                stop_on_first_divergence=False,
                handle_signals=False,
                observer=observer,
            ).run()
        _record_search(registry, result.exploration)
        counters = observer.metrics
        run = {
            "snapshot_cache": cached,
            "seconds": round(timer.seconds, 3),
            "ok": result.ok,
            "executions": result.exploration.executions,
            "transitions": result.exploration.transitions,
            "replayed_steps":
                counters.counter("executions.replayed_steps").value,
            "restored_steps":
                counters.counter("executions.restored_steps").value,
            "snapshot_hits": counters.counter("snapshot.hits").value,
            "snapshot_misses": counters.counter("snapshot.misses").value,
            # Accounted snapshot-cache cost (docs/profiling.md): every
            # capture/restore perf_counter pair feeds these histograms.
            "capture_seconds": round(
                counters.histogram("snapshot.capture.seconds").total, 4),
            "refresh_seconds": round(
                counters.histogram(
                    "snapshot.capture.refresh.seconds").total, 4),
            "restore_seconds": round(
                counters.histogram("snapshot.restore.seconds").total, 4),
            "captured_bytes": counters.counter("snapshot.captured_bytes").value,
            "restored_bytes": counters.counter("snapshot.restored_bytes").value,
        }
        if baseline is None:
            baseline = run
        else:
            for key in ("ok", "executions", "transitions"):
                if run[key] != baseline[key]:
                    raise AssertionError(
                        f"snapshot cache changed the search on {key}: "
                        f"{run[key]!r} != {baseline[key]!r}"
                    )
        runs.append(run)
    replayed_off = int(baseline["replayed_steps"])
    replayed_on = int(runs[-1]["replayed_steps"])
    reduction = (float(replayed_off) / replayed_on
                 if replayed_on else float(replayed_off or 1))
    seconds_off = float(baseline["seconds"])
    seconds_on = float(runs[-1]["seconds"])
    speedup = seconds_off / seconds_on if seconds_on else 0.0
    return {
        "program": program_factory().name,
        "strategy": strategy,
        "depth_bound": depth_bound,
        "preemption_bound": preemption_bound,
        "snapshot_interval": snapshot_interval,
        "runs": runs,
        "replayed_reduction": round(reduction, 2),
        # Wall-clock ratio off/on: > 1.0 means the cache wins in seconds
        # on this machine.  A ratio survives host-speed differences, so
        # it is the gated metric in ``repro bench compare``.
        "cache_speedup": round(speedup, 2),
    }


# ----------------------------------------------------------------------
# Table 3: executions and time to the first bug
# ----------------------------------------------------------------------

@dataclass
class BugSearchResult:
    found: bool
    executions: Optional[int]
    seconds: float
    timed_out: bool

    @property
    def executions_label(self) -> str:
        return str(self.executions) if self.found else "-"

    @property
    def seconds_label(self) -> str:
        if self.found:
            return f"{self.seconds:.1f}"
        return f">{self.seconds:.0f}"


def find_bug(
    program_factory: Callable[[], Program],
    *,
    fair: bool,
    preemption_bound: Optional[int] = 2,
    nonfair_depth_bound: int = 250,
    divergence_bound: int = 400,
    max_executions: int = 100_000,
    max_seconds: float = 30.0,
    metrics: Optional[MetricsRegistry] = None,
) -> BugSearchResult:
    """Table 3 cell: DFS until the first safety violation.

    The unfair baseline uses the paper's configuration: depth bound 250
    with random completion.
    """
    registry = _registry(metrics)
    if fair:
        config = ExecutorConfig(depth_bound=divergence_bound,
                                on_depth_exceeded="divergence",
                                preemption_bound=preemption_bound)
    else:
        config = ExecutorConfig(depth_bound=nonfair_depth_bound,
                                on_depth_exceeded="random-completion",
                                preemption_bound=preemption_bound)
    with registry.timer("bugsearch") as timer:
        result = explore_dfs(
            program_factory(),
            fair_policy() if fair else nonfair_policy(),
            config,
            ExplorationLimits(max_executions=max_executions,
                              max_seconds=max_seconds,
                              stop_on_first_violation=True,
                              stop_on_first_divergence=False),
        )
    _record_search(registry, result)
    return BugSearchResult(
        found=result.found_violation,
        executions=result.first_violation_execution,
        seconds=timer.seconds,
        timed_out=result.limit_hit,
    )


# ----------------------------------------------------------------------
# Table 1: program characteristics
# ----------------------------------------------------------------------

def program_characteristics(
    program: Program,
    module,
    *,
    depth_bound: int = 100_000,
    seed: int = 0,
) -> Tuple[str, int, int, int]:
    """(name, LOC, threads, sync ops) for one full random execution.

    Mirrors Table 1: threads created and synchronization operations
    performed per execution.  Random scheduling is fair w.p. 1, so the
    execution terminates.
    """
    import inspect

    source = inspect.getsource(module)
    loc = len([line for line in source.splitlines()
               if line.strip() and not line.strip().startswith("#")])

    rng = random.Random(seed)
    record = run_execution(
        program, fair_policy()(), RandomChooser(rng),
        ExecutorConfig(depth_bound=depth_bound,
                       on_depth_exceeded="prune",
                       trace_window=depth_bound),
        completion_rng=rng,
    )
    if record.outcome not in (Outcome.TERMINATED, Outcome.DEADLOCK):
        raise RuntimeError(
            f"{program.name} did not finish a random execution "
            f"({record.outcome})"
        )
    threads = len({step.tid for step in record.trace})
    sync_ops = sum(1 for step in record.trace if step.operation != "start")
    return (program.name, loc, threads, sync_ops)
