"""Experiment harness: runners and table/series formatting for the
benchmarks that regenerate every table and figure of the paper."""
