"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render rows as a fixed-width table (the paper's tables, in ASCII)."""
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        rendered.append([str(cell) for cell in row])
    widths = [
        max(len(line[col]) for line in rendered)
        for col in range(len(headers))
    ]

    def fmt(line: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(line, widths))

    out = []
    if title:
        out.append(title)
    out.append(fmt(rendered[0]))
    out.append("  ".join("-" * width for width in widths))
    out.extend(fmt(line) for line in rendered[1:])
    return "\n".join(out)


def format_series(name: str, points: Iterable[tuple]) -> str:
    """Render an (x, y) series — the figures, as data."""
    lines = [name]
    for x, y in points:
        lines.append(f"  {x!s:>10}  {y}")
    return "\n".join(lines)
