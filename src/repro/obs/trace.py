"""JSONL trace writer and reader.

One event per line, in emission order — the cheapest durable format that
a later process (or a human with ``jq``) can stream.  The trace is
*replay-compatible*: :func:`schedule_from_events` recovers the decision
guide of any recorded execution, which
:func:`repro.engine.replay.replay_schedule` accepts verbatim.
"""

from __future__ import annotations

import json
import warnings
from typing import IO, Iterable, Iterator, List, Optional, Union

from repro.obs.events import (
    Event,
    EventSink,
    ExecutionFinished,
    SchedulingDecision,
    event_from_dict,
)


class JsonlTraceWriter(EventSink):
    """Writes each event as one JSON line to a file or stream."""

    def __init__(self, destination: Union[str, IO[str]]) -> None:
        if isinstance(destination, str):
            self._handle: IO[str] = open(destination, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = destination
            self._owns_handle = False
        self.events_written = 0

    def emit(self, event: Event) -> None:
        self._handle.write(json.dumps(event.to_dict(), default=str))
        self._handle.write("\n")
        self.events_written += 1

    def close(self) -> None:
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()


def read_jsonl(source: Union[str, IO[str], Iterable[str]], *,
               strict: bool = False) -> Iterator[Event]:
    """Yield events back from a JSONL trace (path, stream, or lines).

    A trace cut short by a crash or a full disk usually ends in a
    truncated line; by default such corrupt lines are *skipped* with a
    :class:`RuntimeWarning` naming the line number, so every event
    before the damage is still recovered.  ``strict=True`` raises
    :class:`ValueError` at the first bad line instead (for callers that
    must not silently lose events).
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            yield from _read_lines(handle, source, strict)
        return
    yield from _read_lines(source, "<stream>", strict)


def _read_lines(lines: Iterable[str], origin: str,
                strict: bool) -> Iterator[Event]:
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            event = event_from_dict(json.loads(line))
        except (json.JSONDecodeError, ValueError, KeyError,
                TypeError) as exc:
            if strict:
                raise ValueError(
                    f"{origin}:{number}: corrupt trace line: {exc}"
                ) from exc
            warnings.warn(
                f"{origin}:{number}: skipping corrupt trace line ({exc})",
                RuntimeWarning, stacklevel=3)
            continue
        yield event


def schedule_from_events(events: Iterable[Event],
                         execution: Optional[int] = None) -> List[int]:
    """Recover the replay guide of one recorded execution.

    With ``execution=None`` the last execution that finished with outcome
    ``violation``, ``deadlock`` or ``divergence`` is used (the one a user
    typically wants to replay); pass an index to pick explicitly.
    """
    decisions: dict = {}
    interesting: Optional[int] = None
    for event in events:
        if isinstance(event, SchedulingDecision):
            # Emission order is replay order (thread and data decisions
            # interleave within a step).
            decisions.setdefault(event.execution, []).append(event.index)
        elif isinstance(event, ExecutionFinished):
            if event.outcome in ("violation", "deadlock", "divergence"):
                interesting = event.execution
    target = execution if execution is not None else interesting
    if target is None or target not in decisions:
        raise ValueError(
            f"no recorded decisions for execution {target!r} "
            f"(recorded: {sorted(decisions)})"
        )
    return decisions[target]
