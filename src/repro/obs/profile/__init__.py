"""Profiling and trace analysis for the exploration engine.

The observer answers *what* a search did (events, counters, phase
totals); this package answers *where the time went*:

* :class:`DecisionProfiler` — sampling-free cost attribution to
  decision-sequence prefixes of the search tree, exportable as
  folded-stack text for flamegraph/speedscope
  (:meth:`DecisionProfiler.to_folded`);
* :class:`SpanRecorder` + :func:`write_chrome_trace` — wall-clock span
  timelines (shard lifecycle, worker activity, phase totals) merged into
  one Chrome trace-event JSON viewable in Perfetto;
* :func:`snapshot_amortization` — the prefix-snapshot cache's cost
  accounting: capture/restore seconds and bytes, break-even analysis,
  and a cache-on/off verdict (``repro profile snapshots``);
* :func:`compare_bench` — benchmark regression comparison with
  noise tolerances (``repro bench compare``).

See ``docs/profiling.md`` for the workflows.
"""

from repro.obs.profile.bench_compare import (
    BenchComparison,
    ComparedValue,
    compare_bench,
    load_bench,
)
from repro.obs.profile.chrome_trace import (
    chrome_trace_document,
    write_chrome_trace,
)
from repro.obs.profile.decision_profiler import DecisionNode, DecisionProfiler
from repro.obs.profile.snapshot_report import (
    format_snapshot_report,
    snapshot_amortization,
)
from repro.obs.profile.spans import Span, SpanRecorder

__all__ = [
    "BenchComparison",
    "ComparedValue",
    "DecisionNode",
    "DecisionProfiler",
    "Span",
    "SpanRecorder",
    "chrome_trace_document",
    "compare_bench",
    "format_snapshot_report",
    "load_bench",
    "snapshot_amortization",
    "write_chrome_trace",
]
