"""Snapshot-cache amortization: does the prefix cache pay for itself?

ROADMAP open item 1 in one measurement.  The prefix-snapshot cache
removes replayed prefix transitions (a 7× step reduction on the hotpath
workload) at the price of capture/restore work per execution — with the
persistent policy-snapshot protocol that work is O(changed) structural
sharing rather than a deepcopy of scheduler state, but on a small
enough program even cheap captures can cost more than the replay they
save.  This module runs the hotpath sweep twice — cache off, cache on —
with full cost accounting enabled and answers with numbers instead of a
guess:

* **accounting** — per-capture and per-restore seconds and bytes,
  recorded by the executor into the ``snapshot.capture.seconds`` /
  ``snapshot.capture.refresh.seconds`` / ``snapshot.restore.seconds``
  histograms and the ``snapshot.captured_bytes`` /
  ``snapshot.restored_bytes`` counters.  Refresh-only captures (the key
  was already cached; nothing is copied) are kept out of the capture
  histogram so its mean reflects real state captures.  Every
  ``perf_counter`` pair that feeds the ``snapshot`` phase timer also
  feeds one of these, so ``capture + refresh + restore`` accounts for
  (within noise, equals) the phase total;
* **amortization model** — the cache saves
  ``saved_steps × per_step_replay_seconds`` (per-step cost estimated
  from the cache-off run) and costs ``capture + restore`` seconds.
  The *break-even* per-step cost is ``overhead / saved_steps``: if a
  replayed transition costs less than that, the cache cannot win on
  this workload no matter how many steps it removes;
* **verdict** — recommend ``on`` only when the model nets positive AND
  the measured wall clock did not regress; either failure recommends
  ``off``.  (The model makes the verdict robust to machine noise; the
  measured delta keeps the model honest.)

``repro profile snapshots`` prints :func:`format_snapshot_report`.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

#: Measured wall-clock regressions beyond this fraction veto an "on"
#: verdict even when the amortization model nets positive.
DEFAULT_REGRESSION_TOLERANCE = 0.05


def _histogram_stats(metrics, name: str) -> Dict[str, object]:
    histogram = metrics.histogram(name)
    return {
        "count": histogram.count,
        "seconds": histogram.total,
        "mean_seconds": histogram.mean,
    }


def snapshot_amortization(
    program_factory: Callable[[], object],
    *,
    strategy: str = "dfs",
    depth_bound: int = 200,
    preemption_bound: Optional[int] = 2,
    snapshot_interval: int = 4,
    max_executions: Optional[int] = 250,
    snapshot_memory_mb: int = 64,
    regression_tolerance: float = DEFAULT_REGRESSION_TOLERANCE,
) -> Dict[str, object]:
    """Run the sweep cache-off then cache-on and amortize the costs.

    Defaults mirror ``benchmarks/test_hotpath.py`` so the report speaks
    to the committed BENCH_hotpath.json numbers.  Both runs must agree
    on verdict/executions/transitions (the cache is a pure
    optimization); a mismatch raises.
    """
    from repro.checker import Checker
    from repro.obs import Observer

    runs: List[Dict[str, object]] = []
    observers: List[Observer] = []
    for cached in (False, True):
        observer = Observer()
        start = time.perf_counter()
        result = Checker(
            program_factory(),
            strategy=strategy,
            depth_bound=depth_bound,
            preemption_bound=preemption_bound,
            max_executions=max_executions,
            snapshot_cache=cached,
            snapshot_interval=snapshot_interval,
            snapshot_memory_mb=snapshot_memory_mb,
            stop_on_first_violation=False,
            stop_on_first_divergence=False,
            handle_signals=False,
            observer=observer,
        ).run()
        wall = time.perf_counter() - start
        counters = observer.metrics
        runs.append({
            "snapshot_cache": cached,
            "wall_seconds": wall,
            "ok": result.ok,
            "executions": result.exploration.executions,
            "transitions": result.exploration.transitions,
            "replayed_steps":
                counters.counter("executions.replayed_steps").value,
            "restored_steps":
                counters.counter("executions.restored_steps").value,
            "snapshot_hits": counters.counter("snapshot.hits").value,
            "snapshot_misses": counters.counter("snapshot.misses").value,
        })
        observers.append(observer)
    off, on = runs
    for key in ("ok", "executions", "transitions"):
        if off[key] != on[key]:
            raise AssertionError(
                f"snapshot cache changed the search on {key}: "
                f"{on[key]!r} != {off[key]!r}"
            )

    on_metrics = observers[1].metrics
    capture = _histogram_stats(on_metrics, "snapshot.capture.seconds")
    capture["bytes"] = on_metrics.counter("snapshot.captured_bytes").value
    # Refresh-only captures (the key was already cached — an LRU touch,
    # no state captured) are timed separately so they aren't charged as
    # state copies; they still count toward the total overhead.
    refresh = _histogram_stats(on_metrics,
                               "snapshot.capture.refresh.seconds")
    restore = _histogram_stats(on_metrics, "snapshot.restore.seconds")
    restore["bytes"] = on_metrics.counter("snapshot.restored_bytes").value
    phase_seconds = observers[1].timers.totals.get("snapshot", 0.0)
    accounted = (float(capture["seconds"]) + float(refresh["seconds"])
                 + float(restore["seconds"]))
    accounting = {
        "capture": capture,
        "refresh": refresh,
        "restore": restore,
        "snapshot_phase_seconds": phase_seconds,
        "accounted_seconds": accounted,
        "accounted_fraction": (accounted / phase_seconds
                               if phase_seconds > 0 else None),
    }

    saved_steps = int(off["replayed_steps"]) - int(on["replayed_steps"])
    transitions = int(off["transitions"]) or 1
    per_step = float(off["wall_seconds"]) / transitions
    benefit = saved_steps * per_step
    overhead = accounted
    net = benefit - overhead
    measured_delta = float(on["wall_seconds"]) - float(off["wall_seconds"])
    model = {
        "saved_steps": saved_steps,
        "per_step_replay_seconds": per_step,
        "estimated_benefit_seconds": benefit,
        "overhead_seconds": overhead,
        "net_seconds": net,
        "break_even_per_step_seconds": (overhead / saved_steps
                                        if saved_steps > 0 else None),
        "measured_delta_seconds": measured_delta,
    }

    reasons: List[str] = []
    if net <= 0:
        reasons.append(
            f"model: capture+restore overhead ({overhead:.4f}s) exceeds the "
            f"estimated replay savings ({benefit:.4f}s)"
        )
    tolerance = regression_tolerance * float(off["wall_seconds"])
    if measured_delta > tolerance:
        reasons.append(
            f"measured: cache-on wall clock regressed by "
            f"{measured_delta:.4f}s "
            f"({measured_delta / float(off['wall_seconds']):+.1%})"
        )
    verdict = "off" if reasons else "on"
    if verdict == "on":
        reasons.append(
            f"model nets {net:+.4f}s and the measured wall clock did not "
            f"regress"
        )

    return {
        "program": program_factory().name,
        "strategy": strategy,
        "depth_bound": depth_bound,
        "preemption_bound": preemption_bound,
        "snapshot_interval": snapshot_interval,
        "max_executions": max_executions,
        "runs": runs,
        "accounting": accounting,
        "model": model,
        "verdict": verdict,
        "reasons": reasons,
    }


def format_snapshot_report(report: Dict[str, object]) -> str:
    """Human-readable text for ``repro profile snapshots``."""
    off, on = report["runs"]
    accounting = report["accounting"]
    capture = accounting["capture"]
    refresh = accounting.get("refresh",
                             {"count": 0, "seconds": 0.0,
                              "mean_seconds": None})
    restore = accounting["restore"]
    model = report["model"]

    def seconds(value) -> str:
        return f"{float(value):.4f}s" if value is not None else "-"

    def mean_micros(value) -> str:
        return f"{float(value) * 1e6:.1f}us" if value is not None else "-"

    fraction = accounting["accounted_fraction"]
    lines = [
        f"snapshot amortization: {report['program']} "
        f"(strategy={report['strategy']}, depth_bound="
        f"{report['depth_bound']}, preemption_bound="
        f"{report['preemption_bound']}, interval="
        f"{report['snapshot_interval']}, max_executions="
        f"{report['max_executions']})",
        "",
        f"  cache off: wall={seconds(off['wall_seconds'])} "
        f"replayed_steps={off['replayed_steps']}",
        f"  cache on : wall={seconds(on['wall_seconds'])} "
        f"replayed_steps={on['replayed_steps']} "
        f"restored_steps={on['restored_steps']} "
        f"hits={on['snapshot_hits']} misses={on['snapshot_misses']}",
        "",
        "cost accounting (cache on):",
        f"  captures  {capture['count']:>6}  "
        f"total={seconds(capture['seconds'])}  "
        f"mean={mean_micros(capture['mean_seconds'])}  "
        f"bytes={capture['bytes']}",
        f"  refreshes {refresh['count']:>6}  "
        f"total={seconds(refresh['seconds'])}  "
        f"mean={mean_micros(refresh['mean_seconds'])}  "
        f"(LRU touches, no state captured)",
        f"  restores  {restore['count']:>6}  "
        f"total={seconds(restore['seconds'])}  "
        f"mean={mean_micros(restore['mean_seconds'])}  "
        f"bytes={restore['bytes']}",
        f"  snapshot phase total={seconds(accounting['snapshot_phase_seconds'])}  "
        f"accounted={seconds(accounting['accounted_seconds'])}"
        + (f"  ({fraction:.1%})" if fraction is not None else ""),
        "",
        "amortization model:",
        f"  saved replayed steps      {model['saved_steps']}",
        f"  per-step replay cost      "
        f"{mean_micros(model['per_step_replay_seconds'])}",
        f"  estimated benefit         "
        f"{seconds(model['estimated_benefit_seconds'])}",
        f"  capture+restore overhead  {seconds(model['overhead_seconds'])}",
        f"  net                       {model['net_seconds']:+.4f}s",
        f"  break-even per-step cost  "
        f"{mean_micros(model['break_even_per_step_seconds'])}",
        f"  measured wall delta       "
        f"{model['measured_delta_seconds']:+.4f}s",
        "",
        f"verdict: snapshot cache {report['verdict'].upper()} "
        f"for this workload",
    ]
    lines.extend(f"  - {reason}" for reason in report["reasons"])
    return "\n".join(lines)
