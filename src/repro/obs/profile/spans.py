"""Wall-clock spans: what every process was doing, and when.

A :class:`Span` is one named interval (or instant) on a timeline lane:
``pid`` is the process lane (0 = the coordinator / a serial search,
``worker_id + 1`` for forked workers) and ``tid`` a sub-lane within it.
Spans use :func:`time.time` (epoch seconds) rather than ``perf_counter``
so timestamps recorded in *different processes* land on one comparable
clock — the whole point of the merged timeline is to see worker overlap
and idle gaps.

The recorder is deliberately dumb: an append-only list plus a
monotonically increasing span-ID counter.  Workers record their spans
locally, serialize them with :meth:`SpanRecorder.to_state`, and the
coordinator folds them in with :meth:`SpanRecorder.extend_from_state`;
span IDs are re-issued on merge (``origin`` keeps the worker-local ID)
so IDs stay unique in the merged stream.

Rendering to Chrome trace-event JSON lives in
:mod:`repro.obs.profile.chrome_trace`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

#: Shard lifecycle categories (docs/profiling.md): a shard is *planned*
#: by the coordinator, *assigned* to a worker, *executing* on it, and
#: finally *merged* into the totals (or *requeued* after a crash).
SHARD_LIFECYCLE = ("planned", "assigned", "executing", "merged", "requeued")


@dataclass
class Span:
    """One interval (``duration >= 0``) or instant (``duration is None``)."""

    sid: int
    name: str
    cat: str
    start: float  # epoch seconds (time.time)
    duration: Optional[float]  # None = instant event
    pid: int = 0
    tid: str = "main"
    args: Dict[str, object] = field(default_factory=dict)

    def to_state(self) -> Dict[str, object]:
        return {
            "sid": self.sid,
            "name": self.name,
            "cat": self.cat,
            "start": self.start,
            "duration": self.duration,
            "pid": self.pid,
            "tid": self.tid,
            "args": dict(self.args),
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "Span":
        return cls(
            sid=int(state.get("sid", 0)),
            name=str(state.get("name", "")),
            cat=str(state.get("cat", "")),
            start=float(state.get("start", 0.0)),
            duration=(None if state.get("duration") is None
                      else float(state["duration"])),
            pid=int(state.get("pid", 0)),
            tid=str(state.get("tid", "main")),
            args=dict(state.get("args") or {}),
        )


class SpanRecorder:
    """Collects spans from one process; mergeable across processes."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._next_sid = 1
        #: Human-readable lane names for the trace export
        #: (``{pid: "worker-3"}``).
        self.lane_names: Dict[int, str] = {0: "coordinator"}

    def new_sid(self) -> int:
        sid = self._next_sid
        self._next_sid += 1
        return sid

    # ------------------------------------------------------------------
    def name_lane(self, pid: int, name: str) -> None:
        self.lane_names[pid] = name

    def add(self, name: str, cat: str, start: float,
            duration: Optional[float], *, pid: int = 0, tid: str = "main",
            **args) -> Span:
        span = Span(sid=self.new_sid(), name=name, cat=cat, start=start,
                    duration=duration, pid=pid, tid=tid, args=args)
        self.spans.append(span)
        return span

    def instant(self, name: str, cat: str, *, pid: int = 0,
                tid: str = "main", **args) -> Span:
        return self.add(name, cat, time.time(), None, pid=pid, tid=tid,
                        **args)

    @contextmanager
    def measure(self, name: str, cat: str, *, pid: int = 0,
                tid: str = "main", **args) -> Iterator[Span]:
        """Record a complete span around a ``with`` block."""
        start = time.time()
        span = Span(sid=self.new_sid(), name=name, cat=cat, start=start,
                    duration=None, pid=pid, tid=tid, args=args)
        try:
            yield span
        finally:
            span.duration = time.time() - start
            self.spans.append(span)

    # ------------------------------------------------------------------
    # filtering & merge
    # ------------------------------------------------------------------
    def of_category(self, cat: str) -> List[Span]:
        return [span for span in self.spans if span.cat == cat]

    def to_state(self) -> List[Dict[str, object]]:
        return [span.to_state() for span in self.spans]

    def extend_from_state(self, states, *, pid: Optional[int] = None,
                          lane_name: Optional[str] = None) -> int:
        """Fold spans serialized in another process into this recorder.

        ``pid`` reassigns the process lane (a worker records itself as
        pid 0 locally); merged spans get fresh IDs, with the sender's ID
        preserved in ``args["origin"]``.
        """
        merged = 0
        for state in states:
            span = Span.from_state(state)
            span.args.setdefault("origin", span.sid)
            span.sid = self.new_sid()
            if pid is not None:
                span.pid = pid
            self.spans.append(span)
            merged += 1
        if pid is not None and lane_name is not None:
            self.lane_names.setdefault(pid, lane_name)
        return merged

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        return f"<SpanRecorder spans={len(self.spans)}>"
