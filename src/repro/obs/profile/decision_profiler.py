"""Decision-tree cost profiler: which subtree burns the time?

Stateless search spends its wall clock *somewhere* in the choice tree,
but the phase timers only say *what kind* of work was done (policy,
execute, hash, ...), not *where*.  The :class:`DecisionProfiler`
attributes :func:`time.perf_counter` time and transition counts to
decision-sequence prefixes: every executor inner-loop iteration adds its
elapsed time to the node addressed by the decisions made so far, so
after a search the tree holds, for each explored prefix, the seconds the
engine spent extending exactly that prefix.

Attribution is sampling-free and exact — the executor calls
:meth:`add_step` once per transition with the iteration's measured
duration — and costs nothing when disabled: the executor guards every
profiler touch with a single ``profiler is not None`` check (the same
nil-guard discipline the observer uses).

The export format is folded stacks (one ``frame;frame;... value`` line
per node, value in integer microseconds of *self* time), the lingua
franca of flamegraph.pl and speedscope::

    profiler = DecisionProfiler()
    observer = Observer(profiler=profiler)
    Checker(program, observer=observer).run()
    Path("profile.folded").write_text(profiler.to_folded())
    # flamegraph.pl profile.folded > profile.svg   (or open in speedscope)

Frames are decision indices (``root;0;1;0;...``), so a wide frame at
depth *d* reads as "the subtree after taking these *d* alternatives is
where the search lives".  Memory is bounded two ways: ``max_depth``
collapses everything below a depth cap into the cap node, and
``max_nodes`` stops growing the tree (further time accumulates in the
deepest existing node, and :attr:`truncated` counts the overflow).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

#: Collapse attribution below this prefix depth by default.  Deep fair
#: searches run to depth bounds in the thousands; frames that deep are
#: unreadable in a flamegraph and cost a node each.
DEFAULT_MAX_DEPTH = 64

#: Stop allocating nodes past this count (overflow accumulates in the
#: deepest existing ancestor).
DEFAULT_MAX_NODES = 200_000


class DecisionNode:
    """One decision-sequence prefix: accumulated self cost + children."""

    __slots__ = ("children", "seconds", "steps", "executions", "depth")

    def __init__(self, depth: int) -> None:
        self.children: Dict[int, "DecisionNode"] = {}
        self.seconds = 0.0
        self.steps = 0
        self.executions = 0
        self.depth = depth

    def subtree_seconds(self) -> float:
        """Self seconds plus every descendant's (flamegraph width)."""
        total = self.seconds
        for child in self.children.values():
            total += child.subtree_seconds()
        return total

    def __repr__(self) -> str:
        return (f"<DecisionNode depth={self.depth} seconds={self.seconds:.6f}"
                f" steps={self.steps} children={len(self.children)}>")


class DecisionProfiler:
    """Accumulates executor time into a tree of decision prefixes.

    The executor drives the profiler through three calls (see
    ``repro/engine/executor.py``):

    * :meth:`enter` at execution start — descend to the node of the
      already-recorded prefix (empty for a fresh execution, the restored
      decisions after a snapshot fast-forward);
    * :meth:`descend` after every recorded decision — move the cursor
      one level down;
    * :meth:`add_step` after every transition — attribute the
      iteration's measured seconds to the cursor node;
    * :meth:`finish_execution` when the execution ends — attribute the
      terminal remainder (classification, teardown) and count the
      execution.
    """

    def __init__(self, *, max_depth: int = DEFAULT_MAX_DEPTH,
                 max_nodes: int = DEFAULT_MAX_NODES) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be positive")
        if max_nodes < 1:
            raise ValueError("max_nodes must be positive")
        self.max_depth = max_depth
        self.max_nodes = max_nodes
        self.root = DecisionNode(0)
        self.nodes = 1
        #: Descents that could not allocate a node (depth or node cap).
        self.truncated = 0
        self.executions = 0

    # ------------------------------------------------------------------
    # executor-facing hot path
    # ------------------------------------------------------------------
    def enter(self, prefix) -> DecisionNode:
        """Cursor for an execution that already recorded ``prefix``."""
        node = self.root
        for index in prefix:
            node = self.descend(node, index)
        return node

    def descend(self, node: DecisionNode, index: int) -> DecisionNode:
        """The child of ``node`` for decision alternative ``index``."""
        if node.depth >= self.max_depth:
            self.truncated += 1
            return node
        child = node.children.get(index)
        if child is None:
            if self.nodes >= self.max_nodes:
                self.truncated += 1
                return node
            child = node.children[index] = DecisionNode(node.depth + 1)
            self.nodes += 1
        return child

    def add_step(self, node: DecisionNode, seconds: float) -> None:
        """Attribute one transition's measured duration to ``node``."""
        node.seconds += seconds
        node.steps += 1

    def finish_execution(self, node: DecisionNode, seconds: float) -> None:
        """Attribute the terminal remainder and count the execution."""
        node.seconds += seconds
        node.executions += 1
        self.executions += 1

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        return self.root.subtree_seconds()

    def walk(self) -> Iterator[Tuple[Tuple[int, ...], DecisionNode]]:
        """Yield ``(prefix, node)`` pairs in depth-first prefix order."""
        stack: List[Tuple[Tuple[int, ...], DecisionNode]] = [((), self.root)]
        while stack:
            prefix, node = stack.pop()
            yield prefix, node
            for index in sorted(node.children, reverse=True):
                stack.append((prefix + (index,), node.children[index]))

    def to_folded(self, *, min_self_micros: int = 1) -> str:
        """Folded-stack text: ``root;i0;i1;... <self-microseconds>``.

        One line per node whose self time rounds to at least
        ``min_self_micros`` microseconds; flamegraph.pl and speedscope
        both sum descendants into ancestors, so self time is the right
        per-line value.
        """
        lines: List[str] = []
        for prefix, node in self.walk():
            micros = int(round(node.seconds * 1e6))
            if micros < min_self_micros:
                continue
            frames = ";".join(["root"] + [str(i) for i in prefix])
            lines.append(f"{frames} {micros}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly summary (tree flattened to prefix keys)."""
        nodes = {}
        for prefix, node in self.walk():
            nodes[";".join(str(i) for i in prefix) or "root"] = {
                "seconds": node.seconds,
                "steps": node.steps,
                "executions": node.executions,
            }
        return {
            "total_seconds": self.total_seconds,
            "nodes": self.nodes,
            "truncated": self.truncated,
            "executions": self.executions,
            "max_depth": self.max_depth,
            "tree": nodes,
        }

    def hottest(self, count: int = 10) -> List[Tuple[Tuple[int, ...], float]]:
        """The ``count`` prefixes with the largest subtree time, deepest
        first among ties — a quick textual answer to "which subtree burns
        the time" without leaving the terminal."""
        ranked = sorted(
            ((prefix, node.subtree_seconds()) for prefix, node in self.walk()),
            key=lambda item: (-item[1], -len(item[0])),
        )
        return ranked[:count]

    def __repr__(self) -> str:
        return (f"<DecisionProfiler nodes={self.nodes} "
                f"total={self.total_seconds:.4f}s "
                f"executions={self.executions}>")
