"""Chrome trace-event JSON export for span timelines.

The output is the venerable `Trace Event Format`_ (the ``traceEvents``
array flavour), which Perfetto (https://ui.perfetto.dev) and
``chrome://tracing`` both load directly: one "X" (complete) event per
recorded span, one "i" (instant) event per lifecycle marker, and "M"
(metadata) events naming each process lane.  Timestamps are microseconds
relative to the earliest span in the document, so the timeline starts at
zero no matter when the run happened.

Phase-timer totals don't carry wall-clock positions (they are summed
``perf_counter`` intervals), so they are rendered as a synthetic
side-by-side track — one complete event per phase, laid out
sequentially on a dedicated ``phase totals`` thread.  That reads as
"relative magnitude at a glance", not as a timeline.

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from repro.obs.profile.spans import Span


def _sanitize_args(args: Dict[str, object]) -> Dict[str, object]:
    """Trace-viewer args must be JSON scalars; stringify anything else."""
    clean: Dict[str, object] = {}
    for key, value in args.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            clean[key] = value
        else:
            clean[key] = str(value)
    return clean


def chrome_trace_document(
    spans: Iterable[Span],
    *,
    timers: Optional[Dict[str, Dict[str, float]]] = None,
    lane_names: Optional[Dict[int, str]] = None,
    metadata: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Build the trace-event document for ``spans``.

    ``timers`` is a ``PhaseTimers.to_dict()`` mapping
    (``{phase: {"seconds": ..., "samples": ...}}``) rendered as the
    synthetic phase-totals track; ``lane_names`` maps pid → display name
    (:attr:`SpanRecorder.lane_names`); ``metadata`` lands in the
    document's ``otherData`` section.
    """
    spans = list(spans)
    events: List[Dict[str, object]] = []
    origin = min((span.start for span in spans), default=0.0)

    pids = sorted({span.pid for span in spans})
    names = dict(lane_names or {})
    for pid in pids:
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": names.get(pid, f"process-{pid}")},
        })

    for span in spans:
        ts = (span.start - origin) * 1e6
        event: Dict[str, object] = {
            "name": span.name,
            "cat": span.cat,
            "pid": span.pid,
            "tid": span.tid,
            "ts": ts,
            "args": _sanitize_args(span.args),
        }
        if span.duration is None:
            event["ph"] = "i"
            event["s"] = "p"  # process-scoped instant
        else:
            event["ph"] = "X"
            event["dur"] = max(span.duration, 0.0) * 1e6
        events.append(event)

    if timers:
        phase_pid = (max(pids) + 1) if pids else 0
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": phase_pid,
            "tid": 0,
            "args": {"name": "phase totals"},
        })
        cursor = 0.0
        for phase in sorted(timers):
            entry = timers[phase]
            seconds = float(entry.get("seconds", 0.0))
            events.append({
                "name": phase,
                "cat": "phase",
                "ph": "X",
                "pid": phase_pid,
                "tid": "totals",
                "ts": cursor,
                "dur": seconds * 1e6,
                "args": {"seconds": seconds,
                         "samples": int(entry.get("samples", 0))},
            })
            cursor += seconds * 1e6

    document: Dict[str, object] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        document["otherData"] = _sanitize_args(metadata)
    return document


def write_chrome_trace(
    path,
    spans: Iterable[Span],
    *,
    timers: Optional[Dict[str, Dict[str, float]]] = None,
    lane_names: Optional[Dict[int, str]] = None,
    metadata: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Write the trace document to ``path`` and return it."""
    document = chrome_trace_document(
        spans, timers=timers, lane_names=lane_names, metadata=metadata)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    return document
