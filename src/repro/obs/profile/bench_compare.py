"""Benchmark regression comparison: diff two BENCH_*.json documents.

``repro bench compare BASELINE.json CURRENT.json`` guards the BENCH
trajectory: nothing else stops a future change from silently regressing
the hotpath's 7× replayed-steps win or the parallel speedup.  The
comparator understands the shared BENCH schema (top-level ``bench`` /
``entries``; entries keyed by ``(program, strategy)``; runs keyed by
their identity field — ``snapshot_cache`` for hotpath, ``workers`` for
parallel) and applies per-metric direction rules:

* ``seconds`` — lower is better, compared with a relative noise
  tolerance (default ±20%);
* ``speedup``, ``replayed_reduction``, ``cache_speedup`` — higher is
  better, same tolerance.  ``cache_speedup`` (wall-off / wall-on) is
  the hotpath's gated wall-clock metric: a ratio measured on one host
  transfers to another, where absolute seconds do not;
* ``ok``, ``executions``, ``transitions`` — determinism contract:
  any mismatch is a regression regardless of tolerance;
* ``replayed_steps``, ``restored_steps``, ``snapshot_hits``,
  ``snapshot_misses`` — informational (the replayed-step cut is already
  gated through the ``replayed_reduction`` ratio);
* provenance/config fields (``host``, ``cpu_count``, ``scale``,
  ``depth_bound``, ...) — differences become warnings, never
  regressions, because a config drift makes the timing comparison
  suspect rather than wrong.

Wall-clock comparisons additionally ignore values below a small noise
floor (20ms) where scheduler jitter dominates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Default relative noise tolerance for timing-ish metrics.
DEFAULT_TOLERANCE = 0.2

#: Seconds below this are scheduler jitter, not signal.
NOISE_FLOOR_SECONDS = 0.02

#: metric -> "lower" | "higher" (which direction is better).
_DIRECTION = {
    "seconds": "lower",
    "speedup": "higher",
    "replayed_reduction": "higher",
    "cache_speedup": "higher",
}

#: Determinism contract: must match exactly between runs.
_EXACT = ("ok", "executions", "transitions")

#: Interesting but not gated.
_INFO = ("replayed_steps", "restored_steps", "snapshot_hits",
         "snapshot_misses", "capture_seconds", "refresh_seconds",
         "restore_seconds", "captured_bytes", "restored_bytes")

#: Entry/document fields treated as provenance: drift warns.
_PROVENANCE = (
    "scale", "cpu_count", "host", "platform", "python", "worker_counts",
    "depth_bound", "preemption_bound", "snapshot_interval",
    "max_executions",
)

#: Run identity fields, in probe order.
_RUN_KEYS = ("snapshot_cache", "workers")


@dataclass
class ComparedValue:
    """One metric compared between baseline and current."""

    path: str  # e.g. "dining(3)/dfs workers=4"
    metric: str
    baseline: object
    current: object
    status: str  # "ok" | "regression" | "improvement" | "info" | "drift"
    change: Optional[float] = None  # relative change, when numeric

    def describe(self) -> str:
        delta = f" ({self.change:+.1%})" if self.change is not None else ""
        return (f"{self.status:<11} {self.path} {self.metric}: "
                f"{self.baseline!r} -> {self.current!r}{delta}")


@dataclass
class BenchComparison:
    """The full diff of two BENCH documents."""

    bench: str
    tolerance: float
    values: List[ComparedValue] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[ComparedValue]:
        return [v for v in self.values if v.status == "regression"]

    @property
    def improvements(self) -> List[ComparedValue]:
        return [v for v in self.values if v.status == "improvement"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def summary(self) -> str:
        lines = [f"bench compare: {self.bench} "
                 f"(tolerance ±{self.tolerance:.0%})"]
        interesting = [v for v in self.values
                       if v.status in ("regression", "improvement", "drift")]
        for value in interesting:
            lines.append("  " + value.describe())
        if not interesting:
            lines.append("  no changes beyond tolerance")
        lines.extend(f"  warning: {w}" for w in self.warnings)
        checked = sum(1 for v in self.values if v.status != "info")
        lines.append(
            f"result: {'OK' if self.ok else 'REGRESSION'} "
            f"({checked} metrics checked, {len(self.regressions)} "
            f"regressions, {len(self.improvements)} improvements)"
        )
        return "\n".join(lines)


def load_bench(path: str) -> Dict[str, object]:
    """Read one BENCH_*.json document."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "entries" not in document:
        raise ValueError(
            f"{path}: not a BENCH document (expected an object with "
            f"an 'entries' array)"
        )
    return document


def _entry_key(entry: Dict[str, object]) -> Tuple[str, str]:
    return (str(entry.get("program", "?")), str(entry.get("strategy", "?")))


def _run_identity(run: Dict[str, object]) -> str:
    for key in _RUN_KEYS:
        if key in run:
            return f"{key}={run[key]}"
    return "run"


def _relative_change(baseline: float, current: float) -> Optional[float]:
    if baseline == 0:
        return None if current == 0 else float("inf")
    return (current - baseline) / abs(baseline)


class _Differ:
    def __init__(self, comparison: BenchComparison) -> None:
        self.comparison = comparison

    def exact(self, path: str, metric: str, baseline, current) -> None:
        status = "ok" if baseline == current else "regression"
        self.comparison.values.append(ComparedValue(
            path=path, metric=metric, baseline=baseline, current=current,
            status=status,
        ))

    def info(self, path: str, metric: str, baseline, current) -> None:
        self.comparison.values.append(ComparedValue(
            path=path, metric=metric, baseline=baseline, current=current,
            status="info",
        ))

    def provenance(self, path: str, metric: str, baseline, current) -> None:
        status = "ok" if baseline == current else "drift"
        self.comparison.values.append(ComparedValue(
            path=path, metric=metric, baseline=baseline, current=current,
            status=status,
        ))

    def directional(self, path: str, metric: str, baseline, current,
                    direction: str) -> None:
        tolerance = self.comparison.tolerance
        try:
            base = float(baseline)
            cur = float(current)
        except (TypeError, ValueError):
            self.exact(path, metric, baseline, current)
            return
        change = _relative_change(base, cur)
        status = "ok"
        if metric == "seconds" and max(abs(base), abs(cur)) < NOISE_FLOOR_SECONDS:
            pass  # below the jitter floor: never gate
        elif change is None:
            pass
        elif direction == "lower":
            if change > tolerance:
                status = "regression"
            elif change < -tolerance:
                status = "improvement"
        else:  # higher is better
            if change < -tolerance:
                status = "regression"
            elif change > tolerance:
                status = "improvement"
        self.comparison.values.append(ComparedValue(
            path=path, metric=metric, baseline=baseline, current=current,
            status=status, change=change,
        ))

    def mapping(self, path: str, baseline: Dict[str, object],
                current: Dict[str, object], *, skip=()) -> None:
        """Diff the scalar fields of two mapping nodes by rule table."""
        for metric in baseline:
            if metric in skip:
                continue
            if metric not in current:
                self.comparison.warnings.append(
                    f"{path}: {metric} missing from current")
                continue
            base, cur = baseline[metric], current[metric]
            if metric in _DIRECTION:
                self.directional(path, metric, base, cur, _DIRECTION[metric])
            elif metric in _EXACT:
                self.exact(path, metric, base, cur)
            elif metric in _INFO:
                self.info(path, metric, base, cur)
            elif metric in _PROVENANCE:
                self.provenance(path, metric, base, cur)
        for metric in current:
            if metric not in baseline and metric not in skip:
                self.comparison.warnings.append(
                    f"{path}: {metric} new in current")


def compare_bench(
    baseline: Dict[str, object],
    current: Dict[str, object],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> BenchComparison:
    """Diff two loaded BENCH documents; regressions gate CI."""
    comparison = BenchComparison(
        bench=str(baseline.get("bench", "?")), tolerance=tolerance)
    differ = _Differ(comparison)
    if baseline.get("bench") != current.get("bench"):
        comparison.warnings.append(
            f"comparing different benches: {baseline.get('bench')!r} vs "
            f"{current.get('bench')!r}"
        )
    differ.mapping("document", baseline, current, skip=("entries", "bench"))

    current_entries = {_entry_key(e): e
                       for e in current.get("entries", [])}
    for entry in baseline.get("entries", []):
        key = _entry_key(entry)
        path = f"{key[0]}/{key[1]}"
        other = current_entries.pop(key, None)
        if other is None:
            comparison.warnings.append(f"{path}: entry missing from current")
            continue
        differ.mapping(path, entry, other,
                       skip=("runs", "program", "strategy"))
        current_runs = {_run_identity(r): r for r in other.get("runs", [])}
        for run in entry.get("runs", []):
            identity = _run_identity(run)
            run_path = f"{path} {identity}"
            other_run = current_runs.pop(identity, None)
            if other_run is None:
                comparison.warnings.append(
                    f"{run_path}: run missing from current")
                continue
            differ.mapping(run_path, run, other_run,
                           skip=tuple(k for k in _RUN_KEYS if k in run))
        for identity in current_runs:
            comparison.warnings.append(
                f"{path} {identity}: run new in current")
    for key in current_entries:
        comparison.warnings.append(
            f"{key[0]}/{key[1]}: entry new in current")
    return comparison
