"""The Observer: one object the engine reports everything to.

An :class:`Observer` bundles the three telemetry backends — event sink,
metrics registry, phase timers — plus an optional progress reporter, and
exposes the narrow hook surface the engine calls.  The engine takes
``observer=None`` everywhere and guards every hook with
``if observer is not None``, so a disabled checker pays a single branch
per call site and allocates nothing.

Metric names (see ``docs/observability.md`` for the full schema):

* counters — ``executions``, ``transitions``, ``yields``,
  ``preemptions``, ``backtracks``, ``violations``, ``deadlocks``,
  ``divergences``, ``divergence.<kind>``, ``decisions.thread``,
  ``decisions.data``, ``states.new``, ``states.revisited``,
  ``icb.sweeps``, ``dpor.races_detected``, ``dpor.sleep_blocked``,
  ``dpor.wakeup_pruned``, ``dpor.wakeup_abandoned``,
  ``dpor.fairness_skipped``, ``crashes``, ``crashes.quarantined``,
  ``executions.aborted``, ``checkpoints``, ``threads.leaked``,
  ``executions.replayed_steps``, ``executions.restored_steps``,
  ``snapshot.hits``, ``snapshot.misses``, ``snapshot.evictions``,
  ``snapshot.captured_bytes``, ``snapshot.restored_bytes``;
* gauges — ``wall.seconds``, ``rate.executions_per_second``,
  ``rate.transitions_per_second``;
* histograms — ``schedulable_set_size``, ``enabled_set_size``,
  ``steps_per_execution``, ``yields_per_execution``,
  ``priority_relation_size``, ``snapshot.capture.seconds``,
  ``snapshot.restore.seconds``.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.events import (
    Backtrack,
    CheckpointRecovered,
    CheckpointWriteFailed,
    CheckpointWritten,
    CrashQuarantined,
    FaultInjected,
    DivergenceClassified,
    EventSink,
    ExecutionAborted,
    ExecutionFinished,
    ExecutionStarted,
    ExplorationFinished,
    ExplorationStarted,
    IcbSweep,
    Preemption,
    SchedulingDecision,
    SearchInterrupted,
    ShardFinished,
    ShardStarted,
    ThreadLeaked,
    ViolationFound,
    WorkerCrashed,
    WorkerWedged,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressReporter
from repro.obs.timers import PhaseTimers


class Observer:
    """Aggregates engine telemetry; every hook is cheap and total."""

    def __init__(
        self,
        *,
        sink: Optional[EventSink] = None,
        metrics: Optional[MetricsRegistry] = None,
        timers: Optional[PhaseTimers] = None,
        progress: Optional[ProgressReporter] = None,
        profiler=None,
        spans=None,
    ) -> None:
        self.sink = sink
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.timers = timers if timers is not None else PhaseTimers()
        self.progress = progress
        #: Optional :class:`repro.obs.profile.DecisionProfiler`; when set,
        #: the executor attributes per-transition time to decision-tree
        #: prefixes (docs/profiling.md).  None keeps the inner loop on a
        #: single ``is not None`` branch per touch point.
        self.profiler = profiler
        #: :class:`repro.obs.profile.SpanRecorder` collecting wall-clock
        #: spans (search lifetime, shard lifecycle, worker activity) for
        #: the Chrome-trace export.  Created lazily on first access so a
        #: bare Observer stays allocation-light.
        self._spans = spans
        self._execution = -1  # index of the execution in flight

        # Pre-bound hot-path instruments (no dict lookup per transition).
        m = self.metrics
        self._executions = m.counter("executions")
        self._transitions = m.counter("transitions")
        self._yields = m.counter("yields")
        self._preemptions = m.counter("preemptions")
        self._decisions_thread = m.counter("decisions.thread")
        self._decisions_data = m.counter("decisions.data")
        self._schedulable_size = m.histogram("schedulable_set_size")
        self._enabled_size = m.histogram("enabled_set_size")
        self._steps_per_execution = m.histogram("steps_per_execution")
        self._yields_per_execution = m.histogram("yields_per_execution")
        self._priority_size = m.histogram("priority_relation_size")

    @property
    def spans(self):
        """The :class:`~repro.obs.profile.SpanRecorder` (lazily created)."""
        if self._spans is None:
            from repro.obs.profile.spans import SpanRecorder
            self._spans = SpanRecorder()
        return self._spans

    @property
    def has_spans(self) -> bool:
        """True when any span was recorded (without forcing creation)."""
        return self._spans is not None and len(self._spans) > 0

    # ------------------------------------------------------------------
    # exploration lifecycle
    # ------------------------------------------------------------------
    def exploration_started(self, program: str, policy: str,
                            strategy: str) -> None:
        if self.sink is not None:
            self.sink.emit(ExplorationStarted(program=program, policy=policy,
                                              strategy=strategy))

    def exploration_finished(self, result) -> None:
        """Called with the final :class:`ExplorationResult`."""
        m = self.metrics
        wall = m.gauge("wall.seconds")
        wall.set(wall.value + result.wall_seconds)
        total_wall = wall.value or 1e-9
        m.gauge("rate.executions_per_second").set(
            self._executions.value / total_wall)
        m.gauge("rate.transitions_per_second").set(
            self._transitions.value / total_wall)
        if self.sink is not None:
            self.sink.emit(ExplorationFinished(
                executions=result.executions,
                transitions=result.transitions,
                wall_seconds=result.wall_seconds,
                complete=result.complete,
                stop_reason=(getattr(result, "stop_reason", None)
                             or ("limit" if result.limit_hit else None)),
            ))
        if self.progress is not None:
            self.progress.report(
                self._executions.value, self._transitions.value,
                violations=m.counter("violations").value,
                divergences=m.counter("divergences").value,
            )

    # ------------------------------------------------------------------
    # execution lifecycle (called from the executor)
    # ------------------------------------------------------------------
    def execution_started(self) -> int:
        self._execution += 1
        if self.sink is not None:
            self.sink.emit(ExecutionStarted(execution=self._execution))
        return self._execution

    def execution_finished(self, record, *, yields: int = 0) -> None:
        m = self.metrics
        self._executions.inc()
        self._transitions.inc(record.steps)
        self._yields.inc(yields)
        self._steps_per_execution.record(record.steps)
        self._yields_per_execution.record(yields)
        outcome = record.outcome.value
        if outcome == "violation":
            m.counter("violations").inc()
        elif outcome == "deadlock":
            m.counter("deadlocks").inc()
        elif outcome == "crashed":
            m.counter("crashes").inc()
        if self.sink is not None:
            self.sink.emit(ExecutionFinished(
                execution=self._execution,
                outcome=outcome,
                steps=record.steps,
                preemptions=record.preemptions,
                hit_depth_bound=record.hit_depth_bound,
            ))
        if self.progress is not None:
            self.progress.maybe_report(
                self._executions.value, self._transitions.value,
                violations=m.counter("violations").value,
                divergences=m.counter("divergences").value,
            )

    # ------------------------------------------------------------------
    # per-transition hooks (called from the executor inner loop)
    # ------------------------------------------------------------------
    def decision(self, step: int, kind: str, index: int, options: int,
                 chosen: object, schedulable: int = 0,
                 enabled: int = 0) -> None:
        if kind == "thread":
            self._decisions_thread.inc()
            self._schedulable_size.record(schedulable)
            self._enabled_size.record(enabled)
        else:
            self._decisions_data.inc()
        if self.sink is not None:
            self.sink.emit(SchedulingDecision(
                execution=self._execution, step=step, kind=kind,
                index=index, options=options, chosen=repr(chosen),
                schedulable=schedulable, enabled=enabled,
            ))

    def priority_relation(self, size: int) -> None:
        """Size of the fair policy's priority relation ``P`` at one state."""
        self._priority_size.record(size)

    def preemption(self, step: int, preempted: object, scheduled: object,
                   count: int) -> None:
        self._preemptions.inc()
        if self.sink is not None:
            self.sink.emit(Preemption(
                execution=self._execution, step=step,
                preempted=repr(preempted), scheduled=repr(scheduled),
                count=count,
            ))

    def violation(self, step: int, message: str) -> None:
        if self.sink is not None:
            self.sink.emit(ViolationFound(execution=self._execution,
                                          step=step, message=message))

    def divergence(self, report) -> None:
        """Called with the :class:`DivergenceReport` of one execution."""
        self.metrics.counter("divergences").inc()
        self.metrics.counter(f"divergence.{report.kind.value}").inc()
        if self.sink is not None:
            self.sink.emit(DivergenceClassified(
                execution=self._execution,
                kind=report.kind.value,
                culprits=tuple(report.culprits),
                window=report.window,
                detail=report.detail,
            ))

    # ------------------------------------------------------------------
    # strategy hooks
    # ------------------------------------------------------------------
    def backtrack(self, depth: int) -> None:
        self.metrics.counter("backtracks").inc()
        if self.sink is not None:
            self.sink.emit(Backtrack(execution=self._execution, depth=depth))

    def icb_sweep(self, bound: int, result) -> None:
        self.metrics.counter("icb.sweeps").inc()
        self.metrics.gauge("icb.last_bound").set(bound)
        if self.sink is not None:
            self.sink.emit(IcbSweep(
                bound=bound,
                executions=result.executions,
                transitions=result.transitions,
                found_violation=result.found_violation,
                wall_seconds=result.wall_seconds,
            ))

    def dpor_race_detected(self) -> None:
        """Source-DPOR found a reversible race in the last execution."""
        self.metrics.counter("dpor.races_detected").inc()

    def dpor_sleep_blocked(self) -> None:
        """An execution stopped with every schedulable thread asleep."""
        self.metrics.counter("dpor.sleep_blocked").inc()

    def dpor_wakeup_pruned(self) -> None:
        """A wakeup sequence was redundant (initials asleep/explored)."""
        self.metrics.counter("dpor.wakeup_pruned").inc()

    def dpor_wakeup_abandoned(self) -> None:
        """A forced wakeup suffix became policy-unschedulable mid-run."""
        self.metrics.counter("dpor.wakeup_abandoned").inc()

    def dpor_fairness_skipped(self) -> None:
        """A backtrack insertion was deferred: no initial schedulable."""
        self.metrics.counter("dpor.fairness_skipped").inc()

    def dpor_handover(self) -> None:
        """A race with a disabled partner re-inserted at the enabling
        step (lock handover)."""
        self.metrics.counter("dpor.lock_handovers").inc()

    # ------------------------------------------------------------------
    # resilience hooks
    # ------------------------------------------------------------------
    def checkpoint_saved(self, path: str, executions: int) -> None:
        self.metrics.counter("checkpoints").inc()
        if self.sink is not None:
            self.sink.emit(CheckpointWritten(path=path,
                                             executions=executions))

    def checkpoint_recovered(self, path: str,
                             quarantined: Optional[str]) -> None:
        """A corrupt checkpoint fell back to its ``.prev`` snapshot."""
        self.metrics.counter("checkpoints.recovered").inc()
        if self.sink is not None:
            self.sink.emit(CheckpointRecovered(path=path,
                                               quarantined=quarantined))

    def checkpoint_write_failed(self, path: str, error: str) -> None:
        """A checkpoint write hit a disk error and was degraded."""
        self.metrics.counter("checkpoints.write_failed").inc()
        if self.sink is not None:
            self.sink.emit(CheckpointWriteFailed(path=path, error=error))

    def fault_injected(self, point: str, kind: str, hit: int) -> None:
        """The chaos plane fired one injected fault."""
        self.metrics.counter("faults.injected").inc()
        self.metrics.counter(f"faults.injected.{kind}").inc()
        if self.sink is not None:
            self.sink.emit(FaultInjected(point=point, kind=kind, hit=hit))

    def execution_aborted(self, step: int, reason: str) -> None:
        self.metrics.counter("executions.aborted").inc()
        if self.sink is not None:
            self.sink.emit(ExecutionAborted(execution=self._execution,
                                            step=step, reason=reason))

    def crash_quarantined(self, message: str,
                          path: Optional[str] = None) -> None:
        self.metrics.counter("crashes.quarantined").inc()
        if self.sink is not None:
            self.sink.emit(CrashQuarantined(execution=self._execution,
                                            message=message, path=path))

    def thread_leaked(self, threads) -> None:
        self.metrics.counter("threads.leaked").inc(len(threads))
        if self.sink is not None:
            self.sink.emit(ThreadLeaked(execution=self._execution,
                                        threads=tuple(threads)))

    def search_interrupted(self, signal: str) -> None:
        if self.sink is not None:
            self.sink.emit(SearchInterrupted(signal=signal))

    # ------------------------------------------------------------------
    # parallel-search hooks (called from the coordinator)
    # ------------------------------------------------------------------
    def shard_started(self, shard: int, worker: int,
                      description: str) -> None:
        if self.sink is not None:
            self.sink.emit(ShardStarted(shard=shard, worker=worker,
                                        description=description))

    def shard_finished(self, shard: int, worker: int, executions: int,
                       transitions: int, found_violation: bool) -> None:
        self.metrics.counter("shards.completed").inc()
        if self.sink is not None:
            self.sink.emit(ShardFinished(
                shard=shard, worker=worker, executions=executions,
                transitions=transitions, found_violation=found_violation,
            ))

    def worker_crashed(self, worker: int, shard: int,
                       requeued: bool) -> None:
        self.metrics.counter("workers.crashed").inc()
        if self.sink is not None:
            self.sink.emit(WorkerCrashed(worker=worker, shard=shard,
                                         requeued=requeued))

    def worker_wedged(self, worker: int, shard: int,
                      silent_seconds: float, requeued: bool) -> None:
        """A heartbeat-silent worker was killed and its shard requeued."""
        self.metrics.counter("workers.wedged").inc()
        if self.sink is not None:
            self.sink.emit(WorkerWedged(worker=worker, shard=shard,
                                        silent_seconds=silent_seconds,
                                        requeued=requeued))

    # ------------------------------------------------------------------
    # coverage hooks
    # ------------------------------------------------------------------
    def state_hashed(self, fresh: bool) -> None:
        name = "states.new" if fresh else "states.revisited"
        self.metrics.counter(name).inc()

    # ------------------------------------------------------------------
    # prefix-snapshot cache hooks (called once per execution / capture,
    # not per transition, so dynamic counter lookups are fine here)
    # ------------------------------------------------------------------
    def snapshot_lookup(self, hit: bool, restored_steps: int) -> None:
        """One cache lookup at the start of a guided execution."""
        self.metrics.counter("snapshot.hits" if hit
                             else "snapshot.misses").inc()
        if restored_steps:
            self.metrics.counter("executions.restored_steps").inc(
                restored_steps)

    def snapshot_stored(self, entries: int, estimated_bytes: int) -> None:
        self.metrics.counter("snapshot.stored").inc()
        self.metrics.gauge("snapshot.entries").set(entries)
        self.metrics.gauge("snapshot.estimated_bytes").set(estimated_bytes)

    def snapshot_evicted(self, count: int) -> None:
        self.metrics.counter("snapshot.evictions").inc(count)

    def snapshot_oversized(self, estimated_bytes: int) -> None:
        """An entry was refused because its estimated size alone exceeds
        the cache's memory budget (storing it would pin the cache over
        budget forever)."""
        self.metrics.counter("snapshot.oversized").inc()
        self.metrics.counter("snapshot.oversized_bytes").inc(
            estimated_bytes)

    def prefix_replayed(self, steps: int) -> None:
        """Prefix transitions re-executed through the full engine loop
        (the cost the snapshot cache removes; counted even with the cache
        off so benchmarks can report the reduction)."""
        self.metrics.counter("executions.replayed_steps").inc(steps)

    def snapshot_capture_timed(self, seconds: float,
                               estimated_bytes: int,
                               outcome: str = "stored") -> None:
        """Measured cost of one snapshot capture (docs/profiling.md).

        Fed by the same ``perf_counter`` pair that feeds the ``snapshot``
        phase timer, so capture + refresh + restore histogram sums
        account for the phase total.  ``outcome`` distinguishes captures
        that stored a new entry from refresh-only calls (the key was
        already cached — an LRU touch, no state captured) and refused
        oversized entries, so the amortization report doesn't charge
        refreshes as if they copied state.
        """
        if outcome == "stored":
            self.metrics.histogram("snapshot.capture.seconds").record(
                seconds)
        else:
            if outcome == "refreshed":
                self.metrics.counter("snapshot.refreshes").inc()
            self.metrics.histogram("snapshot.capture.refresh.seconds"
                                   ).record(seconds)
        if estimated_bytes:
            self.metrics.counter("snapshot.captured_bytes").inc(
                estimated_bytes)

    def snapshot_restore_timed(self, seconds: float,
                               estimated_bytes: int) -> None:
        """Measured cost of one cache lookup/fast-forward (0 bytes on a
        miss; also covers signature replay into the coverage tracker)."""
        self.metrics.histogram("snapshot.restore.seconds").record(seconds)
        if estimated_bytes:
            self.metrics.counter("snapshot.restored_bytes").inc(
                estimated_bytes)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """The ``--stats`` text: phase table plus metrics listing."""
        return "\n".join([
            "phase timings:",
            self.timers.summary(),
            "",
            self.metrics.summary(),
        ])

    def dump_json(self, path: str) -> str:
        """Write metrics + phase timers as one JSON document."""
        return self.metrics.dump_json(
            path, extra={"phases": self.timers.to_dict()})

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()
