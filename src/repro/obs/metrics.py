"""Metrics registry: counters, gauges and histograms with JSON export.

The registry is the shared numeric vocabulary of the checker and the
benchmark harness: the engine populates it through
:class:`repro.obs.observer.Observer`, ``--metrics-json`` dumps it, and
:mod:`repro.bench.experiments` records its experiment timings into the
same structure so benchmark output and checker telemetry share one
schema.

Metric names are dotted lowercase (``divergence.livelock``,
``states.new``).  All three instrument types are allocation-free on the
update path (plain attribute arithmetic under a per-instrument lock).

Thread safety: instruments are updated concurrently when several
checking jobs share one process (the service's worker fleet,
``docs/service.md``), and ``value += amount`` is a read-modify-write
that loses increments between bytecodes.  Every mutation therefore
holds a per-instrument lock; reads of a single int/float attribute stay
lock-free (atomic under the GIL), while multi-field reads (histogram
export) lock to see a consistent snapshot.
"""

from __future__ import annotations

import json
import math
import threading
import time
from typing import Dict, Optional


class Counter:
    """Monotonically increasing integer (thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A value that goes up and down (last write wins; thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, amount: float) -> None:
        """Atomic read-modify-write (``set(value + amount)`` races)."""
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Running distribution summary with exponential (base-2) buckets.

    Tracks count/sum/min/max exactly and bucket counts keyed by
    ``floor(log2(value))`` for a cheap shape estimate — enough to answer
    "how big do schedulable sets get" without storing samples.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        #: bucket exponent -> observations with floor(log2(v)) == exponent
        #: (values <= 0 land in the sentinel bucket None).
        self.buckets: Dict[Optional[int], int] = {}
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        exponent = math.floor(math.log2(value)) if value > 0 else None
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            self.buckets[exponent] = self.buckets.get(exponent, 0) + 1

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def _snapshot(self):
        """A consistent (count, total, min, max, buckets) view."""
        with self._lock:
            return (self.count, self.total, self.min, self.max,
                    dict(self.buckets))

    def percentile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-th percentile (``0 <= q <= 100``).

        The estimate walks the cumulative bucket counts and interpolates
        linearly inside the matching base-2 bucket ``[2^e, 2^(e+1))``
        (the sentinel ``<=0`` bucket interpolates over ``[min, 0]``).
        Exact only at bucket edges; the error is bounded by the bucket
        width, which is all a shape summary needs.  The estimate is
        clamped to the exact ``[min, max]`` so p0/p100 are always right.
        """
        count, _, low_bound, high_bound, buckets = self._snapshot()
        return _estimate_percentile(q, count, low_bound, high_bound, buckets)

    def to_dict(self) -> Dict[str, object]:
        count, total, min_v, max_v, buckets = self._snapshot()
        return {
            "count": count,
            "sum": total,
            "min": min_v,
            "max": max_v,
            "mean": total / count if count else None,
            "p50": _estimate_percentile(50, count, min_v, max_v, buckets),
            "p95": _estimate_percentile(95, count, min_v, max_v, buckets),
            "p99": _estimate_percentile(99, count, min_v, max_v, buckets),
            "buckets": {
                ("<=0" if exp is None else f"2^{exp}"): n
                for exp, n in sorted(
                    buckets.items(),
                    key=lambda item: (-math.inf if item[0] is None
                                      else item[0]),
                )
            },
        }

    def __repr__(self) -> str:
        return (f"<Histogram {self.name} count={self.count} "
                f"mean={self.mean}>")


def _estimate_percentile(q: float, count: int, min_v: Optional[float],
                         max_v: Optional[float],
                         buckets: Dict[Optional[int], int]
                         ) -> Optional[float]:
    """Percentile estimate over a bucket snapshot (see ``percentile``)."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q!r}")
    if count == 0:
        return None
    rank = q / 100.0 * count
    cumulative = 0
    ordered = sorted(
        buckets.items(),
        key=lambda item: (-math.inf if item[0] is None else item[0]),
    )
    for exponent, samples in ordered:
        if samples and cumulative + samples >= rank:
            fraction = max(rank - cumulative, 0.0) / samples
            if exponent is None:
                low, high = min(min_v, 0.0), 0.0
            else:
                low, high = 2.0 ** exponent, 2.0 ** (exponent + 1)
            estimate = low + fraction * (high - low)
            return min(max(estimate, min_v), max_v)
        cumulative += samples
    return max_v


class TimerHandle:
    """Context manager returned by :meth:`MetricsRegistry.timer`.

    Measures one wall-clock span, records it into the registry histogram
    ``<name>.seconds`` and keeps the duration on ``.seconds`` so callers
    (the benchmark harness) can report the same number they exported.
    """

    __slots__ = ("_histogram", "_start", "seconds")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "TimerHandle":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start
        self._histogram.record(self.seconds)


class MetricsRegistry:
    """Named metrics, created on first use; one flat namespace.

    Get-or-create is guarded by a registry lock so two threads asking
    for the same name always share one instrument (an unlocked race
    would hand each thread its own ``Counter`` and silently drop one
    side's increments when the second insert wins).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors (get-or-create) --------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            with self._lock:
                metric = self._counters.get(name)
                if metric is None:
                    metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            with self._lock:
                metric = self._gauges.get(name)
                if metric is None:
                    metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            with self._lock:
                metric = self._histograms.get(name)
                if metric is None:
                    metric = self._histograms[name] = Histogram(name)
        return metric

    def timer(self, name: str) -> TimerHandle:
        """Time a ``with`` block into the histogram ``<name>.seconds``."""
        return TimerHandle(self.histogram(f"{name}.seconds"))

    # -- introspection & export ----------------------------------------
    def has_counter(self, name: str) -> bool:
        """True when the counter already exists (without creating it)."""
        return name in self._counters

    def __len__(self) -> int:
        with self._lock:
            return (len(self._counters) + len(self._gauges)
                    + len(self._histograms))

    def names(self) -> list:
        with self._lock:
            return sorted(
                list(self._counters) + list(self._gauges)
                + list(self._histograms)
            )

    def to_dict(self) -> Dict[str, object]:
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        return {
            "counters": {name: metric.value for name, metric in counters},
            "gauges": {name: metric.value for name, metric in gauges},
            "histograms": {name: metric.to_dict()
                           for name, metric in histograms},
        }

    def dump_json(self, path: str, *, extra: Optional[Dict[str, object]] = None) -> str:
        """Write the registry (plus optional extra sections) as JSON."""
        payload = self.to_dict()
        if extra:
            payload.update(extra)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
        return path

    def summary(self) -> str:
        """Human-readable listing for ``--stats`` output."""
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        lines = []
        if counters:
            lines.append("counters:")
            for name, metric in counters:
                lines.append(f"  {name:<32} {metric.value}")
        if gauges:
            lines.append("gauges:")
            for name, metric in gauges:
                lines.append(f"  {name:<32} {metric.value:g}")
        if histograms:
            lines.append("histograms:")
            for name, metric in histograms:
                mean = metric.mean
                lines.append(
                    f"  {name:<32} count={metric.count} "
                    f"min={metric.min:g} mean={mean:.4g} max={metric.max:g}"
                    if metric.count else f"  {name:<32} count=0"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"
