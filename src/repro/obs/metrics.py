"""Metrics registry: counters, gauges and histograms with JSON export.

The registry is the shared numeric vocabulary of the checker and the
benchmark harness: the engine populates it through
:class:`repro.obs.observer.Observer`, ``--metrics-json`` dumps it, and
:mod:`repro.bench.experiments` records its experiment timings into the
same structure so benchmark output and checker telemetry share one
schema.

Metric names are dotted lowercase (``divergence.livelock``,
``states.new``).  All three instrument types are allocation-free on the
update path (plain attribute arithmetic).
"""

from __future__ import annotations

import json
import math
import time
from typing import Dict, Optional


class Counter:
    """Monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A value that goes up and down (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Running distribution summary with exponential (base-2) buckets.

    Tracks count/sum/min/max exactly and bucket counts keyed by
    ``floor(log2(value))`` for a cheap shape estimate — enough to answer
    "how big do schedulable sets get" without storing samples.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        #: bucket exponent -> observations with floor(log2(v)) == exponent
        #: (values <= 0 land in the sentinel bucket None).
        self.buckets: Dict[Optional[int], int] = {}

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        exponent = math.floor(math.log2(value)) if value > 0 else None
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def percentile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-th percentile (``0 <= q <= 100``).

        The estimate walks the cumulative bucket counts and interpolates
        linearly inside the matching base-2 bucket ``[2^e, 2^(e+1))``
        (the sentinel ``<=0`` bucket interpolates over ``[min, 0]``).
        Exact only at bucket edges; the error is bounded by the bucket
        width, which is all a shape summary needs.  The estimate is
        clamped to the exact ``[min, max]`` so p0/p100 are always right.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q!r}")
        if self.count == 0:
            return None
        rank = q / 100.0 * self.count
        cumulative = 0
        ordered = sorted(
            self.buckets.items(),
            key=lambda item: (-math.inf if item[0] is None else item[0]),
        )
        for exponent, samples in ordered:
            if samples and cumulative + samples >= rank:
                fraction = max(rank - cumulative, 0.0) / samples
                if exponent is None:
                    low, high = min(self.min, 0.0), 0.0
                else:
                    low, high = 2.0 ** exponent, 2.0 ** (exponent + 1)
                estimate = low + fraction * (high - low)
                return min(max(estimate, self.min), self.max)
            cumulative += samples
        return self.max

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "buckets": {
                ("<=0" if exp is None else f"2^{exp}"): n
                for exp, n in sorted(
                    self.buckets.items(),
                    key=lambda item: (-math.inf if item[0] is None
                                      else item[0]),
                )
            },
        }

    def __repr__(self) -> str:
        return (f"<Histogram {self.name} count={self.count} "
                f"mean={self.mean}>")


class TimerHandle:
    """Context manager returned by :meth:`MetricsRegistry.timer`.

    Measures one wall-clock span, records it into the registry histogram
    ``<name>.seconds`` and keeps the duration on ``.seconds`` so callers
    (the benchmark harness) can report the same number they exported.
    """

    __slots__ = ("_histogram", "_start", "seconds")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "TimerHandle":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start
        self._histogram.record(self.seconds)


class MetricsRegistry:
    """Named metrics, created on first use; one flat namespace."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors (get-or-create) --------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    def timer(self, name: str) -> TimerHandle:
        """Time a ``with`` block into the histogram ``<name>.seconds``."""
        return TimerHandle(self.histogram(f"{name}.seconds"))

    # -- introspection & export ----------------------------------------
    def has_counter(self, name: str) -> bool:
        """True when the counter already exists (without creating it)."""
        return name in self._counters

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

    def names(self) -> list:
        return sorted(
            list(self._counters) + list(self._gauges)
            + list(self._histograms)
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "counters": {
                name: metric.value
                for name, metric in sorted(self._counters.items())
            },
            "gauges": {
                name: metric.value
                for name, metric in sorted(self._gauges.items())
            },
            "histograms": {
                name: metric.to_dict()
                for name, metric in sorted(self._histograms.items())
            },
        }

    def dump_json(self, path: str, *, extra: Optional[Dict[str, object]] = None) -> str:
        """Write the registry (plus optional extra sections) as JSON."""
        payload = self.to_dict()
        if extra:
            payload.update(extra)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
        return path

    def summary(self) -> str:
        """Human-readable listing for ``--stats`` output."""
        lines = []
        if self._counters:
            lines.append("counters:")
            for name, metric in sorted(self._counters.items()):
                lines.append(f"  {name:<32} {metric.value}")
        if self._gauges:
            lines.append("gauges:")
            for name, metric in sorted(self._gauges.items()):
                lines.append(f"  {name:<32} {metric.value:g}")
        if self._histograms:
            lines.append("histograms:")
            for name, metric in sorted(self._histograms.items()):
                mean = metric.mean
                lines.append(
                    f"  {name:<32} count={metric.count} "
                    f"min={metric.min:g} mean={mean:.4g} max={metric.max:g}"
                    if metric.count else f"  {name:<32} count=0"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"
