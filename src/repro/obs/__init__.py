"""Exploration telemetry: events, metrics, phase timers, traces, progress.

The checker runs with ``observer=None`` by default and pays nothing; pass
an :class:`Observer` to see inside a search::

    from repro import Checker
    from repro.obs import Observer

    observer = Observer()
    result = Checker(program, observer=observer).run()
    print(observer.summary())          # phase timings + metrics
    observer.dump_json("metrics.json") # machine-readable export

See ``docs/observability.md`` for the event schema and metric names.
"""

from repro.obs.events import (
    Backtrack,
    CallbackSink,
    CheckpointRecovered,
    CheckpointWriteFailed,
    CheckpointWritten,
    CollectingSink,
    CrashQuarantined,
    DivergenceClassified,
    FaultInjected,
    Event,
    EventSink,
    ExecutionAborted,
    ExecutionFinished,
    ExecutionStarted,
    ExplorationFinished,
    ExplorationStarted,
    IcbSweep,
    MultiSink,
    Preemption,
    SchedulingDecision,
    SearchInterrupted,
    ShardFinished,
    ShardStarted,
    ThreadLeaked,
    ViolationFound,
    WorkerCrashed,
    WorkerWedged,
    event_from_dict,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.observer import Observer
from repro.obs.progress import ProgressReporter
from repro.obs.timers import PHASES, PhaseTimers
from repro.obs.trace import JsonlTraceWriter, read_jsonl, schedule_from_events

__all__ = [
    "Backtrack",
    "CallbackSink",
    "CheckpointRecovered",
    "CheckpointWriteFailed",
    "CheckpointWritten",
    "CollectingSink",
    "Counter",
    "CrashQuarantined",
    "DivergenceClassified",
    "FaultInjected",
    "Event",
    "EventSink",
    "ExecutionAborted",
    "ExecutionFinished",
    "ExecutionStarted",
    "ExplorationFinished",
    "ExplorationStarted",
    "Gauge",
    "Histogram",
    "IcbSweep",
    "SearchInterrupted",
    "ShardFinished",
    "ShardStarted",
    "ThreadLeaked",
    "WorkerCrashed",
    "WorkerWedged",
    "JsonlTraceWriter",
    "MetricsRegistry",
    "MultiSink",
    "Observer",
    "PHASES",
    "PhaseTimers",
    "Preemption",
    "ProgressReporter",
    "SchedulingDecision",
    "ViolationFound",
    "event_from_dict",
    "read_jsonl",
    "schedule_from_events",
]
