"""Typed telemetry events emitted by the exploration engine.

The event stream is the narrative of a search: one exploration, many
executions, each execution a sequence of scheduling decisions.  Events
are small frozen dataclasses with JSON-friendly fields; a sink receives
them in order through :class:`EventSink.emit`.

The decision events are *replay-compatible*: collecting the ``index``
fields of one execution's :class:`SchedulingDecision` events in order
reproduces the guide that :func:`repro.engine.replay.replay_schedule`
accepts (see :func:`repro.obs.trace.schedule_from_events`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, ClassVar, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Event:
    """Base class for all telemetry events."""

    #: Stable wire name of the event (``type`` field of the JSON form).
    type: ClassVar[str] = "event"

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"type": self.type}
        data.update(dataclasses.asdict(self))
        return data


@dataclass(frozen=True)
class ExplorationStarted(Event):
    """A systematic search began."""

    type: ClassVar[str] = "exploration.started"

    program: str
    policy: str
    strategy: str


@dataclass(frozen=True)
class ExplorationFinished(Event):
    """The search finished (exhausted, stopped, or limited)."""

    type: ClassVar[str] = "exploration.finished"

    executions: int
    transitions: int
    wall_seconds: float
    complete: bool
    stop_reason: Optional[str]


@dataclass(frozen=True)
class ExecutionStarted(Event):
    """One execution (one path through the choice tree) began."""

    type: ClassVar[str] = "execution.started"

    execution: int  # 0-based index within the exploration


@dataclass(frozen=True)
class ExecutionFinished(Event):
    """One execution ended."""

    type: ClassVar[str] = "execution.finished"

    execution: int
    outcome: str
    steps: int
    preemptions: int
    hit_depth_bound: bool


@dataclass(frozen=True)
class SchedulingDecision(Event):
    """One nondeterministic choice (thread or data) was resolved.

    ``index``/``options`` mirror :class:`repro.engine.results.Decision`;
    the in-order sequence of ``index`` values for one execution *is* the
    replayable schedule.
    """

    type: ClassVar[str] = "scheduling.decision"

    execution: int
    step: int  # transitions executed before this decision
    kind: str  # "thread" or "data"
    index: int
    options: int
    chosen: str  # repr of the thread id or data value
    schedulable: int  # |T| at this state (0 for data choices)
    enabled: int  # |ES| at this state (0 for data choices)


@dataclass(frozen=True)
class Preemption(Event):
    """A context switch that counts against the preemption bound."""

    type: ClassVar[str] = "preemption"

    execution: int
    step: int
    preempted: str  # thread that was running
    scheduled: str  # thread that took over
    count: int  # preemptions so far in this execution


@dataclass(frozen=True)
class Backtrack(Event):
    """DFS backtracked to a shallower decision for the next execution."""

    type: ClassVar[str] = "backtrack"

    execution: int  # execution just finished
    depth: int  # length of the next guide (index of the bumped decision + 1)


@dataclass(frozen=True)
class DivergenceClassified(Event):
    """A depth-bound-exceeding execution was classified (Section 2)."""

    type: ClassVar[str] = "divergence.classified"

    execution: int
    kind: str  # DivergenceKind.value
    culprits: Tuple[str, ...]
    window: int
    detail: str


@dataclass(frozen=True)
class ViolationFound(Event):
    """A safety property failed during an execution."""

    type: ClassVar[str] = "violation.found"

    execution: int
    step: int
    message: str


@dataclass(frozen=True)
class IcbSweep(Event):
    """One bound of an iterative-context-bounding sweep completed."""

    type: ClassVar[str] = "icb.sweep"

    bound: int
    executions: int
    transitions: int
    found_violation: bool
    wall_seconds: float


@dataclass(frozen=True)
class CheckpointWritten(Event):
    """A search checkpoint was flushed to disk."""

    type: ClassVar[str] = "checkpoint.written"

    path: str
    executions: int  # executions folded into the snapshot


@dataclass(frozen=True)
class ExecutionAborted(Event):
    """The execution watchdog cut one execution short."""

    type: ClassVar[str] = "execution.aborted"

    execution: int
    step: int
    reason: str


@dataclass(frozen=True)
class CrashQuarantined(Event):
    """A crashing execution was captured as a finding and set aside."""

    type: ClassVar[str] = "crash.quarantined"

    execution: int
    message: str
    path: Optional[str]  # repro file in the quarantine dir, if any


@dataclass(frozen=True)
class ThreadLeaked(Event):
    """Native threads survived execution teardown (hung in user code)."""

    type: ClassVar[str] = "thread.leaked"

    execution: int
    threads: Tuple[str, ...]


@dataclass(frozen=True)
class SearchInterrupted(Event):
    """The search stopped gracefully on an operator signal."""

    type: ClassVar[str] = "search.interrupted"

    signal: str


@dataclass(frozen=True)
class ShardStarted(Event):
    """A worker picked up one shard of a parallel search."""

    type: ClassVar[str] = "shard.started"

    shard: int
    worker: int
    description: str  # the shard's prefix or walk range


@dataclass(frozen=True)
class ShardFinished(Event):
    """One shard of a parallel search was merged into the totals."""

    type: ClassVar[str] = "shard.finished"

    shard: int
    worker: int
    executions: int
    transitions: int
    found_violation: bool


@dataclass(frozen=True)
class WorkerCrashed(Event):
    """A worker process died mid-shard; the shard was requeued or
    quarantined (docs/parallel.md)."""

    type: ClassVar[str] = "worker.crashed"

    worker: int
    shard: int  # -1 when the worker was idle
    requeued: bool


@dataclass(frozen=True)
class FaultInjected(Event):
    """The chaos plane fired one injected fault (docs/resilience.md)."""

    type: ClassVar[str] = "fault.injected"

    point: str  # fault-point name, e.g. "checkpoint.write"
    kind: str  # fault kind, e.g. "torn-write"
    hit: int  # 1-based hit count of the point when it fired


@dataclass(frozen=True)
class WorkerWedged(Event):
    """A worker stopped heartbeating (SIGSTOP, livelock) and was killed;
    its shard was requeued like a crashed worker's."""

    type: ClassVar[str] = "worker.wedged"

    worker: int
    shard: int  # -1 when the worker was idle
    silent_seconds: float  # time since its last heartbeat
    requeued: bool


@dataclass(frozen=True)
class CheckpointRecovered(Event):
    """A corrupt/truncated checkpoint was quarantined and the previous
    snapshot loaded in its place."""

    type: ClassVar[str] = "checkpoint.recovered"

    path: str  # the checkpoint that failed to load
    quarantined: Optional[str]  # where the bad file was moved, if it was


@dataclass(frozen=True)
class CheckpointWriteFailed(Event):
    """The disk refused a checkpoint write (ENOSPC, EIO); the search
    degraded to its last good snapshot instead of dying."""

    type: ClassVar[str] = "checkpoint.write_failed"

    path: str
    error: str


@dataclass(frozen=True)
class JobSubmitted(Event):
    """A checking job was admitted by the service (docs/service.md)."""

    type: ClassVar[str] = "job.submitted"

    job: str
    program: str
    priority: str
    client: str


@dataclass(frozen=True)
class JobStateChanged(Event):
    """A job moved through its lifecycle state machine."""

    type: ClassVar[str] = "job.state"

    job: str
    state: str  # JobState.value
    verdict: Optional[str]  # "pass"/"fail" once done
    error: Optional[str]


@dataclass(frozen=True)
class JobQuantumFinished(Event):
    """One scheduler quantum of a job completed (cumulative counters)."""

    type: ClassVar[str] = "job.quantum"

    job: str
    quantum: int  # 1-based quantum index for this job
    executions: int  # cumulative executions across all quanta
    transitions: int
    requeued: bool  # True when the job still has work left


#: Registry of wire names, for trace readers.
EVENT_TYPES: Dict[str, type] = {
    cls.type: cls
    for cls in (
        ExplorationStarted,
        ExplorationFinished,
        ExecutionStarted,
        ExecutionFinished,
        SchedulingDecision,
        Preemption,
        Backtrack,
        DivergenceClassified,
        ViolationFound,
        IcbSweep,
        CheckpointWritten,
        ExecutionAborted,
        CrashQuarantined,
        ThreadLeaked,
        SearchInterrupted,
        ShardStarted,
        ShardFinished,
        WorkerCrashed,
        FaultInjected,
        WorkerWedged,
        CheckpointRecovered,
        CheckpointWriteFailed,
        JobSubmitted,
        JobStateChanged,
        JobQuantumFinished,
    )
}


class EventSink:
    """Receives engine events; the base class swallows them (no-op)."""

    def emit(self, event: Event) -> None:  # pragma: no cover - interface
        pass

    def close(self) -> None:
        """Flush and release any resources held by the sink."""


class CollectingSink(EventSink):
    """Keeps every event in a list — the test/inspection sink."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def of_type(self, event_type: type) -> List[Event]:
        return [e for e in self.events if isinstance(e, event_type)]


class CallbackSink(EventSink):
    """Forwards every event to a callable."""

    def __init__(self, callback: Callable[[Event], None]) -> None:
        self._callback = callback

    def emit(self, event: Event) -> None:
        self._callback(event)


class MultiSink(EventSink):
    """Fans events out to several sinks in order."""

    def __init__(self, *sinks: EventSink) -> None:
        self.sinks = list(sinks)

    def emit(self, event: Event) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def event_from_dict(data: Dict[str, object]) -> Event:
    """Reconstruct an event from its JSON form (inverse of ``to_dict``)."""
    kind = data.get("type")
    cls = EVENT_TYPES.get(kind)  # type: ignore[arg-type]
    if cls is None:
        raise ValueError(f"unknown event type {kind!r}")
    fields = {f.name for f in dataclasses.fields(cls)}
    kwargs = {k: v for k, v in data.items() if k in fields}
    if "culprits" in kwargs and isinstance(kwargs["culprits"], list):
        kwargs["culprits"] = tuple(kwargs["culprits"])
    if "threads" in kwargs and isinstance(kwargs["threads"], list):
        kwargs["threads"] = tuple(kwargs["threads"])
    return cls(**kwargs)  # type: ignore[arg-type]
