"""Periodic progress reporting for long explorations.

Large searches run for minutes to hours; the reporter prints one status
line at most every ``interval_seconds``, driven by the per-execution
callback (no background thread — the checker is deterministic and should
stay that way).
"""

from __future__ import annotations

import sys
import time
from typing import IO, Optional


class ProgressReporter:
    """Rate-limited status lines on a stream (stderr by default)."""

    def __init__(
        self,
        interval_seconds: float = 1.0,
        stream: Optional[IO[str]] = None,
        clock=time.perf_counter,
    ) -> None:
        self.interval_seconds = interval_seconds
        self.stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self._start = clock()
        self._last_emit: Optional[float] = None
        self.lines_emitted = 0

    def maybe_report(self, executions: int, transitions: int, *,
                     violations: int = 0, divergences: int = 0) -> bool:
        """Emit a line if the interval elapsed; returns True when it did."""
        now = self._clock()
        if (self._last_emit is not None
                and now - self._last_emit < self.interval_seconds):
            return False
        self.report(executions, transitions, violations=violations,
                    divergences=divergences, now=now)
        return True

    def report(self, executions: int, transitions: int, *,
               violations: int = 0, divergences: int = 0,
               now: Optional[float] = None) -> None:
        now = self._clock() if now is None else now
        elapsed = max(now - self._start, 1e-9)
        self.stream.write(
            f"[progress] executions={executions} transitions={transitions} "
            f"violations={violations} divergences={divergences} "
            f"exec/s={executions / elapsed:.1f} "
            f"trans/s={transitions / elapsed:.0f} "
            f"elapsed={elapsed:.1f}s\n"
        )
        self.stream.flush()
        self._last_emit = now
        self.lines_emitted += 1
