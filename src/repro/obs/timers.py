"""Phase timers: split exploration wall time into engine phases.

The executor inner loop has six distinguishable costs:

* ``policy`` — computing the schedulable set ``T`` from ``ES``
  (Algorithm 1's bookkeeping lives here);
* ``schedule`` — resolving the nondeterministic choice (chooser);
* ``execute`` — running the chosen transition and its monitors;
* ``hash`` — state-signature computation for coverage tracking;
* ``classify`` — divergence classification at the depth bound;
* ``snapshot`` — prefix-snapshot capture and restore
  (docs/performance.md).

Timers use :func:`time.perf_counter` pairs added manually at the call
sites (a context manager per transition would dominate the measurement);
:meth:`measure` exists for the coarse-grained sites.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Tuple

#: Canonical phase order for reports.
PHASES: Tuple[str, ...] = ("policy", "schedule", "execute", "hash",
                           "classify", "snapshot")


class PhaseTimers:
    """Accumulated seconds and sample counts per phase."""

    __slots__ = ("totals", "counts")

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}

    def add(self, phase: str, seconds: float) -> None:
        self.totals[phase] = self.totals.get(phase, 0.0) + seconds
        self.counts[phase] = self.counts.get(phase, 0) + 1

    @contextmanager
    def measure(self, phase: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(phase, time.perf_counter() - start)

    def seconds(self, phase: str) -> float:
        return self.totals.get(phase, 0.0)

    @property
    def total_seconds(self) -> float:
        return sum(self.totals.values())

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        return {
            phase: {
                "seconds": self.totals[phase],
                "samples": self.counts.get(phase, 0),
            }
            for phase in sorted(self.totals)
        }

    def merge_state(self, state: Dict[str, Dict[str, float]]) -> None:
        """Fold another timer's :meth:`to_dict` export into this one.

        Used by the parallel coordinator to aggregate forked workers'
        phase timings into the merged result, so ``--stats`` under
        ``--workers N`` reports the pool's full policy/execute/hash time
        rather than just the coordinator's own.
        """
        for phase, entry in state.items():
            self.totals[phase] = (self.totals.get(phase, 0.0)
                                  + float(entry.get("seconds", 0.0)))
            self.counts[phase] = (self.counts.get(phase, 0)
                                  + int(entry.get("samples", 0)))

    def summary(self) -> str:
        """Phase table with share of the measured total."""
        if not self.totals:
            return "(no phases timed)"
        total = self.total_seconds or 1.0
        ordered = [p for p in PHASES if p in self.totals]
        ordered += [p for p in sorted(self.totals) if p not in PHASES]
        lines = [f"{'phase':<10} {'seconds':>10} {'share':>7} {'samples':>9}"]
        for phase in ordered:
            seconds = self.totals[phase]
            lines.append(
                f"{phase:<10} {seconds:>10.4f} "
                f"{100.0 * seconds / total:>6.1f}% "
                f"{self.counts.get(phase, 0):>9}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<PhaseTimers {self.totals!r}>"
