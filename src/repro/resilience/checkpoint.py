"""Checkpoint persistence: resumable searches.

The CHESS evaluation runs millions of executions against real systems
code; a crash or interrupt hours into such a search must not forfeit the
results.  A *checkpoint* is a versioned JSON snapshot of everything a
strategy needs to continue where it stopped:

* the strategy *frontier* (the next guide for DFS, the queue for BFS,
  the remaining budget and RNG state for random search, the current
  bound plus inner state for ICB);
* the aggregated partial results (counts plus the schedules of every
  violating / diverging / crashing execution found so far);
* the RNG state of any random component, so a resumed search makes the
  identical choices an uninterrupted one would have made.

Writes are atomic — the snapshot is serialized to ``<path>.tmp`` and
``os.replace``d over the target — so an interrupt mid-write can never
leave a truncated checkpoint behind.

The serialization here is intentionally *lossy about traces*: recorded
schedules replay deterministically, so a resumed checker can always
reconstruct a full trace with :func:`repro.engine.replay.replay_schedule`
instead of persisting megabytes of trace text.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.engine.results import (
    Decision,
    DivergenceKind,
    DivergenceReport,
    ExecutionResult,
    ExplorationResult,
    Outcome,
)
from repro.runtime.errors import (
    AssertionViolation,
    DeadlockViolation,
    PropertyViolation,
    SyncUsageError,
    TaskCrash,
)

FORMAT_VERSION = 1

#: ``PropertyViolation.kind`` -> class, for faithful reconstruction.
_VIOLATION_CLASSES = {
    cls.kind: cls
    for cls in (PropertyViolation, AssertionViolation, SyncUsageError,
                DeadlockViolation, TaskCrash)
}


# ----------------------------------------------------------------------
# RNG state
# ----------------------------------------------------------------------

def freeze_rng(rng: random.Random) -> list:
    """``random.Random`` state as a JSON-serializable value."""
    version, internal, gauss_next = rng.getstate()
    return [version, list(internal), gauss_next]


def thaw_rng(rng: random.Random, state) -> None:
    """Restore a state produced by :func:`freeze_rng`."""
    version, internal, gauss_next = state
    rng.setstate((version, tuple(internal), gauss_next))


# ----------------------------------------------------------------------
# Execution records
# ----------------------------------------------------------------------

def record_to_state(record: ExecutionResult) -> dict:
    """A JSON-serializable snapshot of one kept execution record.

    Keeps the replayable schedule and the classification; drops the
    trace (replay regenerates it deterministically).
    """
    state: Dict[str, object] = {
        "outcome": record.outcome.value,
        "steps": record.steps,
        "preemptions": record.preemptions,
        "hit_depth_bound": record.hit_depth_bound,
        "completed_randomly": record.completed_randomly,
        "decisions": [[d.kind, d.index, d.options] for d in record.decisions],
    }
    if record.violation is not None:
        state["violation"] = {
            "kind": getattr(record.violation, "kind", "safety"),
            "message": str(record.violation),
        }
    if record.divergence is not None:
        state["divergence"] = {
            "kind": record.divergence.kind.value,
            "culprits": list(record.divergence.culprits),
            "window": record.divergence.window,
            "detail": record.divergence.detail,
        }
    if record.crash is not None:
        state["crash"] = str(record.crash)
    if record.abort_reason is not None:
        state["abort_reason"] = record.abort_reason
    return state


def record_from_state(state: dict) -> ExecutionResult:
    """Inverse of :func:`record_to_state` (trace-less)."""
    violation = None
    if "violation" in state:
        stored = state["violation"]
        cls = _VIOLATION_CLASSES.get(stored.get("kind"), PropertyViolation)
        violation = cls(stored["message"])
    divergence = None
    if "divergence" in state:
        stored = state["divergence"]
        divergence = DivergenceReport(
            kind=DivergenceKind(stored["kind"]),
            culprits=tuple(stored.get("culprits", ())),
            window=stored.get("window", 0),
            detail=stored.get("detail", ""),
        )
    crash = None
    if "crash" in state:
        crash = TaskCrash(state["crash"])
    return ExecutionResult(
        outcome=Outcome(state["outcome"]),
        decisions=[Decision(kind, index, options, None)
                   for kind, index, options in state.get("decisions", [])],
        steps=state.get("steps", 0),
        preemptions=state.get("preemptions", 0),
        violation=violation,
        divergence=divergence,
        crash=crash,
        abort_reason=state.get("abort_reason"),
        hit_depth_bound=state.get("hit_depth_bound", False),
        completed_randomly=state.get("completed_randomly", False),
    )


# ----------------------------------------------------------------------
# Aggregated exploration results
# ----------------------------------------------------------------------

def exploration_to_state(result: ExplorationResult) -> dict:
    """Serialize partial (or final) aggregated results for a checkpoint."""
    return {
        "program": result.program_name,
        "policy": result.policy_name,
        "strategy": result.strategy_name,
        "executions": result.executions,
        "transitions": result.transitions,
        "outcomes": {outcome.value: count
                     for outcome, count in result.outcomes.items()},
        "violations": [record_to_state(r) for r in result.violations],
        "deadlocks": [record_to_state(r) for r in result.deadlocks],
        "divergences": [record_to_state(r) for r in result.divergences],
        "crashes": [record_to_state(r) for r in result.crashes],
        "nonterminating_executions": result.nonterminating_executions,
        "aborted_executions": result.aborted_executions,
        "wall_seconds": result.wall_seconds,
        "complete": result.complete,
        "limit_hit": result.limit_hit,
        "stop_reason": result.stop_reason,
        "first_violation_execution": result.first_violation_execution,
        "states_covered": result.states_covered,
    }


def exploration_from_state(state: dict) -> ExplorationResult:
    """Inverse of :func:`exploration_to_state`."""
    result = ExplorationResult(
        program_name=state.get("program", ""),
        policy_name=state.get("policy", ""),
        strategy_name=state.get("strategy", ""),
        executions=state.get("executions", 0),
        transitions=state.get("transitions", 0),
        violations=[record_from_state(r)
                    for r in state.get("violations", [])],
        deadlocks=[record_from_state(r) for r in state.get("deadlocks", [])],
        divergences=[record_from_state(r)
                     for r in state.get("divergences", [])],
        crashes=[record_from_state(r) for r in state.get("crashes", [])],
        nonterminating_executions=state.get("nonterminating_executions", 0),
        aborted_executions=state.get("aborted_executions", 0),
        wall_seconds=state.get("wall_seconds", 0.0),
        complete=state.get("complete", False),
        limit_hit=state.get("limit_hit", False),
        stop_reason=state.get("stop_reason"),
        first_violation_execution=state.get("first_violation_execution"),
        states_covered=state.get("states_covered"),
    )
    for outcome_value, count in state.get("outcomes", {}).items():
        result.outcomes[Outcome(outcome_value)] = count
    return result


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------

class CheckpointStore:
    """Versioned checkpoint file with atomic (tmp + rename) writes.

    Opening a store sweeps up any stale ``<name>.tmp`` sibling left by a
    write that was killed between serializing and renaming (the atomic
    path guarantees the *checkpoint* is never truncated, but the orphan
    tmp file itself would otherwise accumulate across interrupted runs).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        stale = self._tmp_path()
        if stale.exists():
            try:
                stale.unlink()
            except OSError:
                pass  # unreadable/foreign tmp file: leave it alone

    def _tmp_path(self) -> Path:
        return self.path.with_name(self.path.name + ".tmp")

    def exists(self) -> bool:
        return self.path.exists()

    def save(self, payload: dict) -> Path:
        """Write ``payload`` atomically; returns the checkpoint path."""
        document = dict(payload)
        document["format"] = FORMAT_VERSION
        document["saved_at"] = time.time()
        tmp = self._tmp_path()
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text(
            json.dumps(document, indent=2, sort_keys=True, default=str) + "\n")
        os.replace(tmp, self.path)
        return self.path

    def delete(self) -> bool:
        """Remove the checkpoint (and any ``.tmp`` sibling).

        Returns True when a checkpoint file was actually removed.  Used
        by long-lived owners — the checking service garbage-collects a
        job's checkpoint the moment the job reaches a terminal state —
        so finished work never leaves resume state behind.
        """
        removed = False
        for candidate in (self.path, self._tmp_path()):
            try:
                candidate.unlink()
                removed = removed or candidate == self.path
            except FileNotFoundError:
                pass
        return removed

    @staticmethod
    def list(directory: Union[str, Path]) -> List[Path]:
        """Valid checkpoint files directly under ``directory``, sorted.

        A file qualifies when it parses as a JSON object carrying this
        module's ``format`` marker and a strategy ``state`` — foreign
        JSON (repro files, job records) is skipped, as are unreadable
        files.  A missing directory is an empty listing, not an error.
        """
        root = Path(directory)
        if not root.is_dir():
            return []
        found: List[Path] = []
        for path in sorted(root.iterdir()):
            if not path.is_file() or path.name.endswith(".tmp"):
                continue
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                continue
            if (isinstance(payload, dict)
                    and payload.get("format") == FORMAT_VERSION
                    and isinstance(payload.get("state"), dict)):
                found.append(path)
        return found

    @staticmethod
    def sweep_stale(directory: Union[str, Path], max_age: float,
                    *, now: Optional[float] = None) -> List[Path]:
        """Delete checkpoints older than ``max_age`` seconds; returns them.

        Age is measured from the checkpoint's own ``saved_at`` stamp
        (falling back to the file mtime for hand-edited files).  Only
        files :meth:`list` recognizes as checkpoints are touched, so a
        sweep over a mixed directory can never eat repro schedules or
        job records.
        """
        reference = time.time() if now is None else now
        deleted: List[Path] = []
        for path in CheckpointStore.list(directory):
            try:
                payload = json.loads(path.read_text())
                saved_at = payload.get("saved_at")
                if not isinstance(saved_at, (int, float)):
                    saved_at = path.stat().st_mtime
                if reference - saved_at > max_age:
                    path.unlink()
                    deleted.append(path)
            except OSError:
                continue  # raced with another sweeper; nothing to do
        return deleted

    def load(self) -> dict:
        """Read and validate the checkpoint; raises ``ValueError`` when
        the file is truncated, corrupt, or from a different format."""
        try:
            payload = json.loads(self.path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"checkpoint {self.path} is truncated or corrupt: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise ValueError(f"checkpoint {self.path} is not a JSON object")
        if payload.get("format") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint format {payload.get('format')!r} "
                f"(this build reads format {FORMAT_VERSION})"
            )
        if not isinstance(payload.get("state"), dict):
            raise ValueError(f"checkpoint {self.path} has no strategy state")
        return payload


def load_checkpoint(path: Union[str, Path]) -> dict:
    """Convenience wrapper: read + validate one checkpoint file."""
    return CheckpointStore(path).load()
