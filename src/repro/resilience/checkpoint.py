"""Checkpoint persistence: resumable searches.

The CHESS evaluation runs millions of executions against real systems
code; a crash or interrupt hours into such a search must not forfeit the
results.  A *checkpoint* is a versioned JSON snapshot of everything a
strategy needs to continue where it stopped:

* the strategy *frontier* (the next guide for DFS, the queue for BFS,
  the remaining budget and RNG state for random search, the current
  bound plus inner state for ICB);
* the aggregated partial results (counts plus the schedules of every
  violating / diverging / crashing execution found so far);
* the RNG state of any random component, so a resumed search makes the
  identical choices an uninterrupted one would have made.

Writes are atomic and durable — the snapshot goes through
:func:`repro.durableio.atomic_write` (tmp file, fsync, ``os.replace``,
directory fsync), so an interrupt mid-write can never leave a truncated
checkpoint behind and a completed save survives kill -9.  Before each
save the current checkpoint is hardlinked onto a ``.prev`` sibling, so
even a checkpoint corrupted *after* publication (torn by a dying disk, a
dropped fsync plus power cut) is recoverable: :meth:`CheckpointStore.\
load_or_recover` quarantines the bad file to ``.corrupt`` and falls back
to the last good snapshot.

The serialization here is intentionally *lossy about traces*: recorded
schedules replay deterministically, so a resumed checker can always
reconstruct a full trace with :func:`repro.engine.replay.replay_schedule`
instead of persisting megabytes of trace text.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.chaos.faults import record_op
from repro.durableio import atomic_write_text

from repro.engine.results import (
    Decision,
    DivergenceKind,
    DivergenceReport,
    ExecutionResult,
    ExplorationResult,
    Outcome,
)
from repro.runtime.errors import (
    AssertionViolation,
    DeadlockViolation,
    PropertyViolation,
    SyncUsageError,
    TaskCrash,
)

FORMAT_VERSION = 1

#: ``PropertyViolation.kind`` -> class, for faithful reconstruction.
_VIOLATION_CLASSES = {
    cls.kind: cls
    for cls in (PropertyViolation, AssertionViolation, SyncUsageError,
                DeadlockViolation, TaskCrash)
}


# ----------------------------------------------------------------------
# RNG state
# ----------------------------------------------------------------------

def freeze_rng(rng: random.Random) -> list:
    """``random.Random`` state as a JSON-serializable value."""
    version, internal, gauss_next = rng.getstate()
    return [version, list(internal), gauss_next]


def thaw_rng(rng: random.Random, state) -> None:
    """Restore a state produced by :func:`freeze_rng`."""
    version, internal, gauss_next = state
    rng.setstate((version, tuple(internal), gauss_next))


# ----------------------------------------------------------------------
# Execution records
# ----------------------------------------------------------------------

def record_to_state(record: ExecutionResult) -> dict:
    """A JSON-serializable snapshot of one kept execution record.

    Keeps the replayable schedule and the classification; drops the
    trace (replay regenerates it deterministically).
    """
    state: Dict[str, object] = {
        "outcome": record.outcome.value,
        "steps": record.steps,
        "preemptions": record.preemptions,
        "hit_depth_bound": record.hit_depth_bound,
        "completed_randomly": record.completed_randomly,
        "decisions": [[d.kind, d.index, d.options] for d in record.decisions],
    }
    if record.violation is not None:
        state["violation"] = {
            "kind": getattr(record.violation, "kind", "safety"),
            "message": str(record.violation),
        }
    if record.divergence is not None:
        state["divergence"] = {
            "kind": record.divergence.kind.value,
            "culprits": list(record.divergence.culprits),
            "window": record.divergence.window,
            "detail": record.divergence.detail,
        }
    if record.crash is not None:
        state["crash"] = str(record.crash)
    if record.abort_reason is not None:
        state["abort_reason"] = record.abort_reason
    return state


def record_from_state(state: dict) -> ExecutionResult:
    """Inverse of :func:`record_to_state` (trace-less)."""
    violation = None
    if "violation" in state:
        stored = state["violation"]
        cls = _VIOLATION_CLASSES.get(stored.get("kind"), PropertyViolation)
        violation = cls(stored["message"])
    divergence = None
    if "divergence" in state:
        stored = state["divergence"]
        divergence = DivergenceReport(
            kind=DivergenceKind(stored["kind"]),
            culprits=tuple(stored.get("culprits", ())),
            window=stored.get("window", 0),
            detail=stored.get("detail", ""),
        )
    crash = None
    if "crash" in state:
        crash = TaskCrash(state["crash"])
    return ExecutionResult(
        outcome=Outcome(state["outcome"]),
        decisions=[Decision(kind, index, options, None)
                   for kind, index, options in state.get("decisions", [])],
        steps=state.get("steps", 0),
        preemptions=state.get("preemptions", 0),
        violation=violation,
        divergence=divergence,
        crash=crash,
        abort_reason=state.get("abort_reason"),
        hit_depth_bound=state.get("hit_depth_bound", False),
        completed_randomly=state.get("completed_randomly", False),
    )


# ----------------------------------------------------------------------
# Aggregated exploration results
# ----------------------------------------------------------------------

def exploration_to_state(result: ExplorationResult) -> dict:
    """Serialize partial (or final) aggregated results for a checkpoint."""
    return {
        "program": result.program_name,
        "policy": result.policy_name,
        "strategy": result.strategy_name,
        "executions": result.executions,
        "transitions": result.transitions,
        "outcomes": {outcome.value: count
                     for outcome, count in result.outcomes.items()},
        "violations": [record_to_state(r) for r in result.violations],
        "deadlocks": [record_to_state(r) for r in result.deadlocks],
        "divergences": [record_to_state(r) for r in result.divergences],
        "crashes": [record_to_state(r) for r in result.crashes],
        "nonterminating_executions": result.nonterminating_executions,
        "aborted_executions": result.aborted_executions,
        "wall_seconds": result.wall_seconds,
        "complete": result.complete,
        "limit_hit": result.limit_hit,
        "stop_reason": result.stop_reason,
        "first_violation_execution": result.first_violation_execution,
        "states_covered": result.states_covered,
    }


def exploration_from_state(state: dict) -> ExplorationResult:
    """Inverse of :func:`exploration_to_state`."""
    result = ExplorationResult(
        program_name=state.get("program", ""),
        policy_name=state.get("policy", ""),
        strategy_name=state.get("strategy", ""),
        executions=state.get("executions", 0),
        transitions=state.get("transitions", 0),
        violations=[record_from_state(r)
                    for r in state.get("violations", [])],
        deadlocks=[record_from_state(r) for r in state.get("deadlocks", [])],
        divergences=[record_from_state(r)
                     for r in state.get("divergences", [])],
        crashes=[record_from_state(r) for r in state.get("crashes", [])],
        nonterminating_executions=state.get("nonterminating_executions", 0),
        aborted_executions=state.get("aborted_executions", 0),
        wall_seconds=state.get("wall_seconds", 0.0),
        complete=state.get("complete", False),
        limit_hit=state.get("limit_hit", False),
        stop_reason=state.get("stop_reason"),
        first_violation_execution=state.get("first_violation_execution"),
        states_covered=state.get("states_covered"),
    )
    for outcome_value, count in state.get("outcomes", {}).items():
        result.outcomes[Outcome(outcome_value)] = count
    return result


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------

class CheckpointStore:
    """Versioned checkpoint file with atomic (tmp + rename) writes.

    Opening a store sweeps up any stale ``<name>.tmp`` sibling left by a
    write that was killed between serializing and renaming (the atomic
    path guarantees the *checkpoint* is never truncated, but the orphan
    tmp file itself would otherwise accumulate across interrupted runs).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        for stale in (self._tmp_path(), self._prevtmp_path()):
            if stale.exists():
                try:
                    stale.unlink()
                except OSError:
                    pass  # unreadable/foreign tmp file: leave it alone

    def _tmp_path(self) -> Path:
        return self.path.with_name(self.path.name + ".tmp")

    def _prev_path(self) -> Path:
        return self.path.with_name(self.path.name + ".prev")

    def _prevtmp_path(self) -> Path:
        return self.path.with_name(self.path.name + ".prevtmp")

    def _corrupt_path(self) -> Path:
        return self.path.with_name(self.path.name + ".corrupt")

    def exists(self) -> bool:
        return self.path.exists()

    def recoverable(self) -> bool:
        """True when a resume has *something* to work with — the
        checkpoint itself or its ``.prev`` rotation sibling."""
        return self.path.exists() or self._prev_path().exists()

    def _rotate(self) -> None:
        """Hardlink the current checkpoint onto ``.prev``.

        Runs before every save, so the last *published* snapshot stays
        reachable even if the new one is torn by a fault between rename
        and fsync.  Best-effort: a filesystem without hardlinks just
        loses the second line of defense, not the save.
        """
        if not self.path.exists():
            return
        tmp_link = self._prevtmp_path()
        try:
            if tmp_link.exists():
                tmp_link.unlink()
            os.link(self.path, tmp_link)
            os.replace(tmp_link, self._prev_path())
            record_op("link", str(self.path), str(self._prev_path()))
        except OSError:
            pass

    def save(self, payload: dict) -> Path:
        """Write ``payload`` atomically and durably; returns the path.

        Raises ``OSError`` when the disk refuses the write (ENOSPC,
        EIO): callers that must outlive a full disk catch it and degrade
        (see ``ResilienceController.flush_checkpoint``).
        """
        document = dict(payload)
        document["format"] = FORMAT_VERSION
        document["saved_at"] = time.time()
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._rotate()
        text = json.dumps(
            document, indent=2, sort_keys=True, default=str) + "\n"
        atomic_write_text(self.path, text, label="checkpoint")
        return self.path

    def delete(self) -> bool:
        """Remove the checkpoint and every sibling it may have spawned
        (``.tmp``, ``.prev``, ``.prevtmp``, ``.corrupt``).

        Returns True when a checkpoint file was actually removed.  Used
        by long-lived owners — the checking service garbage-collects a
        job's checkpoint the moment the job reaches a terminal state —
        so finished work never leaves resume state behind.
        """
        removed = False
        for candidate in (self.path, self._tmp_path(), self._prev_path(),
                          self._prevtmp_path(), self._corrupt_path()):
            try:
                candidate.unlink()
                removed = removed or candidate == self.path
            except FileNotFoundError:
                pass
        return removed

    @staticmethod
    def list(directory: Union[str, Path]) -> List[Path]:
        """Valid checkpoint files directly under ``directory``, sorted.

        A file qualifies when it parses as a JSON object carrying this
        module's ``format`` marker and a strategy ``state`` — foreign
        JSON (repro files, job records) is skipped, as are unreadable
        files.  A missing directory is an empty listing, not an error.
        """
        root = Path(directory)
        if not root.is_dir():
            return []
        found: List[Path] = []
        skip = (".tmp", ".prev", ".prevtmp", ".corrupt")
        for path in sorted(root.iterdir()):
            if not path.is_file() or path.name.endswith(skip):
                continue
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                continue
            if (isinstance(payload, dict)
                    and payload.get("format") == FORMAT_VERSION
                    and isinstance(payload.get("state"), dict)):
                found.append(path)
        return found

    @staticmethod
    def sweep_stale(directory: Union[str, Path], max_age: float,
                    *, now: Optional[float] = None) -> List[Path]:
        """Delete checkpoints older than ``max_age`` seconds; returns them.

        Age is measured from the checkpoint's own ``saved_at`` stamp
        (falling back to the file mtime for hand-edited files).  Only
        files :meth:`list` recognizes as checkpoints are touched, so a
        sweep over a mixed directory can never eat repro schedules or
        job records.
        """
        reference = time.time() if now is None else now
        deleted: List[Path] = []
        for path in CheckpointStore.list(directory):
            try:
                payload = json.loads(path.read_text())
                saved_at = payload.get("saved_at")
                if not isinstance(saved_at, (int, float)):
                    saved_at = path.stat().st_mtime
                if reference - saved_at > max_age:
                    path.unlink()
                    deleted.append(path)
            except OSError:
                continue  # raced with another sweeper; nothing to do
        return deleted

    def load(self) -> dict:
        """Read and validate the checkpoint; raises ``ValueError`` when
        the file is truncated, corrupt, or from a different format."""
        try:
            payload = json.loads(self.path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"checkpoint {self.path} is truncated or corrupt: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise ValueError(f"checkpoint {self.path} is not a JSON object")
        if payload.get("format") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint format {payload.get('format')!r} "
                f"(this build reads format {FORMAT_VERSION})"
            )
        if not isinstance(payload.get("state"), dict):
            raise ValueError(f"checkpoint {self.path} has no strategy state")
        return payload

    @staticmethod
    def _validate(path: Path) -> dict:
        payload = json.loads(path.read_text())
        if (not isinstance(payload, dict)
                or payload.get("format") != FORMAT_VERSION
                or not isinstance(payload.get("state"), dict)):
            raise ValueError(f"checkpoint {path} is not a valid "
                             f"format-{FORMAT_VERSION} snapshot")
        return payload

    def load_or_recover(self) -> Tuple[dict, bool, Optional[Path]]:
        """Load the checkpoint, falling back to the ``.prev`` rotation
        sibling when the primary is truncated or corrupt.

        Returns ``(payload, recovered, quarantined)``: ``recovered`` is
        False for a clean load of the primary; when True, ``payload``
        came from the previous snapshot and ``quarantined`` (if not
        ``None``) is the ``.corrupt`` path the bad primary was moved to
        — kept for post-mortem, removed by :meth:`delete`.  The
        checkpoint name is re-pointed (hardlinked) at the recovered
        snapshot so subsequent saves rotate normally.  Raises
        ``ValueError`` only when *no* loadable snapshot exists at all.
        """
        primary_error: Optional[ValueError] = None
        if self.path.exists():
            try:
                return self.load(), False, None
            except ValueError as exc:
                primary_error = exc

        quarantined: Optional[Path] = None
        if self.path.exists():
            quarantined = self._corrupt_path()
            try:
                os.replace(self.path, quarantined)
            except OSError:
                quarantined = None

        prev = self._prev_path()
        if prev.exists():
            try:
                payload = self._validate(prev)
            except (OSError, ValueError, json.JSONDecodeError,
                    UnicodeDecodeError):
                payload = None
            if payload is not None:
                try:
                    if not self.path.exists():
                        os.link(prev, self.path)
                except OSError:
                    pass  # resume still works from the loaded payload
                return payload, True, quarantined

        if primary_error is not None:
            raise primary_error
        raise ValueError(f"checkpoint {self.path} does not exist and no "
                         f"previous snapshot is available")


def load_checkpoint(path: Union[str, Path]) -> dict:
    """Convenience wrapper: read + validate one checkpoint file."""
    return CheckpointStore(path).load()
