"""Execution watchdog: per-execution wall-clock budgets.

A single hung execution must not stall a search that was meant to run
millions of them.  The watchdog gives each execution a wall-clock budget:

* the executor checks :meth:`ExecutionWatchdog.expired` between
  transitions (cooperative — sufficient for the generator VM, where every
  transition returns to the engine);
* the native runtime additionally bounds each *handshake* with
  :meth:`ExecutionWatchdog.remaining`: a controlled OS thread that never
  reaches its next scheduling point trips an
  :class:`~repro.runtime.errors.ExecutionHung`, which the executor
  converts into an :attr:`~repro.engine.results.Outcome.ABORTED` record
  instead of blocking forever.

Aborted executions are counted (``executions.aborted`` metric, one
``execution.aborted`` event each) and the search continues; the forced
teardown in :meth:`repro.runtime.native.NativeInstance.close` reports any
thread that survives as leaked rather than silently ignoring it.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional


class ExecutionWatchdog:
    """Wall-clock budget for one execution."""

    __slots__ = ("budget_seconds", "_deadline")

    def __init__(self, budget_seconds: float) -> None:
        if budget_seconds <= 0:
            raise ValueError("watchdog budget must be positive")
        self.budget_seconds = budget_seconds
        self._deadline: Optional[float] = None

    def start(self) -> "ExecutionWatchdog":
        """Arm (or re-arm) the budget for a fresh execution."""
        self._deadline = perf_counter() + self.budget_seconds
        return self

    def remaining(self) -> float:
        """Seconds left in the budget (0.0 once expired)."""
        if self._deadline is None:
            self.start()
        return max(0.0, self._deadline - perf_counter())

    def expired(self) -> bool:
        if self._deadline is None:
            self.start()
            return False
        return perf_counter() >= self._deadline

    def describe(self) -> str:
        return (f"execution exceeded its {self.budget_seconds:g}s "
                f"wall-clock budget")
