"""The resilience controller: one object the strategy loop talks to.

Bundles the three armor layers — checkpointing, crash quarantine, and the
graceful-stop flag — behind the narrow surface
:class:`~repro.engine.strategies.base.SearchStrategy` calls:
``stop_requested()`` at each iteration boundary, ``maybe_checkpoint()``
on a cadence, ``flush_checkpoint()`` when the search stops, and
``quarantine_crash()`` for each crashed record.  Everything is optional:
a checker without resilience options passes ``resilience=None`` and the
loop pays one ``is None`` branch per execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.quarantine import CrashQuarantine
from repro.resilience.signals import GracefulStop


@dataclass
class ResilienceOptions:
    """User-facing knobs; all off by default."""

    #: Write periodic checkpoints here (``--checkpoint``).
    checkpoint_path: Optional[Union[str, Path]] = None
    #: Executions between periodic snapshots (``--checkpoint-interval``).
    checkpoint_interval: int = 200
    #: Per-execution wall-clock budget in seconds (``--execution-budget``).
    execution_budget_seconds: Optional[float] = None
    #: Stop after this many quarantined crashes (``--max-crashes``);
    #: None disables crash capture entirely (a crash raises, as before).
    max_crashes: Optional[int] = None
    #: Where quarantined crash schedules are written
    #: (``--quarantine-dir``); None keeps them in the result only.
    quarantine_dir: Optional[Union[str, Path]] = None
    #: Install SIGINT/SIGTERM handlers for the duration of ``run()``.
    handle_signals: bool = True

    @property
    def enabled(self) -> bool:
        return (self.checkpoint_path is not None
                or self.execution_budget_seconds is not None
                or self.max_crashes is not None
                or self.quarantine_dir is not None)

    @property
    def capture_crashes(self) -> bool:
        return self.max_crashes is not None or self.quarantine_dir is not None


class ResilienceController:
    """Runtime side of :class:`ResilienceOptions` for one search."""

    def __init__(self, options: ResilienceOptions, *, program=None,
                 policy_name: str = "", config=None, observer=None) -> None:
        self.options = options
        self.program = program
        self.policy_name = policy_name
        self.config = config
        self.observer = observer
        self.store = (CheckpointStore(options.checkpoint_path)
                      if options.checkpoint_path is not None else None)
        self.quarantine = CrashQuarantine(options.quarantine_dir)
        self._stop: Optional[GracefulStop] = None
        self._since_checkpoint = 0
        self.checkpoints_written = 0
        self.checkpoint_write_failures = 0
        self.last_checkpoint_error: Optional[str] = None

    # ------------------------------------------------------------------
    # graceful stop
    # ------------------------------------------------------------------
    def attach_stop(self, stop: GracefulStop) -> None:
        self._stop = stop

    def request_stop(self, reason: str = "request") -> None:
        if self._stop is None:
            self._stop = GracefulStop(install=False)
        self._stop.request(reason)

    def stop_requested(self) -> Optional[str]:
        """The stop reason ("interrupted") once a signal arrived."""
        if self._stop is not None and self._stop.requested:
            return "interrupted"
        return None

    @property
    def stop_signal(self) -> Optional[str]:
        return self._stop.signal_name if self._stop is not None else None

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def _payload(self, strategy) -> dict:
        payload = {
            "program": getattr(self.program, "name", None),
            "policy": self.policy_name,
            "strategy": strategy.name,
            "state": strategy.state_dict(),
        }
        if self.config is not None:
            payload["config"] = {
                "depth_bound": self.config.depth_bound,
                "on_depth_exceeded": self.config.on_depth_exceeded,
                "preemption_bound": self.config.preemption_bound,
                "seed": self.config.seed,
            }
        return payload

    def maybe_checkpoint(self, strategy) -> Optional[Path]:
        """Periodic snapshot: every ``checkpoint_interval`` executions."""
        if self.store is None:
            return None
        self._since_checkpoint += 1
        if self._since_checkpoint < max(1, self.options.checkpoint_interval):
            return None
        return self.flush_checkpoint(strategy)

    def flush_checkpoint(self, strategy) -> Optional[Path]:
        """Unconditional snapshot (final flush on stop/interrupt).

        A disk that refuses the write (ENOSPC, EIO) degrades the
        *checkpoint*, never the search: the failure is counted, reported
        through the observer, and the search carries on with its last
        good snapshot (the store's ``.prev`` rotation guarantees one
        survives).  Only real ``OSError`` is absorbed — an injected
        simulated crash propagates, as a real crash would.
        """
        if self.store is None:
            return None
        self._since_checkpoint = 0
        payload = self._payload(strategy)
        try:
            path = self.store.save(payload)
        except OSError as exc:
            self.checkpoint_write_failures += 1
            self.last_checkpoint_error = f"{type(exc).__name__}: {exc}"
            if self.observer is not None:
                self.observer.checkpoint_write_failed(
                    str(self.store.path), self.last_checkpoint_error)
            return None
        self.checkpoints_written += 1
        if self.observer is not None:
            executions = (payload["state"].get("aggregator") or
                          {}).get("executions", 0)
            self.observer.checkpoint_saved(str(path), executions)
        return path

    # ------------------------------------------------------------------
    # crash quarantine
    # ------------------------------------------------------------------
    def quarantine_crash(self, program, record) -> Optional[Path]:
        """Persist one crashed record and emit telemetry."""
        path = self.quarantine.save(program, record,
                                    policy_name=self.policy_name,
                                    config=self.config)
        if self.observer is not None:
            self.observer.crash_quarantined(str(record.crash),
                                            str(path) if path else None)
        return path
