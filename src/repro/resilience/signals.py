"""Graceful shutdown on SIGINT / SIGTERM.

The first signal requests a *graceful* stop: the strategy loop notices at
its next iteration boundary, flushes a final checkpoint, and returns the
partial results with ``stop_reason="interrupted"``.  A second SIGINT
escalates to the ordinary ``KeyboardInterrupt`` so an operator can always
force their way out (the strategy loop still catches it and salvages the
aggregated results, just without running the current execution to its
scheduling point).

Handlers can only be installed from the main thread of the main
interpreter; anywhere else :class:`GracefulStop` degrades to a plain
manually-settable flag (``request()``), which is also what the tests use.
"""

from __future__ import annotations

import signal
import threading
from typing import Dict, Optional


class GracefulStop:
    """Context manager that converts termination signals into a flag."""

    def __init__(self, *, install: bool = True,
                 signals=(signal.SIGINT, signal.SIGTERM)) -> None:
        self._install = install
        self._signals = tuple(signals)
        self._previous: Dict[int, object] = {}
        self._event = threading.Event()
        self.signal_name: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def requested(self) -> bool:
        return self._event.is_set()

    def request(self, reason: str = "request") -> None:
        """Programmatic stop request (tests, embedding applications)."""
        self.signal_name = self.signal_name or reason
        self._event.set()

    # ------------------------------------------------------------------
    def _handle(self, signum, frame) -> None:
        if self._event.is_set() and signum == signal.SIGINT:
            # Second Ctrl-C: the user means it.
            raise KeyboardInterrupt
        try:
            self.signal_name = signal.Signals(signum).name
        except ValueError:  # pragma: no cover - exotic platform signal
            self.signal_name = str(signum)
        self._event.set()

    def __enter__(self) -> "GracefulStop":
        if (self._install
                and threading.current_thread() is threading.main_thread()):
            for signum in self._signals:
                try:
                    self._previous[signum] = signal.signal(signum,
                                                           self._handle)
                except (ValueError, OSError):  # pragma: no cover
                    continue  # not installable here; stay cooperative
        return self

    def __exit__(self, *exc_info) -> None:
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):  # pragma: no cover
                pass
        self._previous.clear()
