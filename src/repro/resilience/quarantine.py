"""Crash quarantine: a crashing execution becomes a finding, not a fatality.

When crash capture is enabled (``ExecutorConfig.capture_crashes``), a
:class:`~repro.runtime.errors.TaskCrash` — or any unexpected exception
raised while executing one schedule — ends only *that* execution: the
record comes back with :attr:`~repro.engine.results.Outcome.CRASHED`, its
schedule is saved as an ordinary repro file for offline replay, and the
search moves on to the next schedule.  A ``--max-crashes`` budget keeps a
systematically broken program from burning the whole search on crashes.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.engine.persistence import save_schedule


class CrashQuarantine:
    """Writes crashing executions' schedules to a quarantine directory.

    ``prefix`` namespaces the filenames (``<prefix>-NNNN.json``); parallel
    workers use per-worker prefixes so concurrent processes sharing one
    quarantine directory never race for the same sequence slot.
    """

    def __init__(self, directory: Optional[Union[str, Path]] = None,
                 prefix: str = "crash") -> None:
        self.directory = Path(directory) if directory is not None else None
        self.prefix = prefix
        self._sequence = 0

    def save(self, program, record, *, policy_name: str = "",
             config=None) -> Optional[Path]:
        """Persist one crashed record; returns the file path (or None
        when no quarantine directory is configured)."""
        if self.directory is None:
            return None
        self.directory.mkdir(parents=True, exist_ok=True)
        while True:
            path = self.directory / f"{self.prefix}-{self._sequence:04d}.json"
            self._sequence += 1
            if not path.exists():
                break
        return save_schedule(path, program, record, policy_name=policy_name,
                             config=config)
