"""Resilient exploration: checkpoint/resume, watchdogs, crash quarantine.

Long searches over real systems code must survive the real world:

* **checkpoint/resume** — :class:`CheckpointStore` writes atomic,
  versioned snapshots of the search frontier + aggregated results;
  ``Checker.run(resume_from=...)`` (CLI ``--checkpoint/--resume``)
  continues an interrupted search to the same outcome;
* **watchdogs** — :class:`ExecutionWatchdog` bounds each execution's
  wall-clock time; hung native threads are cut loose and reported as
  leaked instead of stalling the run;
* **crash quarantine** — :class:`CrashQuarantine` turns a crashing
  execution into a replayable finding and lets the search continue,
  bounded by ``--max-crashes``;
* **graceful stop** — :class:`GracefulStop` converts SIGINT/SIGTERM into
  a cooperative stop that flushes a final checkpoint and returns partial
  results with ``stop_reason="interrupted"``.

See ``docs/resilience.md`` for formats and semantics.
"""

from repro.resilience.checkpoint import (
    FORMAT_VERSION,
    CheckpointStore,
    exploration_from_state,
    exploration_to_state,
    freeze_rng,
    load_checkpoint,
    record_from_state,
    record_to_state,
    thaw_rng,
)
from repro.resilience.controller import ResilienceController, ResilienceOptions
from repro.resilience.quarantine import CrashQuarantine
from repro.resilience.signals import GracefulStop
from repro.resilience.watchdog import ExecutionWatchdog

__all__ = [
    "FORMAT_VERSION",
    "CheckpointStore",
    "CrashQuarantine",
    "ExecutionWatchdog",
    "GracefulStop",
    "ResilienceController",
    "ResilienceOptions",
    "exploration_from_state",
    "exploration_to_state",
    "freeze_rng",
    "load_checkpoint",
    "record_from_state",
    "record_to_state",
    "thaw_rng",
]
