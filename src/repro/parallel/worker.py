"""The worker side of parallel exploration.

A worker owns one shard at a time: it rebuilds the strategy confined to
the shard (prefix subtree or walk-index range), explores it with the full
resilience armor (watchdog budgets, crash capture, quarantine), and
streams compact per-execution telemetry plus one final serialized
:class:`~repro.engine.results.ExplorationResult` back to the coordinator.

Everything here is usable in two modes:

* :func:`run_shard` — in-process, used by the coordinator's inline
  fallback (platforms without ``fork``) and by unit tests;
* :func:`worker_main` — the target of a forked worker process, pulling
  shard descriptions off the task queue until it sees the ``None``
  sentinel or the coordinator's stop event.

Workers ignore SIGINT/SIGTERM: operator signals are the *coordinator's*
to handle (it converts them into the shared stop event so every worker
winds down gracefully and a final merged checkpoint can be flushed).
"""

from __future__ import annotations

import dataclasses
import queue as queue_module
import signal
import threading
import traceback
from typing import Callable, List, Optional, Tuple

from repro.chaos.faults import fault_at
from repro.engine.coverage import CoverageTracker
from repro.engine.strategies import (
    BfsStrategy,
    DfsStrategy,
    DporStrategy,
    ExplorationLimits,
    RandomWalkStrategy,
    SleepSetStrategy,
)
from repro.parallel.shard import Shard
from repro.resilience import ResilienceController, ResilienceOptions
from repro.resilience.checkpoint import exploration_to_state
from repro.resilience.quarantine import CrashQuarantine


def build_shard_strategy(
    program,
    policy_factory,
    config,
    limits: ExplorationLimits,
    strategy_name: str,
    shard: Shard,
    *,
    seed: int = 0,
    bound: Optional[int] = None,
    coverage: Optional[CoverageTracker] = None,
    listener: Optional[Callable] = None,
    resilience=None,
    observer=None,
):
    """The strategy object exploring exactly one shard's slice of work.

    ``bound`` is the preemption bound of the current ICB sweep (None for
    the other strategies); the shard itself carries the prefix or range.
    ``observer`` is a worker-local :class:`repro.obs.Observer` whose
    phase timers and spans travel back to the coordinator with the shard
    result (None keeps the worker's hot path telemetry-free).
    """
    if strategy_name in ("dfs", "icb"):
        cfg = config
        label = "dfs"
        if strategy_name == "icb":
            cfg = dataclasses.replace(config, preemption_bound=bound)
            label = f"cb={bound}"
        return DfsStrategy(
            program, policy_factory, cfg, limits,
            prefix=list(shard.prefix), strategy_name=label,
            coverage=coverage, listener=listener, resilience=resilience,
            observer=observer,
        )
    if strategy_name == "bfs":
        return BfsStrategy(
            program, policy_factory, config, limits,
            prefix=list(shard.prefix),
            coverage=coverage, listener=listener, resilience=resilience,
            observer=observer,
        )
    if strategy_name == "por":
        # config rides along so each shard builds its own prefix-snapshot
        # cache (caches are never shared across processes).
        return SleepSetStrategy(
            program, policy_factory, depth_bound=config.depth_bound,
            limits=limits, prefix=list(shard.prefix),
            coverage=coverage, listener=listener, resilience=resilience,
            config=config, observer=observer,
        )
    if strategy_name == "dpor":
        # DPOR's plan is always the single root shard (dynamic backtrack
        # points cannot be prefix-partitioned), so the prefix is empty.
        if shard.prefix:
            raise ValueError("dpor shards must have an empty prefix")
        return DporStrategy(
            program, policy_factory, depth_bound=config.depth_bound,
            limits=limits,
            coverage=coverage, listener=listener, resilience=resilience,
            config=config, observer=observer,
        )
    if strategy_name == "random":
        return RandomWalkStrategy(
            program, policy_factory, config, limits,
            executions=shard.count, seed=seed, start=shard.start,
            coverage=coverage, listener=listener, resilience=resilience,
            observer=observer,
        )
    raise ValueError(f"strategy {strategy_name!r} cannot be sharded")


def run_shard(
    program,
    policy_factory,
    config,
    limits: ExplorationLimits,
    strategy_name: str,
    shard: Shard,
    *,
    seed: int = 0,
    bound: Optional[int] = None,
    collect_coverage: bool = False,
    on_execution: Optional[Callable] = None,
    stop_check: Optional[Callable[[], Optional[str]]] = None,
    controller: Optional[ResilienceController] = None,
    telemetry: bool = False,
) -> Tuple[dict, List[object], Optional[dict]]:
    """Explore one shard; returns ``(exploration_state, signatures,
    extras)``.

    ``on_execution(record)`` streams per-execution telemetry;
    ``stop_check()`` returning a reason requests a graceful stop at the
    next iteration boundary (the coordinator's stop event, or the inline
    mode's global limit bookkeeping).

    ``telemetry`` enables a shard-local :class:`repro.obs.Observer`:
    ``extras`` then carries the shard's phase-timer totals and wall-clock
    spans (serialized) for the coordinator to merge; otherwise ``extras``
    is None and the exploration hot path stays telemetry-free.
    """
    coverage = CoverageTracker() if collect_coverage else None
    if controller is None and stop_check is not None:
        controller = ResilienceController(
            ResilienceOptions(handle_signals=False), program=program)

    def listener(record):
        if on_execution is not None:
            on_execution(record)
        if stop_check is not None:
            reason = stop_check()
            if reason is not None:
                controller.request_stop(reason)

    observer = None
    if telemetry:
        from repro.obs import Observer

        observer = Observer()

    strategy = build_shard_strategy(
        program, policy_factory, config, limits, strategy_name, shard,
        seed=seed, bound=bound, coverage=coverage, listener=listener,
        resilience=controller, observer=observer,
    )
    extras: Optional[dict] = None
    if observer is not None:
        with observer.spans.measure(
                f"shard {shard.index} executing", "executing",
                shard=shard.index, detail=shard.describe(),
                strategy=strategy_name):
            result = strategy.explore()
        extras = {
            "phase_timers": observer.timers.to_dict(),
            "spans": observer.spans.to_state(),
        }
    else:
        result = strategy.explore()
    signatures = sorted(coverage.signatures(), key=repr) if coverage else []
    return exploration_to_state(result), signatures, extras


def _start_heartbeat(worker_id: int, result_queue,
                     interval: float) -> threading.Event:
    """Liveness beacon: a daemon thread that puts ``("heartbeat", id)``
    on the result queue every ``interval`` seconds.

    The coordinator treats prolonged silence as a *wedged* worker
    (SIGSTOP, livelocked user code) — ``proc.is_alive()`` cannot tell a
    stopped process from a busy one, the heartbeat can.  The chaos
    ``clock-stall`` fault kills just this thread, simulating a worker
    whose work continues but whose liveness signal died.
    """
    cancel = threading.Event()

    def beat() -> None:
        while not cancel.wait(interval):
            rule = fault_at("worker.heartbeat", worker=worker_id)
            if rule is not None and rule.kind == "clock-stall":
                return
            try:
                result_queue.put(("heartbeat", worker_id))
            except Exception:  # queue torn down: the worker is exiting
                return

    thread = threading.Thread(target=beat, daemon=True,
                              name=f"repro-heartbeat-{worker_id}")
    thread.start()
    return cancel


def worker_main(
    worker_id: int,
    program,
    policy_factory,
    config,
    limits: ExplorationLimits,
    strategy_name: str,
    seed: int,
    resilience_options: Optional[ResilienceOptions],
    collect_coverage: bool,
    telemetry: bool,
    task_queue,
    result_queue,
    stop_event,
    heartbeat_interval: float = 0.5,
) -> None:
    """Entry point of one forked worker process."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    heartbeat_cancel = None
    if heartbeat_interval and heartbeat_interval > 0:
        heartbeat_cancel = _start_heartbeat(worker_id, result_queue,
                                            heartbeat_interval)
    options = resilience_options or ResilienceOptions()
    options = dataclasses.replace(options, checkpoint_path=None,
                                  handle_signals=False)
    controller = ResilienceController(
        options, program=program,
        policy_name=getattr(policy_factory(), "name", ""), config=config)
    # Per-worker quarantine filenames so two workers crashing at once
    # never race for the same crash-NNNN.json slot.
    controller.quarantine = CrashQuarantine(
        options.quarantine_dir, prefix=f"crash-w{worker_id}")
    try:
        while True:
            if stop_event.is_set():
                break
            try:
                item = task_queue.get(timeout=0.2)
            except queue_module.Empty:
                continue
            if item is None:
                break
            phase, bound, shard_state = item
            shard = Shard.from_state(shard_state)
            result_queue.put(("start", worker_id, phase, shard.index))

            def on_execution(record, phase=phase, index=shard.index):
                # Chaos fault point: a worker-kill rule SIGKILLs, a
                # worker-stall rule SIGSTOPs this process right here,
                # mid-shard — the coordinator must recover either way.
                fault_at("worker.execution", worker=worker_id,
                         shard=index)
                result_queue.put((
                    "execution", worker_id, phase, index,
                    record.outcome.value, record.steps, record.preemptions,
                    record.hit_depth_bound,
                ))

            try:
                state, signatures, extras = run_shard(
                    program, policy_factory, config, limits, strategy_name,
                    shard, seed=seed, bound=bound,
                    collect_coverage=collect_coverage,
                    on_execution=on_execution,
                    stop_check=(lambda: "coordinator"
                                if stop_event.is_set() else None),
                    controller=controller,
                    telemetry=telemetry,
                )
                result_queue.put(("done", worker_id, phase, shard.index,
                                  state, signatures, extras))
            except Exception:
                result_queue.put(("error", worker_id, phase, shard.index,
                                  traceback.format_exc()))
    finally:
        if heartbeat_cancel is not None:
            heartbeat_cancel.set()
        result_queue.put(("exit", worker_id))
