"""Strategy-aware shard planning: carving the schedule space into
independent, worker-count-independent units of work.

Two partitioning schemes cover the five strategies:

* **Prefix shards** (dfs, bfs, por, and each ICB sweep): the choice tree
  is expanded breadth-first from the root with short *probe* executions
  until there are at least :data:`DEFAULT_SHARD_TARGET` frontier nodes.
  A probe of prefix ``p`` replays ``p`` and extends it with first
  alternatives; the decision recorded at depth ``len(p)`` (if any) gives
  the branching factor, so the children ``p + [0..k-1]`` are a disjoint
  and exhaustive partition of the subtree below ``p``.  Shards are the
  frontier nodes in lexicographic order — for depth-first strategies
  that order concatenates to the *exact* serial visit order.
* **Range shards** (random): the walk-index range ``[0, total)`` is cut
  into contiguous slices.  Walk ``i`` draws from an RNG derived from
  ``(seed, i)`` (:func:`repro.engine.strategies.random_walk.walk_rng`),
  so a slice replays the identical executions a serial run would.

The plan depends only on the program and the shard target — never on the
worker count — which is what makes merged totals of counted sweeps
deterministic and worker-count independent.

Breadth-first accounting: stateless BFS counts one execution per tree
*node*, and the planner's interior probes are byte-for-byte the records
serial BFS produces for the nodes above the cut.  Those probe records are
therefore returned as the plan's *preamble* and folded into the merge for
BFS; depth-first strategies discard them (each probe merely duplicates
the first leaf of a shard that will re-run it).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.engine.results import ExecutionResult

#: Default number of shards a plan aims for.  A fixed constant (not a
#: function of the worker count!) so totals cannot depend on how many
#: workers happened to pull from the queue.
DEFAULT_SHARD_TARGET = 16

#: Probe budget multiplier: planning stops after this many probes per
#: target shard even if the tree keeps offering unary chains.
_PROBE_BUDGET_FACTOR = 4


@dataclass(frozen=True)
class Shard:
    """One independent unit of the partitioned schedule space."""

    index: int
    kind: str  # "prefix" | "range"
    #: Pinned decision indices (prefix shards).
    prefix: Tuple[int, ...] = ()
    #: First walk index and walk count (range shards).
    start: int = 0
    count: int = 0

    def describe(self) -> str:
        if self.kind == "range":
            return f"walks [{self.start}, {self.start + self.count})"
        return f"prefix {list(self.prefix)}"

    def to_state(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "prefix": list(self.prefix),
            "start": self.start,
            "count": self.count,
        }

    @classmethod
    def from_state(cls, state: dict) -> "Shard":
        return cls(
            index=state["index"],
            kind=state["kind"],
            prefix=tuple(state.get("prefix", ())),
            start=state.get("start", 0),
            count=state.get("count", 0),
        )


@dataclass
class ShardPlan:
    """The shards of one search phase plus the BFS preamble records."""

    kind: str  # "prefix" | "range"
    shards: List[Shard] = field(default_factory=list)
    #: Probe records of the interior nodes above the cut, in level order
    #: (folded into the merge for BFS, discarded otherwise).
    preamble: List[ExecutionResult] = field(default_factory=list)
    #: Planner probe executions spent building this plan (range plans
    #: need none).  Planning statistic reported on the coordinator's
    #: "planned" span (docs/profiling.md).
    probes: int = 0

    def to_state(self) -> dict:
        from repro.resilience.checkpoint import record_to_state

        return {
            "kind": self.kind,
            "shards": [shard.to_state() for shard in self.shards],
            "preamble": [record_to_state(r) for r in self.preamble],
            "probes": self.probes,
        }

    @classmethod
    def from_state(cls, state: dict) -> "ShardPlan":
        from repro.resilience.checkpoint import record_from_state

        return cls(
            kind=state.get("kind", "prefix"),
            shards=[Shard.from_state(s) for s in state.get("shards", [])],
            preamble=[record_from_state(r)
                      for r in state.get("preamble", [])],
            probes=state.get("probes", 0),
        )


def plan_prefix_shards(
    probe: Callable[[List[int]], ExecutionResult],
    *,
    target: int = DEFAULT_SHARD_TARGET,
    max_probes: Optional[int] = None,
) -> ShardPlan:
    """Partition the choice tree into ~``target`` disjoint subtrees.

    ``probe`` runs one guided execution for a prefix and returns its
    record; it must be the same executor the sharded strategy uses
    (plain guided replay for dfs/bfs/icb, the sleep-set walker for por)
    so the branching factors match the strategy's own view of the tree.
    """
    if target < 1:
        raise ValueError("shard target must be positive")
    if max_probes is None:
        max_probes = _PROBE_BUDGET_FACTOR * target
    frontier: deque = deque([()])
    leaves: List[Tuple[int, ...]] = []
    preamble: List[ExecutionResult] = []
    probes = 0
    while (frontier and probes < max_probes
           and len(frontier) + len(leaves) < target):
        prefix = frontier.popleft()
        record = probe(list(prefix))
        probes += 1
        if len(record.decisions) > len(prefix):
            preamble.append(record)
            options = record.decisions[len(prefix)].options
            for alternative in range(options):
                frontier.append(prefix + (alternative,))
        else:
            # The probe is a complete execution: the node is a leaf of
            # the tree and becomes a single-execution shard.
            leaves.append(prefix)
    prefixes = sorted(leaves + list(frontier))
    shards = [Shard(index=i, kind="prefix", prefix=prefix)
              for i, prefix in enumerate(prefixes)]
    return ShardPlan(kind="prefix", shards=shards, preamble=preamble,
                     probes=probes)


def plan_range_shards(total: int, *,
                      target: int = DEFAULT_SHARD_TARGET) -> ShardPlan:
    """Cut the walk-index range ``[0, total)`` into contiguous slices."""
    if target < 1:
        raise ValueError("shard target must be positive")
    shards: List[Shard] = []
    n = min(target, total) if total > 0 else 0
    base, extra = divmod(total, n) if n else (0, 0)
    start = 0
    for i in range(n):
        count = base + (1 if i < extra else 0)
        shards.append(Shard(index=i, kind="range", start=start, count=count))
        start += count
    return ShardPlan(kind="range", shards=shards)
