"""Parallel sharded exploration (docs/parallel.md).

The schedule space of one search is carved into worker-count-independent
*shards* — subtrees pinned by a decision prefix (dfs, bfs, por, each ICB
sweep) or contiguous walk-index ranges (random) — and explored by a pool
of forked worker processes.  The coordinator merges the per-shard results
into the same :class:`~repro.engine.results.ExplorationResult` a serial
search produces: identical totals and verdicts for counted sweeps, first
violation wins when stopping early.

Entry points: ``Checker(program, workers=4).run()`` or the CLI's
``--workers`` flag; the pieces below are the public surface for tests
and embedders.
"""

from repro.parallel.coordinator import (
    DEFAULT_MAX_SHARD_ATTEMPTS,
    PARALLEL_STRATEGIES,
    ParallelCoordinator,
)
from repro.parallel.shard import (
    DEFAULT_SHARD_TARGET,
    Shard,
    ShardPlan,
    plan_prefix_shards,
    plan_range_shards,
)
from repro.parallel.worker import build_shard_strategy, run_shard, worker_main

__all__ = [
    "DEFAULT_MAX_SHARD_ATTEMPTS",
    "DEFAULT_SHARD_TARGET",
    "PARALLEL_STRATEGIES",
    "ParallelCoordinator",
    "Shard",
    "ShardPlan",
    "build_shard_strategy",
    "plan_prefix_shards",
    "plan_range_shards",
    "run_shard",
    "worker_main",
]
