"""The coordinator: plans shards, drives the worker pool, merges results.

One :class:`ParallelCoordinator` runs one parallel search.  The control
flow is strategy-shaped:

* dfs / bfs / por / random — a single *phase*: plan the shards, feed
  them to the pool, merge in shard order;
* icb — one phase per preemption bound ``0..max_bound`` (the sweeps are
  inherently sequential: bound *b+1* only runs when bound *b* found no
  violation), each phase prefix-sharded and merged like a DFS phase,
  the per-bound results folded with the existing
  :func:`~repro.engine.strategies.merge_sweeps`.

Determinism: the shard plan never depends on the worker count, shards
are merged in shard-index order, and the BFS preamble (the planner's
interior probe records) is folded first — so the merged totals of a
counted sweep (no early-stop limits) are byte-identical no matter how
many workers pulled from the queue.  With ``stop_on_first_violation``
the *verdict* is deterministic but the totals are not (workers race to
the stop event), exactly as a serial early stop depends on where the
violation sits in visit order.

Failure semantics (docs/parallel.md): a worker that dies mid-shard is
replaced (with exponential backoff under repeated deaths) and its shard
requeued; a worker that stops *heartbeating* — SIGSTOPped, livelocked —
is detected by the wedge timeout, SIGKILLed, and treated exactly like a
crash; a shard that kills its worker ``max_shard_attempts`` times is
quarantined (surfaced as a warning and an incomplete merged result).  First violation wins: the winning
worker's shard stops via its own limits, everyone else drains on the
shared stop event.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import queue as queue_module
import time
from types import SimpleNamespace
from typing import Dict, List, Optional, Set, Tuple

from repro.engine.coverage import CoverageTracker
from repro.engine.replay import replay_schedule
from repro.engine.results import ExecutionResult, ExplorationResult, Outcome
from repro.engine.strategies import ExplorationLimits, merge_sweeps
from repro.engine.strategies.por import _run_once_with_sleep
from repro.engine.executor import GuidedChooser, run_execution
from repro.parallel.shard import (
    DEFAULT_SHARD_TARGET,
    Shard,
    ShardPlan,
    plan_prefix_shards,
    plan_range_shards,
)
from repro.parallel.worker import run_shard, worker_main
from repro.resilience.checkpoint import (
    exploration_from_state,
    exploration_to_state,
)

#: Attempts before a worker-killing shard is quarantined.
DEFAULT_MAX_SHARD_ATTEMPTS = 2

#: Seconds the coordinator waits for in-flight shards after a stop.
_DRAIN_SECONDS = 30.0

#: Default seconds between worker heartbeats / of heartbeat silence
#: before a worker counts as wedged.
DEFAULT_HEARTBEAT_INTERVAL = 0.5
DEFAULT_WEDGE_TIMEOUT = 30.0

#: Exponential-backoff schedule for worker respawns: first replacement
#: is immediate (a lone crash shouldn't stall the pool), repeated deaths
#: back off up to the cap so a crash-looping workload can't fork-bomb.
_RESPAWN_BACKOFF_START = 0.1
_RESPAWN_BACKOFF_CAP = 5.0

#: Strategies the coordinator knows how to shard.
PARALLEL_STRATEGIES = ("dfs", "icb", "bfs", "random", "por", "dpor")


def _fork_context():
    """The fork multiprocessing context, or None when unavailable.

    Programs hold closures (not picklable), so workers must inherit them
    by forking; platforms without fork fall back to inline execution of
    the same shard plan (identical totals, no parallelism).
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


class _CoordinatorState:
    """Checkpoint facade: what ``ResilienceController`` snapshots."""

    name = "parallel"

    def __init__(self, coordinator: "ParallelCoordinator") -> None:
        self._coordinator = coordinator

    def state_dict(self) -> dict:
        return self._coordinator._state_dict()


class ParallelCoordinator:
    """Shards one search across a pool of forked worker processes."""

    def __init__(
        self,
        program,
        policy_factory,
        config,
        limits: ExplorationLimits,
        *,
        strategy: str = "dfs",
        workers: int = 2,
        shard_target: Optional[int] = None,
        seed: int = 0,
        random_executions: int = 200,
        max_bound: int = 2,
        coverage: Optional[CoverageTracker] = None,
        observer=None,
        resilience=None,
        resilience_options=None,
        max_shard_attempts: int = DEFAULT_MAX_SHARD_ATTEMPTS,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        wedge_timeout: Optional[float] = DEFAULT_WEDGE_TIMEOUT,
    ) -> None:
        if strategy not in PARALLEL_STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r} "
                f"(expected one of {', '.join(PARALLEL_STRATEGIES)})"
            )
        if workers < 1:
            raise ValueError("workers must be positive")
        self.program = program
        self.policy_factory = policy_factory
        self.config = config
        self.limits = limits
        self.strategy = strategy
        self.workers = workers
        self.shard_target = shard_target or DEFAULT_SHARD_TARGET
        self.seed = seed
        self.random_executions = random_executions
        self.max_bound = max_bound
        self.coverage = coverage
        self.observer = observer
        self.resilience = resilience
        self.resilience_options = resilience_options
        self.max_shard_attempts = max_shard_attempts
        #: Workers put ``("heartbeat", id)`` on the result queue every
        #: ``heartbeat_interval`` seconds; a worker silent for longer
        #: than ``wedge_timeout`` is *wedged* (SIGSTOP, livelock — alive
        #: to ``is_alive()`` but making no progress), SIGKILLed, and its
        #: shard requeued like a crashed worker's.  ``wedge_timeout=None``
        #: disables the detector.
        self.heartbeat_interval = heartbeat_interval
        self.wedge_timeout = wedge_timeout
        self.warnings: List[str] = []

        self.policy_name = getattr(policy_factory(), "name", "")
        #: Per-shard limits: global caps are enforced here, not in the
        #: workers (a per-shard max_executions would multiply the cap).
        self.shard_limits = dataclasses.replace(
            limits, max_executions=None, max_seconds=None)

        # Run state -------------------------------------------------------
        self._stop_reason: Optional[str] = None
        self._streamed_executions = 0
        self._crashes = 0
        self._signatures: Set[object] = set()
        self._start_time = 0.0

        # Checkpoint state ------------------------------------------------
        self._completed_phases: List[dict] = []
        self._phase_index = 0
        self._plan_state: Optional[dict] = None
        self._shard_states: Dict[int, dict] = {}
        # Shards cut short by a coordinated stop: folded into the merge
        # of the stopped run, but never checkpointed — a resume must
        # re-run them from scratch.
        self._partial_states: Dict[int, dict] = {}
        self._facade = _CoordinatorState(self)

        # Pool state ------------------------------------------------------
        self._ctx = _fork_context()
        self._procs: List[SimpleNamespace] = []
        self._result_queue = None
        self._stop_event = None
        self._next_worker_id = 0
        #: Monotonic deadlines of replacement workers not yet forked
        #: (exponential backoff after repeated deaths).
        self._pending_respawns: List[float] = []
        self._respawn_backoff = 0.0

    # ------------------------------------------------------------------
    # labels and phases
    # ------------------------------------------------------------------
    def _phase_bounds(self) -> List[Optional[int]]:
        if self.strategy == "icb":
            return list(range(self.max_bound + 1))
        return [None]

    def _phase_label(self, bound: Optional[int]) -> str:
        if self.strategy == "icb":
            return f"cb={bound}"
        if self.strategy == "por":
            return "dfs+sleepsets"
        if self.strategy == "dpor":
            return "source-dpor"
        if self.strategy == "random":
            return f"random(n={self.random_executions})"
        return self.strategy

    def strategy_label(self) -> str:
        if self.strategy == "icb":
            return f"icb(<= {self.max_bound})"
        return self._phase_label(None)

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def _probe(self, prefix: List[int], bound: Optional[int]):
        """One planner probe: the execution the strategy itself would run
        for this prefix (so branching factors match exactly)."""
        if self.strategy == "por":
            return _run_once_with_sleep(
                self.program, self.policy_factory(), prefix,
                depth_bound=self.config.depth_bound, coverage=None,
            )
        config = self.config
        if bound is not None:
            config = dataclasses.replace(config, preemption_bound=bound)
        return run_execution(
            self.program, self.policy_factory(), GuidedChooser(prefix),
            config,
        )

    def _plan_phase(self, bound: Optional[int]) -> ShardPlan:
        if self.observer is None:
            return self._plan_shards(bound)
        with self.observer.spans.measure(
                f"plan {self._phase_label(bound)}", "planned") as span:
            plan = self._plan_shards(bound)
        span.args["shards"] = len(plan.shards)
        span.args["probes"] = plan.probes
        return plan

    def _plan_shards(self, bound: Optional[int]) -> ShardPlan:
        if self.strategy == "random":
            return plan_range_shards(self.random_executions,
                                     target=self.shard_target)
        if self.strategy == "dpor":
            # Source-DPOR discovers its backtrack points *dynamically* —
            # the subtree below a prefix depends on races seen elsewhere,
            # so a prefix partition is not exhaustive for it.  The whole
            # search runs as one shard: no speedup, but the parallel API
            # (checkpointing, worker supervision, identical totals at any
            # worker count) still applies.
            return ShardPlan(kind="prefix",
                             shards=[Shard(index=0, kind="prefix",
                                           prefix=())])
        return plan_prefix_shards(
            lambda prefix: self._probe(prefix, bound),
            target=self.shard_target,
        )

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def _state_dict(self) -> dict:
        state = {
            "strategy": "parallel",
            "inner": self.strategy,
            "phase": self._phase_index,
            "completed_phases": list(self._completed_phases),
            "completed_shards": {str(i): s
                                 for i, s in self._shard_states.items()},
            "shard_target": self.shard_target,
            "aggregator": {"executions": self._merged_executions()},
        }
        if self._plan_state is not None:
            state["plan"] = self._plan_state
        return state

    def _merged_executions(self) -> int:
        total = sum(s.get("executions", 0)
                    for s in self._completed_phases)
        total += sum(s.get("executions", 0)
                     for s in self._shard_states.values())
        return total

    def load_state_dict(self, state: dict) -> None:
        recorded = state.get("strategy")
        if recorded != "parallel":
            raise ValueError(
                f"checkpoint was written by strategy {recorded!r}, "
                f"cannot resume it with a parallel search"
            )
        inner = state.get("inner")
        if inner != self.strategy:
            raise ValueError(
                f"parallel checkpoint was written for strategy {inner!r}, "
                f"cannot resume it with {self.strategy!r}"
            )
        self._phase_index = state.get("phase", 0)
        self._completed_phases = list(state.get("completed_phases", []))
        self._shard_states = {
            int(i): s
            for i, s in (state.get("completed_shards") or {}).items()
        }
        self.shard_target = state.get("shard_target", self.shard_target)
        self._plan_state = state.get("plan")

    def _checkpoint(self, *, force: bool = False) -> None:
        if self.resilience is None:
            return
        if force:
            self.resilience.flush_checkpoint(self._facade)
        else:
            self.resilience.maybe_checkpoint(self._facade)

    # ------------------------------------------------------------------
    # the pool
    # ------------------------------------------------------------------
    @property
    def inline(self) -> bool:
        return self._ctx is None

    def _pool_start(self) -> None:
        if self.inline:
            return
        self._result_queue = self._ctx.Queue()
        self._stop_event = self._ctx.Event()
        for _ in range(self.workers):
            self._spawn_worker()

    def _spawn_worker(self) -> None:
        """Fork a worker with a private task queue.

        Each worker gets its own queue so the coordinator — not a shared
        queue — is the source of truth for which shard a worker holds
        (``entry.shard``).  A crashed worker therefore gives its shard
        back even when it died before its queue feeder thread flushed a
        single message.
        """
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        task_queue = self._ctx.Queue()
        proc = self._ctx.Process(
            target=worker_main,
            args=(worker_id, self.program, self.policy_factory, self.config,
                  self.shard_limits, self.strategy, self.seed,
                  self.resilience_options, self.coverage is not None,
                  self.observer is not None,
                  task_queue, self._result_queue, self._stop_event,
                  self.heartbeat_interval),
            daemon=True,
        )
        proc.start()
        self._procs.append(SimpleNamespace(id=worker_id, proc=proc,
                                           queue=task_queue, shard=None,
                                           exited=False,
                                           last_seen=time.monotonic()))

    def _entry(self, worker_id: int):
        for entry in self._procs:
            if entry.id == worker_id:
                return entry
        return None

    def _retire_entry(self, entry) -> None:
        """Drop a dead/wedged worker from the pool and release its task
        queue (close + join the feeder thread — entries removed outside
        ``_pool_stop`` would otherwise leak one thread each)."""
        entry.exited = True
        if entry in self._procs:
            self._procs.remove(entry)
        try:
            entry.queue.close()
            entry.queue.join_thread()
        except Exception:  # pragma: no cover - queue already torn down
            pass

    def _schedule_respawn(self) -> None:
        """Queue a replacement worker with exponential backoff.

        The first death respawns immediately; each further death before
        the backoff resets doubles the delay up to the cap, so a workload
        that kills every worker it touches cannot fork-bomb the host.
        The backoff resets once any worker completes a shard.
        """
        self._pending_respawns.append(
            time.monotonic() + self._respawn_backoff)
        self._respawn_backoff = min(
            _RESPAWN_BACKOFF_CAP,
            self._respawn_backoff * 2 or _RESPAWN_BACKOFF_START)

    def _maybe_respawn(self) -> None:
        now = time.monotonic()
        due = [d for d in self._pending_respawns if d <= now]
        if not due:
            return
        self._pending_respawns = [d for d in self._pending_respawns
                                  if d > now]
        for _ in due:
            self._spawn_worker()

    def _pool_stop(self) -> None:
        if self.inline or self._result_queue is None:
            return
        for entry in self._procs:
            self._drain_queue(entry.queue)
            entry.queue.put(None)
        deadline = time.monotonic() + 10.0
        while (any(p.proc.is_alive() for p in self._procs)
               and time.monotonic() < deadline):
            self._consume_messages(timeout=0.1)
        for p in self._procs:
            if p.proc.is_alive():  # pragma: no cover - stuck worker
                p.proc.terminate()
                p.proc.join(timeout=1.0)
            if p.proc.is_alive():  # pragma: no cover - wedged worker
                # SIGTERM never reaches a SIGSTOPped process; SIGKILL
                # (Process.kill) takes down even a stopped one.
                p.proc.kill()
                p.proc.join(timeout=1.0)
        # Shut the queues down for real: close() lets each feeder thread
        # flush and exit, join_thread() waits for it — otherwise every
        # run leaks one QueueFeederThread per worker.
        for p in self._procs:
            p.queue.close()
            p.queue.join_thread()
        self._result_queue.close()
        self._result_queue.join_thread()

    @staticmethod
    def _drain_queue(q) -> None:
        while True:
            try:
                q.get_nowait()
            except queue_module.Empty:
                return

    # ------------------------------------------------------------------
    # global stop conditions
    # ------------------------------------------------------------------
    def _check_global_limits(self) -> None:
        if self._stop_reason is not None:
            return
        if self.resilience is not None:
            reason = self.resilience.stop_requested()
            if reason is not None:
                self._stop_reason = reason
                return
        limits = self.limits
        if (limits.max_executions is not None
                and self._streamed_executions >= limits.max_executions):
            self._stop_reason = "max-executions"
        elif (limits.max_seconds is not None
              and time.perf_counter() - self._start_time
              >= limits.max_seconds):
            self._stop_reason = "max-seconds"
        elif (limits.max_crashes is not None
              and self._crashes >= limits.max_crashes):
            self._stop_reason = "max-crashes"

    def _check_shard_result(self, result: ExplorationResult) -> None:
        """Early-stop rules a serial search applies per execution, applied
        here at shard granularity."""
        if self._stop_reason is not None:
            return
        if (self.limits.stop_on_first_violation
                and result.found_violation):
            self._stop_reason = "violation"
        elif (self.limits.stop_on_first_divergence
              and result.divergences):
            self._stop_reason = "divergence"

    # ------------------------------------------------------------------
    # streaming telemetry
    # ------------------------------------------------------------------
    def _on_streamed_execution(self, outcome_value: str, steps: int,
                               preemptions: int,
                               hit_depth_bound: bool) -> None:
        self._streamed_executions += 1
        if self.observer is not None:
            self.observer.execution_started()
            self.observer.execution_finished(SimpleNamespace(
                outcome=Outcome(outcome_value), steps=steps,
                preemptions=preemptions, hit_depth_bound=hit_depth_bound,
            ))
        self._checkpoint()
        self._check_global_limits()

    # ------------------------------------------------------------------
    # the run
    # ------------------------------------------------------------------
    def run(self) -> ExplorationResult:
        """Run (or resume) the sharded search; returns the merged result."""
        self._start_time = time.perf_counter()
        if self.observer is not None:
            self.observer.exploration_started(
                self.program.name, self.policy_name, self.strategy_label())
        bounds = self._phase_bounds()
        phase_results: List[ExplorationResult] = [
            exploration_from_state(s) for s in self._completed_phases]
        resume_phase = self._phase_index
        resume_plan, resume_shards = self._plan_state, self._shard_states
        self._pool_start()
        try:
            for index in range(len(phase_results), len(bounds)):
                bound = bounds[index]
                self._phase_index = index
                if index == resume_phase and resume_plan is not None:
                    plan = ShardPlan.from_state(resume_plan)
                    done = dict(resume_shards)
                    resume_plan, resume_shards = None, {}
                else:
                    plan = self._plan_phase(bound)
                    done = {}
                self._plan_state = plan.to_state()
                self._shard_states = done
                result = self._run_phase(index, bound, plan)
                phase_results.append(result)
                if self._stop_reason is None:
                    # Only a phase that ran to its natural end counts as
                    # completed; a stopped phase keeps its plan and shard
                    # states in the checkpoint so a resume re-enters it.
                    self._completed_phases.append(
                        exploration_to_state(result))
                    self._plan_state = None
                    self._shard_states = {}
                self._partial_states = {}
                if self.observer is not None and self.strategy == "icb":
                    self.observer.icb_sweep(bound, result)
                self._checkpoint(force=True)
                if self._stop_reason is not None:
                    break
                if (self.strategy == "icb"
                        and self.limits.stop_on_first_violation
                        and result.found_violation):
                    break
        finally:
            self._pool_stop()

        merged = self._merge_run(phase_results)
        if self.observer is not None:
            if merged.interrupted and self.resilience is not None:
                self.observer.search_interrupted(
                    self.resilience.stop_signal or "request")
            self._reconcile_metrics(merged)
            self.observer.exploration_finished(merged)
        return merged

    # ------------------------------------------------------------------
    def _run_phase(self, phase: int, bound: Optional[int],
                   plan: ShardPlan) -> ExplorationResult:
        pending = [s for s in plan.shards
                   if s.index not in self._shard_states]
        # A BFS preamble can already decide the search (a probe found a
        # violation): honor the early-stop rules before dispatching.
        if self.strategy == "bfs":
            for record in plan.preamble:
                self._streamed_executions += 1
                if self._stop_reason is None:
                    if (self.limits.stop_on_first_violation and
                            record.outcome in (Outcome.VIOLATION,
                                               Outcome.DEADLOCK)):
                        self._stop_reason = "violation"
                    elif (self.limits.stop_on_first_divergence
                          and record.outcome is Outcome.DIVERGENCE):
                        self._stop_reason = "divergence"
        self._check_global_limits()
        quarantined: List[Shard] = []
        if self._stop_reason is None and pending:
            if self.inline:
                self._run_phase_inline(phase, bound, pending)
            else:
                quarantined = self._run_phase_pool(phase, bound, pending)
        return self._merge_phase(bound, plan, quarantined)

    def _run_phase_inline(self, phase: int, bound: Optional[int],
                          pending: List[Shard]) -> None:
        """Fallback without fork: same plan, same merge, one process."""
        for shard in pending:
            if self._stop_reason is not None:
                break
            if self.observer is not None:
                self.observer.shard_started(shard.index, 0,
                                            shard.describe())
                self.observer.spans.instant(
                    f"shard {shard.index} assigned", "assigned",
                    shard=shard.index, worker=0)
            state, signatures, extras = run_shard(
                self.program, self.policy_factory, self.config,
                self.shard_limits, self.strategy, shard,
                seed=self.seed, bound=bound,
                collect_coverage=self.coverage is not None,
                on_execution=lambda r: self._on_streamed_execution(
                    r.outcome.value, r.steps, r.preemptions,
                    r.hit_depth_bound),
                stop_check=lambda: self._stop_reason,
                telemetry=self.observer is not None,
            )
            self._finish_shard(shard.index, 0, state, signatures,
                               extras=extras)

    def _run_phase_pool(self, phase: int, bound: Optional[int],
                        pending: List[Shard]) -> List[Shard]:
        by_index = {s.index: s for s in pending}
        todo = list(pending)  # dispatch order = shard order
        outstanding = {s.index for s in pending}
        attempts: Dict[int, int] = {}
        quarantined: List[Shard] = []

        def handle_crash(worker_id: int, shard_index: Optional[int], *,
                         wedged: bool = False,
                         silent: float = 0.0) -> None:
            self._crashes += 1
            index = -1 if shard_index is None else shard_index
            attempts[index] = attempts.get(index, 0) + 1
            requeued = False
            if shard_index is not None and shard_index in outstanding:
                if attempts[index] <= self.max_shard_attempts:
                    requeued = True
                    todo.append(by_index[shard_index])
                else:
                    outstanding.discard(shard_index)
                    quarantined.append(by_index[shard_index])
                    self.warnings.append(
                        f"shard {shard_index} "
                        f"({by_index[shard_index].describe()}) "
                        f"quarantined after {attempts[index]} "
                        f"worker crashes; merged results exclude it"
                    )
            if self.observer is not None:
                if wedged:
                    self.observer.worker_wedged(worker_id, index, silent,
                                                requeued)
                else:
                    self.observer.worker_crashed(worker_id, index,
                                                 requeued)
                if requeued:
                    self.observer.spans.instant(
                        f"shard {shard_index} requeued", "requeued",
                        shard=shard_index, worker=worker_id)
            self._check_global_limits()

        def dispatch() -> None:
            for entry in self._procs:
                if not todo:
                    return
                if entry.exited or entry.shard is not None:
                    continue
                shard = todo.pop(0)
                entry.shard = shard.index
                entry.queue.put((phase, bound, shard.to_state()))
                if self.observer is not None:
                    self.observer.spans.instant(
                        f"shard {shard.index} assigned", "assigned",
                        shard=shard.index, worker=entry.id)

        while outstanding and self._stop_reason is None:
            self._maybe_respawn()
            dispatch()
            self._consume_messages(
                timeout=0.1, outstanding=outstanding,
                on_error=handle_crash)
            self._check_global_limits()
            if self._stop_reason is not None:
                break
            # Look for silently dead workers every pass (heartbeat
            # traffic keeps the queue busy, so queue idleness is no
            # longer a crash signal).  Assignment is tracked at dispatch
            # time, so even a worker that died before its feeder thread
            # flushed a single message gives its shard back for requeue.
            for entry in list(self._procs):
                if entry.exited or entry.proc.is_alive():
                    continue
                self._retire_entry(entry)
                handle_crash(entry.id, entry.shard)
                if outstanding and self._stop_reason is None:
                    self._schedule_respawn()
            # Wedge detection: a SIGSTOPped or livelocked worker is
            # alive to ``is_alive()`` but heartbeat-silent.  SIGKILL is
            # deliberate — SIGTERM stays pending on a stopped process.
            if self.wedge_timeout is not None:
                now = time.monotonic()
                for entry in list(self._procs):
                    if entry.exited or not entry.proc.is_alive():
                        continue
                    silent = now - entry.last_seen
                    if silent < self.wedge_timeout:
                        continue
                    entry.proc.kill()
                    entry.proc.join(timeout=5.0)
                    self._retire_entry(entry)
                    self.warnings.append(
                        f"worker {entry.id} made no progress for "
                        f"{silent:.1f}s (wedged); killed"
                    )
                    handle_crash(entry.id, entry.shard, wedged=True,
                                 silent=silent)
                    if outstanding and self._stop_reason is None:
                        self._schedule_respawn()
            if (not any(p.proc.is_alive() for p in self._procs)
                    and not self._pending_respawns):
                if outstanding and self._stop_reason is None:
                    # The whole pool died faster than it could be
                    # replaced; surface rather than spin forever.
                    self._stop_reason = "max-crashes"

        if self._stop_reason is not None and outstanding:
            # Coordinated stop: tell the workers, then collect whatever
            # partial shard results are still in flight.  Crashes during
            # the drain are counted but nothing is requeued or
            # quarantined — the merged verdict is already decided.
            if self._stop_event is not None:
                self._stop_event.set()
            for entry in self._procs:
                self._drain_queue(entry.queue)

            def drain_crash(worker_id: int,
                            shard_index: Optional[int]) -> None:
                self._crashes += 1
                if self.observer is not None:
                    self.observer.worker_crashed(
                        worker_id,
                        -1 if shard_index is None else shard_index,
                        False)

            deadline = time.monotonic() + _DRAIN_SECONDS
            while (any(e.shard is not None and not e.exited
                       for e in self._procs)
                   and time.monotonic() < deadline):
                self._consume_messages(timeout=0.1, outstanding=outstanding,
                                       on_error=drain_crash)
                for entry in self._procs:
                    if not entry.exited and not entry.proc.is_alive():
                        entry.exited = True
                        drain_crash(entry.id, entry.shard)
                        entry.shard = None
                    elif (not entry.exited
                          and self.wedge_timeout is not None
                          and (time.monotonic() - entry.last_seen
                               > self.wedge_timeout)):
                        # A wedged worker would hold the drain open for
                        # the full deadline; kill it now.
                        entry.proc.kill()
                        entry.proc.join(timeout=5.0)
                        entry.exited = True
                        drain_crash(entry.id, entry.shard)
                        entry.shard = None
        return quarantined

    def _consume_messages(self, *, timeout: float, outstanding=None,
                          on_error=None) -> bool:
        """Handle every queued worker message; True if any arrived."""
        if self._result_queue is None:
            return False
        progressed = False
        block = timeout
        while True:
            try:
                message = self._result_queue.get(timeout=block)
            except queue_module.Empty:
                return progressed
            progressed = True
            block = 0.0  # drain without further blocking
            kind = message[0]
            # Any message proves its worker is making progress (every
            # message kind carries the worker id in slot 1).
            if len(message) > 1:
                entry = self._entry(message[1])
                if entry is not None:
                    entry.last_seen = time.monotonic()
            if kind == "heartbeat":
                continue
            if kind == "start":
                _, worker_id, _, shard_index = message
                if self.observer is not None:
                    self.observer.shard_started(
                        shard_index, worker_id, "")
            elif kind == "execution":
                (_, _, _, _, outcome_value, steps, preemptions,
                 hit_depth_bound) = message
                self._on_streamed_execution(outcome_value, steps,
                                            preemptions, hit_depth_bound)
            elif kind == "done":
                (_, worker_id, _, shard_index, state, signatures,
                 extras) = message
                entry = self._entry(worker_id)
                if entry is not None and entry.shard == shard_index:
                    entry.shard = None
                # A completed shard proves the pool is healthy again:
                # reset the respawn backoff.
                self._respawn_backoff = 0.0
                if outstanding is not None:
                    outstanding.discard(shard_index)
                self._finish_shard(worker_id=worker_id,
                                   shard_index=shard_index, state=state,
                                   signatures=signatures, extras=extras)
            elif kind == "error":
                _, worker_id, _, shard_index, text = message
                entry = self._entry(worker_id)
                if entry is not None and entry.shard == shard_index:
                    entry.shard = None
                self.warnings.append(
                    f"worker {worker_id} failed on shard {shard_index}: "
                    f"{text.strip().splitlines()[-1]}"
                )
                if on_error is not None:
                    on_error(worker_id, shard_index)
            elif kind == "exit":
                _, worker_id = message
                entry = self._entry(worker_id)
                if entry is not None:
                    entry.exited = True

    def _finish_shard(self, shard_index: int, worker_id: int, state: dict,
                      signatures, extras: Optional[dict] = None) -> None:
        self._signatures.update(signatures)
        if extras and self.observer is not None:
            # Fold the worker-local telemetry into the merged view: phase
            # timings aggregate (satellite of docs/parallel.md: --stats
            # under --workers N reports the pool's full engine time) and
            # spans land on the worker's own timeline lane.
            timers_state = extras.get("phase_timers")
            if timers_state:
                self.observer.timers.merge_state(timers_state)
            span_states = extras.get("spans")
            if span_states:
                lane = "inline" if self.inline else f"worker-{worker_id}"
                self.observer.spans.extend_from_state(
                    span_states, pid=worker_id + 1, lane_name=lane)
        if self.observer is not None:
            self.observer.spans.instant(
                f"shard {shard_index} merged", "merged",
                shard=shard_index, worker=worker_id)
        result = exploration_from_state(state)
        # Coordinated stops are not operator interrupts: the shard's
        # local "interrupted" must not leak into the merged verdict.
        # Such a shard was cut short, so it counts toward *this* run's
        # totals only — a resume re-runs it in full.
        if state.get("stop_reason") == "interrupted":
            state["stop_reason"] = None
            self._partial_states[shard_index] = state
        else:
            self._shard_states[shard_index] = state
        if self.observer is not None:
            self.observer.shard_finished(
                shard_index, worker_id, result.executions,
                result.transitions, result.found_violation)
        self._check_shard_result(result)
        self._checkpoint(force=True)

    # ------------------------------------------------------------------
    # merging
    # ------------------------------------------------------------------
    def _fold_record(self, merged: ExplorationResult,
                     record: ExecutionResult) -> None:
        """Fold one preamble record, mirroring ``Aggregator.add``."""
        keep = self.limits.keep_records
        merged.executions += 1
        merged.transitions += record.steps
        merged.outcomes[record.outcome] += 1
        if record.hit_depth_bound:
            merged.nonterminating_executions += 1
        if record.outcome is Outcome.VIOLATION:
            if len(merged.violations) < keep:
                merged.violations.append(record)
            if merged.first_violation_execution is None:
                merged.first_violation_execution = merged.executions
        elif record.outcome is Outcome.DEADLOCK:
            if len(merged.deadlocks) < keep:
                merged.deadlocks.append(record)
            if merged.first_violation_execution is None:
                merged.first_violation_execution = merged.executions
        elif record.outcome is Outcome.DIVERGENCE:
            if len(merged.divergences) < keep:
                merged.divergences.append(record)
        elif record.outcome is Outcome.CRASHED:
            if len(merged.crashes) < keep:
                merged.crashes.append(record)
        elif record.outcome is Outcome.ABORTED:
            merged.aborted_executions += 1

    def _merge_phase(self, bound: Optional[int], plan: ShardPlan,
                     quarantined: List[Shard]) -> ExplorationResult:
        merged = ExplorationResult(
            program_name=self.program.name,
            policy_name=self.policy_name,
            strategy_name=self._phase_label(bound),
        )
        if self.strategy == "bfs":
            # Stateless BFS counts one execution per tree node; the
            # planner's interior probes are exactly the nodes above the
            # shard cut, so they belong in the totals.
            for record in plan.preamble:
                self._fold_record(merged, record)
        missing = 0
        all_complete = True
        for shard in plan.shards:
            state = self._shard_states.get(shard.index)
            if state is None:
                state = self._partial_states.get(shard.index)
            if state is None:
                missing += 1
                all_complete = False
                continue
            result = exploration_from_state(state)
            executions_before = merged.executions
            merged.executions += result.executions
            merged.transitions += result.transitions
            merged.outcomes.update(result.outcomes)
            keep = self.limits.keep_records
            merged.violations.extend(
                result.violations[:keep - len(merged.violations)])
            merged.deadlocks.extend(
                result.deadlocks[:keep - len(merged.deadlocks)])
            merged.divergences.extend(
                result.divergences[:keep - len(merged.divergences)])
            merged.crashes.extend(
                result.crashes[:keep - len(merged.crashes)])
            merged.aborted_executions += result.aborted_executions
            merged.nonterminating_executions += (
                result.nonterminating_executions)
            if (result.first_violation_execution is not None
                    and merged.first_violation_execution is None):
                merged.first_violation_execution = (
                    executions_before + result.first_violation_execution)
            all_complete = all_complete and result.complete
        merged.complete = (all_complete and not quarantined
                           and self._stop_reason is None
                           and self.strategy != "random")
        merged.stop_reason = self._stop_reason
        merged.limit_hit = self._stop_reason in (
            "max-executions", "max-seconds", "max-crashes")
        merged.wall_seconds = time.perf_counter() - self._start_time
        if self.coverage is not None:
            for signature in self._signatures:
                self.coverage.record(signature)
            merged.states_covered = self.coverage.count
        self._regenerate_traces(merged, bound)
        return merged

    def _merge_run(self,
                   phase_results: List[ExplorationResult]
                   ) -> ExplorationResult:
        if self.strategy == "icb":
            merged = merge_sweeps(self.program.name, self.policy_name,
                                  phase_results)
            merged.wall_seconds = time.perf_counter() - self._start_time
            merged.stop_reason = self._stop_reason
            merged.limit_hit = self._stop_reason in (
                "max-executions", "max-seconds", "max-crashes")
            return merged
        return phase_results[0]

    def _regenerate_traces(self, merged: ExplorationResult,
                           bound: Optional[int]) -> None:
        """Shard results travel trace-less (schedules replay
        deterministically); rebuild the traces of the records
        ``CheckResult.report`` prints."""
        config = self.config
        if bound is not None:
            config = dataclasses.replace(config, preemption_bound=bound)
        for records in (merged.violations, merged.deadlocks,
                        merged.divergences, merged.crashes):
            if not records or records[0].trace:
                continue
            record = records[0]
            try:
                if self.strategy == "por":
                    replayed = _run_once_with_sleep(
                        self.program, self.policy_factory(),
                        record.schedule,
                        depth_bound=self.config.depth_bound, coverage=None)
                else:
                    replayed = replay_schedule(
                        self.program, record.schedule,
                        self.policy_factory, config)
            except Exception:  # pragma: no cover - replay divergence
                continue
            if replayed.outcome is record.outcome:
                records[0] = replayed

    # ------------------------------------------------------------------
    def _reconcile_metrics(self, merged: ExplorationResult) -> None:
        """Pin the streamed counters to the merged totals (crash-retry
        re-streams and drained messages would otherwise drift them)."""
        m = self.observer.metrics
        targets = {
            "executions": merged.executions,
            "transitions": merged.transitions,
            "violations": merged.outcomes.get(Outcome.VIOLATION, 0),
            "deadlocks": merged.outcomes.get(Outcome.DEADLOCK, 0),
            "crashes": merged.outcomes.get(Outcome.CRASHED, 0),
            "divergences": merged.outcomes.get(Outcome.DIVERGENCE, 0),
        }
        for name, value in targets.items():
            if value == 0 and not m.has_counter(name):
                # A serial run only creates counters it touches; keep
                # the exported metrics namespace identical.
                continue
            counter = m.counter(name)
            counter.inc(value - counter.value)
