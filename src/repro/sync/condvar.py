"""Condition variables (monitor-style, associated with a mutex).

``wait`` is a three-phase operation — release the mutex, block until
notified (or until a finite timeout would fire, which counts as a yield),
reacquire the mutex.  Each phase is its own transition so the checker
explores the classic lost-wakeup and spurious-ordering interleavings.

Wakeup order is FIFO and deterministic; which *waiter* a ``notify`` wakes
is therefore not a search dimension (the scheduler's thread choices already
cover the interesting interleavings, and determinism is required for
replay).
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.runtime.errors import SyncUsageError
from repro.runtime.ops import Operation
from repro.runtime.task import Task
from repro.sync.mutex import Mutex, MutexAcquireOp


class _CondReleaseOp(Operation):
    __slots__ = ("cond",)

    def __init__(self, cond: "CondVar") -> None:
        self.cond = cond

    def resources(self):
        # Releases the associated mutex as well as touching the condvar.
        return (id(self.cond), id(self.cond.mutex))

    def execute(self, vm, task) -> None:
        mutex = self.cond.mutex
        if mutex._owner is not task:
            raise SyncUsageError(
                f"{task.name} waited on {self.cond.name} without holding "
                f"{mutex.name}"
            )
        mutex._owner = None
        self.cond._waiting.append(task)

    def describe(self) -> str:
        return f"cond_wait_release({self.cond.name})"


class _CondBlockOp(Operation):
    resource_attr = "cond"
    __slots__ = ("cond", "timeout")

    def __init__(self, cond: "CondVar", timeout: Optional[float]) -> None:
        self.cond = cond
        self.timeout = timeout

    def enabled(self, vm, task) -> bool:
        return task in self.cond._woken or self.timeout is not None

    def is_yielding(self, vm, task) -> bool:
        return self.timeout is not None and task not in self.cond._woken

    def execute(self, vm, task) -> bool:
        if task in self.cond._woken:
            self.cond._woken.remove(task)
            return True
        # Timeout: abandon the wait.
        if task in self.cond._waiting:
            self.cond._waiting.remove(task)
        return False

    def describe(self) -> str:
        suffix = "" if self.timeout is None else f", timeout={self.timeout:g}"
        return f"cond_block({self.cond.name}{suffix})"


class _CondNotifyOp(Operation):
    resource_attr = "cond"
    __slots__ = ("cond", "all")

    def __init__(self, cond: "CondVar", notify_all: bool) -> None:
        self.cond = cond
        self.all = notify_all

    def execute(self, vm, task) -> None:
        if self.all:
            self.cond._woken.extend(self.cond._waiting)
            self.cond._waiting.clear()
        elif self.cond._waiting:
            self.cond._woken.append(self.cond._waiting.pop(0))

    def describe(self) -> str:
        verb = "notify_all" if self.all else "notify"
        return f"{verb}({self.cond.name})"


class CondVar:
    """A condition variable bound to a :class:`~repro.sync.mutex.Mutex`."""

    _counter = 0

    def __init__(self, mutex: Mutex, name: Optional[str] = None) -> None:
        if name is None:
            CondVar._counter += 1
            name = f"cond{CondVar._counter}"
        self.name = name
        self.mutex = mutex
        self._waiting: List[Task] = []
        self._woken: List[Task] = []

    def wait(self, timeout: Optional[float] = None) -> Generator[Operation, Any, bool]:
        """Release the mutex, block for a notification, reacquire.

        Returns ``True`` if notified, ``False`` if the finite timeout fired
        (the mutex is reacquired either way, as with real condvars).
        """
        yield _CondReleaseOp(self)
        notified = yield _CondBlockOp(self, timeout)
        yield MutexAcquireOp(self.mutex, None)
        return notified

    def notify(self) -> Generator[Operation, Any, None]:
        """Wake one waiter (FIFO). No-op when nobody waits — notifications
        are not remembered, enabling lost-wakeup bugs to manifest."""
        yield _CondNotifyOp(self, notify_all=False)

    def notify_all(self) -> Generator[Operation, Any, None]:
        yield _CondNotifyOp(self, notify_all=True)

    # ------------------------------------------------------------------
    def waiter_count(self) -> int:
        return len(self._waiting)

    def state_signature(self) -> Any:
        return (
            "cond",
            self.name,
            tuple(t.name for t in self._waiting),
            tuple(t.name for t in self._woken),
        )

    def __repr__(self) -> str:
        return (f"<CondVar {self.name} waiting={len(self._waiting)} "
                f"woken={len(self._woken)}>")
