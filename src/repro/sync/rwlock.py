"""Reader–writer locks (writer-exclusive, no writer preference).

Used by the Dryad-channel substitute and the mini-OS workload; also a good
stress of enable/disable bookkeeping — acquiring a write lock disables all
pending readers, which feeds Algorithm 1's ``D(t)`` sets.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Set

from repro.runtime.errors import SyncUsageError
from repro.runtime.ops import Operation
from repro.runtime.task import Task


class _ReadAcquireOp(Operation):
    resource_attr = "lock"
    __slots__ = ("lock", "timeout")

    def __init__(self, lock: "RWLock", timeout: Optional[float]) -> None:
        self.lock = lock
        self.timeout = timeout

    def enabled(self, vm, task) -> bool:
        return self.lock._writer is None or self.timeout is not None

    def is_yielding(self, vm, task) -> bool:
        return self.timeout is not None and self.lock._writer is not None

    def execute(self, vm, task) -> bool:
        if self.lock._writer is None:
            self.lock._readers.add(task)
            return True
        return False

    def describe(self) -> str:
        return f"read_acquire({self.lock.name})"


class _ReadReleaseOp(Operation):
    resource_attr = "lock"
    __slots__ = ("lock",)

    def __init__(self, lock: "RWLock") -> None:
        self.lock = lock

    def execute(self, vm, task) -> None:
        if task not in self.lock._readers:
            raise SyncUsageError(
                f"{task.name} released read lock {self.lock.name} it "
                f"does not hold"
            )
        self.lock._readers.discard(task)

    def describe(self) -> str:
        return f"read_release({self.lock.name})"


class _WriteAcquireOp(Operation):
    resource_attr = "lock"
    __slots__ = ("lock", "timeout")

    def __init__(self, lock: "RWLock", timeout: Optional[float]) -> None:
        self.lock = lock
        self.timeout = timeout

    def _free(self) -> bool:
        return self.lock._writer is None and not self.lock._readers

    def enabled(self, vm, task) -> bool:
        return self._free() or self.timeout is not None

    def is_yielding(self, vm, task) -> bool:
        return self.timeout is not None and not self._free()

    def execute(self, vm, task) -> bool:
        if self._free():
            self.lock._writer = task
            return True
        return False

    def describe(self) -> str:
        return f"write_acquire({self.lock.name})"


class _WriteReleaseOp(Operation):
    resource_attr = "lock"
    __slots__ = ("lock",)

    def __init__(self, lock: "RWLock") -> None:
        self.lock = lock

    def execute(self, vm, task) -> None:
        if self.lock._writer is not task:
            raise SyncUsageError(
                f"{task.name} released write lock {self.lock.name} it "
                f"does not hold"
            )
        self.lock._writer = None

    def describe(self) -> str:
        return f"write_release({self.lock.name})"


class RWLock:
    """Multiple readers or one writer."""

    _counter = 0

    def __init__(self, name: Optional[str] = None) -> None:
        if name is None:
            RWLock._counter += 1
            name = f"rwlock{RWLock._counter}"
        self.name = name
        self._readers: Set[Task] = set()
        self._writer: Optional[Task] = None

    def acquire_read(self, timeout: Optional[float] = None) -> Generator[Operation, Any, bool]:
        ok = yield _ReadAcquireOp(self, timeout)
        return ok

    def release_read(self) -> Generator[Operation, Any, None]:
        yield _ReadReleaseOp(self)

    def acquire_write(self, timeout: Optional[float] = None) -> Generator[Operation, Any, bool]:
        ok = yield _WriteAcquireOp(self, timeout)
        return ok

    def release_write(self) -> Generator[Operation, Any, None]:
        yield _WriteReleaseOp(self)

    # ------------------------------------------------------------------
    def reader_count(self) -> int:
        return len(self._readers)

    def has_writer(self) -> bool:
        return self._writer is not None

    def state_signature(self) -> Any:
        return (
            "rwlock",
            self.name,
            tuple(sorted(t.name for t in self._readers)),
            self._writer.name if self._writer else None,
        )

    def __repr__(self) -> str:
        return (f"<RWLock {self.name} readers={len(self._readers)} "
                f"writer={self._writer.name if self._writer else None}>")
