"""Bounded and unbounded FIFO channels.

These are the building blocks of the Dryad-channel substitute workload and
the mini-OS IPC layer.  A channel can be closed; receiving from a closed,
drained channel completes immediately with ``(False, None)`` so consumer
loops terminate under fair schedules.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional, Tuple

from repro.runtime.errors import SyncUsageError
from repro.runtime.ops import Operation


class _SendOp(Operation):
    resource_attr = "channel"
    __slots__ = ("channel", "item", "timeout")

    def __init__(self, channel: "Channel", item: Any,
                 timeout: Optional[float]) -> None:
        self.channel = channel
        self.item = item
        self.timeout = timeout

    def _has_space(self) -> bool:
        ch = self.channel
        return ch.capacity is None or len(ch._items) < ch.capacity

    def enabled(self, vm, task) -> bool:
        return self._has_space() or self.channel._closed or self.timeout is not None

    def is_yielding(self, vm, task) -> bool:
        return (self.timeout is not None and not self._has_space()
                and not self.channel._closed)

    def execute(self, vm, task) -> bool:
        ch = self.channel
        if ch._closed:
            raise SyncUsageError(
                f"{task.name} sent on closed channel {ch.name}"
            )
        if self._has_space():
            ch._items.append(self.item)
            ch._total_sent += 1
            return True
        return False  # timed out

    def describe(self) -> str:
        return f"send({self.channel.name})"


class _RecvOp(Operation):
    resource_attr = "channel"
    __slots__ = ("channel", "timeout")

    def __init__(self, channel: "Channel", timeout: Optional[float]) -> None:
        self.channel = channel
        self.timeout = timeout

    def _ready(self) -> bool:
        return bool(self.channel._items) or self.channel._closed

    def enabled(self, vm, task) -> bool:
        return self._ready() or self.timeout is not None

    def is_yielding(self, vm, task) -> bool:
        return self.timeout is not None and not self._ready()

    def execute(self, vm, task) -> Tuple[bool, Any]:
        ch = self.channel
        if ch._items:
            return (True, ch._items.popleft())
        return (False, None)  # closed-and-drained, or timed out

    def describe(self) -> str:
        return f"recv({self.channel.name})"


class _CloseOp(Operation):
    resource_attr = "channel"
    __slots__ = ("channel",)

    def __init__(self, channel: "Channel") -> None:
        self.channel = channel

    def execute(self, vm, task) -> None:
        self.channel._closed = True

    def describe(self) -> str:
        return f"close({self.channel.name})"


class Channel:
    """A FIFO channel with optional capacity.

    * ``send`` blocks while the channel is full (or fails after a finite
      timeout, a yielding transition); sending on a closed channel is a
      safety violation.
    * ``recv`` blocks while the channel is empty and open; it returns
      ``(True, item)`` on success and ``(False, None)`` when the channel is
      closed and drained (or the timeout fired).
    """

    _counter = 0

    def __init__(self, capacity: Optional[int] = None,
                 name: Optional[str] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive (or None for unbounded)")
        if name is None:
            Channel._counter += 1
            name = f"chan{Channel._counter}"
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._closed = False
        self._total_sent = 0

    def send(self, item: Any, timeout: Optional[float] = None) -> Generator[Operation, Any, bool]:
        ok = yield _SendOp(self, item, timeout)
        return ok

    def try_send(self, item: Any) -> Generator[Operation, Any, bool]:
        """Non-blocking send (zero timeout): yields when it would fail."""
        ok = yield _SendOp(self, item, 0.0)
        return ok

    def recv(self, timeout: Optional[float] = None) -> Generator[Operation, Any, Tuple[bool, Any]]:
        result = yield _RecvOp(self, timeout)
        return result

    def try_recv(self) -> Generator[Operation, Any, Tuple[bool, Any]]:
        """Non-blocking receive (zero timeout): yields when it would fail."""
        result = yield _RecvOp(self, 0.0)
        return result

    def close(self) -> Generator[Operation, Any, None]:
        yield _CloseOp(self)

    # ------------------------------------------------------------------
    def size(self) -> int:
        return len(self._items)

    def is_closed(self) -> bool:
        return self._closed

    def total_sent(self) -> int:
        return self._total_sent

    def state_signature(self) -> Any:
        return ("chan", self.name, tuple(self._items), self._closed)

    def __repr__(self) -> str:
        cap = "∞" if self.capacity is None else self.capacity
        return (f"<Channel {self.name} {len(self._items)}/{cap}"
                f"{' closed' if self._closed else ''}>")
