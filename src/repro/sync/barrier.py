"""Cyclic barriers."""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.runtime.ops import Operation


class _BarrierArriveOp(Operation):
    resource_attr = "barrier"
    __slots__ = ("barrier",)

    def __init__(self, barrier: "Barrier") -> None:
        self.barrier = barrier

    def execute(self, vm, task) -> int:
        b = self.barrier
        my_generation = b._generation
        b._arrived += 1
        if b._arrived == b.parties:
            b._arrived = 0
            b._generation += 1
        return my_generation

    def describe(self) -> str:
        return f"barrier_arrive({self.barrier.name})"


class _BarrierBlockOp(Operation):
    resource_attr = "barrier"
    __slots__ = ("barrier", "generation", "timeout")

    def __init__(self, barrier: "Barrier", generation: int,
                 timeout: Optional[float]) -> None:
        self.barrier = barrier
        self.generation = generation
        self.timeout = timeout

    def _released(self) -> bool:
        return self.barrier._generation != self.generation

    def enabled(self, vm, task) -> bool:
        return self._released() or self.timeout is not None

    def is_yielding(self, vm, task) -> bool:
        return self.timeout is not None and not self._released()

    def execute(self, vm, task) -> bool:
        return self._released()

    def describe(self) -> str:
        return f"barrier_block({self.barrier.name}, gen={self.generation})"


class Barrier:
    """A reusable barrier for a fixed number of parties."""

    _counter = 0

    def __init__(self, parties: int, name: Optional[str] = None) -> None:
        if parties < 1:
            raise ValueError("a barrier needs at least one party")
        if name is None:
            Barrier._counter += 1
            name = f"barrier{Barrier._counter}"
        self.name = name
        self.parties = parties
        self._arrived = 0
        self._generation = 0

    def arrive_and_wait(self, timeout: Optional[float] = None) -> Generator[Operation, Any, bool]:
        """Arrive at the barrier, then block until all parties arrive.

        Returns ``True`` when released normally, ``False`` if a finite
        timeout fired first (the arrival still counts; a subsequent release
        proceeds without the timed-out thread, as with Win32 barriers).
        """
        generation = yield _BarrierArriveOp(self)
        released = yield _BarrierBlockOp(self, generation, timeout)
        return released

    # ------------------------------------------------------------------
    def waiting(self) -> int:
        return self._arrived

    def state_signature(self) -> Any:
        return ("barrier", self.name, self._arrived, self._generation)

    def __repr__(self) -> str:
        return (f"<Barrier {self.name} arrived={self._arrived}/"
                f"{self.parties} gen={self._generation}>")
