"""Mutexes with ``Acquire`` / ``TryAcquire`` / ``Release`` — Figure 1's API.

Yield inference (Section 4 of the paper): every synchronization operation
with a finite timeout is treated as yielding *when it would time out*.
``try_acquire`` is an acquire with a zero timeout, so a failing
``try_acquire`` is a yielding transition — this is exactly what lets the
fair scheduler both tolerate and expose the dining-philosophers livelock.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.runtime.errors import SyncUsageError
from repro.runtime.ops import Operation
from repro.runtime.task import Task


class MutexAcquireOp(Operation):
    resource_attr = "mutex"
    __slots__ = ("mutex", "timeout")

    def __init__(self, mutex: "Mutex", timeout: Optional[float]) -> None:
        self.mutex = mutex
        self.timeout = timeout

    def enabled(self, vm, task) -> bool:
        return self.mutex._owner is None or self.timeout is not None

    def is_yielding(self, vm, task) -> bool:
        return self.timeout is not None and self.mutex._owner is not None

    def execute(self, vm, task) -> bool:
        if self.mutex._owner is None:
            self.mutex._owner = task
            return True
        return False  # timed out

    def describe(self) -> str:
        suffix = "" if self.timeout is None else f", timeout={self.timeout:g}"
        return f"acquire({self.mutex.name}{suffix})"


class MutexTryAcquireOp(Operation):
    resource_attr = "mutex"
    __slots__ = ("mutex",)

    def __init__(self, mutex: "Mutex") -> None:
        self.mutex = mutex

    def is_yielding(self, vm, task) -> bool:
        # A zero-timeout wait: yields exactly when the acquire would fail.
        return self.mutex._owner is not None

    def execute(self, vm, task) -> bool:
        if self.mutex._owner is None:
            self.mutex._owner = task
            return True
        return False

    def describe(self) -> str:
        return f"try_acquire({self.mutex.name})"


class MutexReleaseOp(Operation):
    resource_attr = "mutex"
    __slots__ = ("mutex",)

    def __init__(self, mutex: "Mutex") -> None:
        self.mutex = mutex

    def execute(self, vm, task) -> None:
        owner = self.mutex._owner
        if owner is not task:
            holder = owner.name if owner is not None else "nobody"
            raise SyncUsageError(
                f"{task.name} released {self.mutex.name} held by {holder}"
            )
        self.mutex._owner = None

    def describe(self) -> str:
        return f"release({self.mutex.name})"


class Mutex:
    """A non-reentrant mutual-exclusion lock.

    A blocking :meth:`acquire` by the current owner self-deadlocks (the
    thread becomes permanently disabled), which the checker reports as a
    deadlock — the same behavior as a Win32 non-reentrant lock under CHESS.
    """

    _counter = 0

    def __init__(self, name: Optional[str] = None) -> None:
        if name is None:
            Mutex._counter += 1
            name = f"mutex{Mutex._counter}"
        self.name = name
        self._owner: Optional[Task] = None

    # ------------------------------------------------------------------
    # Operations (use with ``yield from`` inside thread bodies)
    # ------------------------------------------------------------------
    def acquire(self, timeout: Optional[float] = None) -> Generator[Operation, Any, bool]:
        """Acquire the mutex; with a finite ``timeout`` this may fail
        (returning ``False``) and counts as a yield when it does."""
        ok = yield MutexAcquireOp(self, timeout)
        return ok

    def try_acquire(self) -> Generator[Operation, Any, bool]:
        """Figure 1's ``TryAcquire``: never blocks, yields on failure."""
        ok = yield MutexTryAcquireOp(self)
        return ok

    def release(self) -> Generator[Operation, Any, None]:
        yield MutexReleaseOp(self)

    # ------------------------------------------------------------------
    # Non-scheduling introspection (for assertions and state extraction)
    # ------------------------------------------------------------------
    def held(self) -> bool:
        return self._owner is not None

    def held_by(self, task: Task) -> bool:
        return self._owner is task

    def owner_name(self) -> Optional[str]:
        return self._owner.name if self._owner is not None else None

    def state_signature(self) -> Any:
        return ("mutex", self.name, self.owner_name())

    def __repr__(self) -> str:
        return f"<Mutex {self.name} owner={self.owner_name()}>"
