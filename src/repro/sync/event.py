"""Win32-style events (manual- and auto-reset).

These are the primitives the paper's "manual modification" workflow used to
make programs terminating (Section 4.1): a spin loop on a shared variable
is replaced by a blocking ``event.wait()`` signaled by the writer.  Both
the spin-loop and the event-based versions of Figure 3 live in
:mod:`repro.workloads.spinloop`, so the cost of that manual effort can be
compared directly.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.runtime.ops import Operation


class _EventWaitOp(Operation):
    resource_attr = "event"
    __slots__ = ("event", "timeout")

    def __init__(self, event: "Event", timeout: Optional[float]) -> None:
        self.event = event
        self.timeout = timeout

    def enabled(self, vm, task) -> bool:
        return self.event._signaled or self.timeout is not None

    def is_yielding(self, vm, task) -> bool:
        return self.timeout is not None and not self.event._signaled

    def execute(self, vm, task) -> bool:
        if self.event._signaled:
            if self.event._auto_reset:
                self.event._signaled = False
            return True
        return False

    def describe(self) -> str:
        suffix = "" if self.timeout is None else f", timeout={self.timeout:g}"
        return f"wait({self.event.name}{suffix})"


class _EventSetOp(Operation):
    resource_attr = "event"
    __slots__ = ("event",)

    def __init__(self, event: "Event") -> None:
        self.event = event

    def execute(self, vm, task) -> None:
        self.event._signaled = True

    def describe(self) -> str:
        return f"set({self.event.name})"


class _EventResetOp(Operation):
    resource_attr = "event"
    __slots__ = ("event",)

    def __init__(self, event: "Event") -> None:
        self.event = event

    def execute(self, vm, task) -> None:
        self.event._signaled = False

    def describe(self) -> str:
        return f"reset({self.event.name})"


class Event:
    """A signalable event.

    Manual-reset events stay signaled until :meth:`reset`; auto-reset
    events release exactly one waiter per :meth:`set` (the released wait
    consumes the signal atomically).
    """

    _counter = 0

    def __init__(self, signaled: bool = False, auto_reset: bool = False,
                 name: Optional[str] = None) -> None:
        if name is None:
            Event._counter += 1
            name = f"event{Event._counter}"
        self.name = name
        self._signaled = signaled
        self._auto_reset = auto_reset

    def wait(self, timeout: Optional[float] = None) -> Generator[Operation, Any, bool]:
        """Block until signaled; with a finite timeout, may return ``False``
        (and counts as a yield when it would)."""
        ok = yield _EventWaitOp(self, timeout)
        return ok

    def set(self) -> Generator[Operation, Any, None]:
        yield _EventSetOp(self)

    def reset(self) -> Generator[Operation, Any, None]:
        yield _EventResetOp(self)

    # ------------------------------------------------------------------
    def is_signaled(self) -> bool:
        return self._signaled

    def state_signature(self) -> Any:
        return ("event", self.name, self._signaled)

    def __repr__(self) -> str:
        kind = "auto" if self._auto_reset else "manual"
        return f"<Event {self.name} ({kind}) signaled={self._signaled}>"
