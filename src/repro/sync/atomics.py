"""Atomic cells and shared variables.

Every access is a separate transition (a scheduling point), so the checker
sees all the interleavings a weak scheduler could produce on real hardware
for *sequentially consistent* accesses.  ``AtomicCell`` provides the
interlocked operations the work-stealing queue and the Promise library are
built from (``load``/``store``/``compare_and_swap``/``fetch_add``/
``exchange`` — the paper's ``InterlockedRead`` etc.).

``SharedVar`` is the same machinery under a name that reads better for
plain shared memory (Figure 3's ``x``).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.runtime.ops import Operation


class _LoadOp(Operation):
    resource_attr = "cell"
    __slots__ = ("cell",)

    def __init__(self, cell: "AtomicCell") -> None:
        self.cell = cell

    def execute(self, vm, task) -> Any:
        return self.cell._value

    def describe(self) -> str:
        return f"load({self.cell.name})"


class _StoreOp(Operation):
    resource_attr = "cell"
    __slots__ = ("cell", "value")

    def __init__(self, cell: "AtomicCell", value: Any) -> None:
        self.cell = cell
        self.value = value

    def execute(self, vm, task) -> None:
        self.cell._value = self.value

    def describe(self) -> str:
        return f"store({self.cell.name}, {self.value!r})"


class _CasOp(Operation):
    resource_attr = "cell"
    __slots__ = ("cell", "expected", "new")

    def __init__(self, cell: "AtomicCell", expected: Any, new: Any) -> None:
        self.cell = cell
        self.expected = expected
        self.new = new

    def execute(self, vm, task) -> bool:
        if self.cell._value == self.expected:
            self.cell._value = self.new
            return True
        return False

    def describe(self) -> str:
        return f"cas({self.cell.name}, {self.expected!r}->{self.new!r})"


class _FetchAddOp(Operation):
    resource_attr = "cell"
    __slots__ = ("cell", "delta")

    def __init__(self, cell: "AtomicCell", delta: Any) -> None:
        self.cell = cell
        self.delta = delta

    def execute(self, vm, task) -> Any:
        old = self.cell._value
        self.cell._value = old + self.delta
        return old

    def describe(self) -> str:
        return f"fetch_add({self.cell.name}, {self.delta!r})"


class _ExchangeOp(Operation):
    resource_attr = "cell"
    __slots__ = ("cell", "value")

    def __init__(self, cell: "AtomicCell", value: Any) -> None:
        self.cell = cell
        self.value = value

    def execute(self, vm, task) -> Any:
        old = self.cell._value
        self.cell._value = self.value
        return old

    def describe(self) -> str:
        return f"exchange({self.cell.name}, {self.value!r})"


class AtomicCell:
    """A word of shared memory with atomic (interlocked) operations."""

    _counter = 0

    def __init__(self, value: Any = None, name: Optional[str] = None) -> None:
        if name is None:
            AtomicCell._counter += 1
            name = f"cell{AtomicCell._counter}"
        self.name = name
        self._value = value

    def load(self) -> Generator[Operation, Any, Any]:
        """Atomic read (``InterlockedRead``); one transition."""
        value = yield _LoadOp(self)
        return value

    def store(self, value: Any) -> Generator[Operation, Any, None]:
        """Atomic write; one transition."""
        yield _StoreOp(self, value)

    def compare_and_swap(self, expected: Any, new: Any) -> Generator[Operation, Any, bool]:
        """CAS: install ``new`` iff the current value equals ``expected``;
        returns whether the swap happened."""
        ok = yield _CasOp(self, expected, new)
        return ok

    def fetch_add(self, delta: Any = 1) -> Generator[Operation, Any, Any]:
        """Atomic add; returns the *previous* value."""
        old = yield _FetchAddOp(self, delta)
        return old

    def exchange(self, value: Any) -> Generator[Operation, Any, Any]:
        """Atomic swap; returns the previous value."""
        old = yield _ExchangeOp(self, value)
        return old

    # ------------------------------------------------------------------
    # Non-scheduling access for setup code, assertions, state extraction.
    # ------------------------------------------------------------------
    def peek(self) -> Any:
        return self._value

    def poke(self, value: Any) -> None:
        self._value = value

    def state_signature(self) -> Any:
        return ("cell", self.name, self._value)

    def __repr__(self) -> str:
        return f"<AtomicCell {self.name}={self._value!r}>"


class SharedVar(AtomicCell):
    """A shared (``volatile``) variable; reads/writes are scheduling points.

    ``get``/``set`` are aliases of :meth:`AtomicCell.load`/:meth:`store`.
    """

    def get(self) -> Generator[Operation, Any, Any]:
        value = yield _LoadOp(self)
        return value

    def set(self, value: Any) -> Generator[Operation, Any, None]:
        yield _StoreOp(self, value)
