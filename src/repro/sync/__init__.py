"""Instrumented synchronization primitives.

Everything a workload thread does to shared state goes through these
objects; each operation is one transition of the model, and the paper's
yield-inference rule (finite-timeout waits and explicit yields are yielding
transitions) is implemented directly on the operations.

The runtime verbs (:func:`spawn`, :func:`join`, :func:`yield_now`,
:func:`sleep`, :func:`choose`, :func:`check`, :func:`pause`) are re-exported
here so workloads can import a single module.
"""

from repro.runtime.api import check, choose, join, pause, sleep, spawn, yield_now
from repro.sync.atomics import AtomicCell, SharedVar
from repro.sync.barrier import Barrier
from repro.sync.channel import Channel
from repro.sync.condvar import CondVar
from repro.sync.event import Event
from repro.sync.mutex import Mutex
from repro.sync.rwlock import RWLock
from repro.sync.semaphore import Semaphore

__all__ = [
    "AtomicCell",
    "Barrier",
    "Channel",
    "CondVar",
    "Event",
    "Mutex",
    "RWLock",
    "Semaphore",
    "SharedVar",
    "check",
    "choose",
    "join",
    "pause",
    "sleep",
    "spawn",
    "yield_now",
]
