"""Counting semaphores."""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.runtime.errors import SyncUsageError
from repro.runtime.ops import Operation


class _SemWaitOp(Operation):
    resource_attr = "sem"
    __slots__ = ("sem", "timeout")

    def __init__(self, sem: "Semaphore", timeout: Optional[float]) -> None:
        self.sem = sem
        self.timeout = timeout

    def enabled(self, vm, task) -> bool:
        return self.sem._count > 0 or self.timeout is not None

    def is_yielding(self, vm, task) -> bool:
        return self.timeout is not None and self.sem._count == 0

    def execute(self, vm, task) -> bool:
        if self.sem._count > 0:
            self.sem._count -= 1
            return True
        return False

    def describe(self) -> str:
        suffix = "" if self.timeout is None else f", timeout={self.timeout:g}"
        return f"sem_wait({self.sem.name}{suffix})"


class _SemReleaseOp(Operation):
    resource_attr = "sem"
    __slots__ = ("sem", "n")

    def __init__(self, sem: "Semaphore", n: int) -> None:
        self.sem = sem
        self.n = n

    def execute(self, vm, task) -> None:
        new_count = self.sem._count + self.n
        if self.sem._max is not None and new_count > self.sem._max:
            raise SyncUsageError(
                f"{task.name} released {self.sem.name} above its maximum "
                f"({new_count} > {self.sem._max})"
            )
        self.sem._count = new_count

    def describe(self) -> str:
        return f"sem_release({self.sem.name}, {self.n})"


class Semaphore:
    """A counting semaphore with optional maximum count.

    ``wait(timeout=...)`` is a yielding operation whenever it would time
    out (count is zero), per the paper's yield inference.
    """

    _counter = 0

    def __init__(self, initial: int = 0, maximum: Optional[int] = None,
                 name: Optional[str] = None) -> None:
        if initial < 0:
            raise ValueError("initial count must be non-negative")
        if maximum is not None and initial > maximum:
            raise ValueError("initial count exceeds maximum")
        if name is None:
            Semaphore._counter += 1
            name = f"sem{Semaphore._counter}"
        self.name = name
        self._count = initial
        self._max = maximum

    def wait(self, timeout: Optional[float] = None) -> Generator[Operation, Any, bool]:
        """Decrement the count, blocking while it is zero.

        Returns ``True`` on success, ``False`` if the finite timeout fired.
        """
        ok = yield _SemWaitOp(self, timeout)
        return ok

    acquire = wait

    def release(self, n: int = 1) -> Generator[Operation, Any, None]:
        """Increment the count by ``n`` (checked against the maximum)."""
        if n < 1:
            raise ValueError("release count must be positive")
        yield _SemReleaseOp(self, n)

    # ------------------------------------------------------------------
    def count(self) -> int:
        """Current count (non-scheduling; for assertions/state extraction)."""
        return self._count

    def state_signature(self) -> Any:
        return ("sem", self.name, self._count)

    def __repr__(self) -> str:
        return f"<Semaphore {self.name} count={self._count}>"
