"""Dining philosophers workload tests (Figure 1 + Table 2 variant)."""

from repro.checker import Checker, check
from repro.engine.coverage import CoverageTracker
from repro.engine.executor import ExecutorConfig
from repro.engine.results import DivergenceKind, Outcome
from repro.engine.strategies import ExplorationLimits, explore_dfs
from repro.core.policies import fair_policy
from repro.statespace.stateful import stateful_state_count
from repro.workloads.dining import (
    dining_philosophers,
    dining_philosophers_livelock,
)

import pytest


class TestLivelockVariant:
    def test_livelock_found(self):
        """Figure 1's livelock: Acquire, Acquire, TryAcquire, TryAcquire,
        Release, Release repeated forever — a fair cycle."""
        result = check(dining_philosophers_livelock(2), depth_bound=300)
        assert not result.ok
        record = result.livelock
        assert record is not None
        assert record.divergence.kind is DivergenceKind.LIVELOCK
        assert set(record.divergence.culprits) == {"Phil1", "Phil2"}

    def test_livelock_trace_shows_the_cycle(self):
        checker = Checker(dining_philosophers_livelock(2), depth_bound=300)
        result = checker.run()
        operations = [s.operation for s in result.livelock.trace[-40:]]
        assert any("try_acquire" in op for op in operations)
        assert any("release" in op for op in operations)

    def test_three_philosophers_also_livelock(self):
        result = check(dining_philosophers_livelock(3), depth_bound=300)
        assert result.livelock is not None

    def test_no_deadlock_reported(self):
        # The retry protocol never deadlocks — the only defect is the
        # livelock.
        result = check(dining_philosophers_livelock(2), depth_bound=300)
        assert result.violation is None


class TestHarnessedVariant:
    def test_fair_search_exhausts_and_passes(self):
        result = check(dining_philosophers(2), depth_bound=300)
        assert result.ok
        assert result.exploration.complete

    def test_full_state_coverage(self):
        """Table 2: fairness achieves 100% state coverage."""
        truth = stateful_state_count(dining_philosophers(2), depth_bound=300)
        coverage = CoverageTracker()
        explore_dfs(
            dining_philosophers(2), fair_policy(),
            ExecutorConfig(depth_bound=300),
            ExplorationLimits(stop_on_first_violation=False,
                              stop_on_first_divergence=False),
            coverage=coverage,
        )
        assert truth.states <= coverage.signatures()

    def test_unfair_depth_bounded_search_misses_or_wastes(self):
        """Without fairness the cyclic retry loops force a choice between
        missing states (small bound) and wasted unrolling (large bound)."""
        result = check(dining_philosophers(2), fairness=False,
                       depth_bound=25,
                       max_executions=4000)
        assert result.exploration.nonterminating_executions > 0

    def test_invalid_philosopher_count(self):
        with pytest.raises(ValueError):
            dining_philosophers(1)
