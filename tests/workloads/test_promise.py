"""Promise workload tests (Figure 8)."""

from repro.checker import check
from repro.engine.results import DivergenceKind
from repro.runtime.vm import VirtualMachine
from repro.workloads.promise import Promise, promise_program


class TestPromiseUnit:
    def run_sequential(self, *bodies):
        vm = VirtualMachine()
        tasks = [vm.spawn_task(b, name=f"t{i}") for i, b in enumerate(bodies)]
        while vm.enabled_threads():
            vm.step(min(vm.enabled_threads()))
        return tasks

    def test_complete_then_get(self):
        promise = Promise()
        results = []

        def body():
            yield from promise.complete(41)
            results.append((yield from promise.get()))

        self.run_sequential(body)
        assert results == [41]
        assert promise.is_done()

    def test_double_complete_is_violation(self):
        from repro.runtime.errors import AssertionViolation

        promise = Promise()

        def body():
            yield from promise.complete(1)
            yield from promise.complete(2)

        vm = VirtualMachine()
        task = vm.spawn_task(body, name="t")
        import pytest

        with pytest.raises(AssertionViolation):
            while vm.enabled_threads():
                vm.step(task.tid)

    def test_stale_spin_fast_path_works_when_done(self):
        promise = Promise()
        results = []

        def body():
            yield from promise.complete("v")
            results.append((yield from promise.get_stale_spin()))

        self.run_sequential(body)
        assert results == ["v"]


class TestCheckedProgram:
    def test_correct_version_passes(self):
        result = check(promise_program(1), depth_bound=200,
                       max_executions=3000)
        assert result.ok

    def test_stale_read_livelock_found(self):
        """The Figure 8 bug: the consumer spins on a stale local copy.
        Because the spin yields (Sleep), the divergence is *fair* — a
        livelock, not a good-samaritan violation."""
        result = check(promise_program(2, stale_read_bug=True),
                       depth_bound=200)
        assert not result.ok
        record = result.livelock
        assert record is not None
        assert record.divergence.kind is DivergenceKind.LIVELOCK
        assert "consumer" in record.divergence.culprits

    def test_livelock_reachable_without_preemptions(self):
        """The buggy spin yields, and switches at yields are voluntary, so
        even a zero-preemption fair search reaches the livelock — the bug
        needs an uncommon *ordering*, not a preemption."""
        result = check(promise_program(1, stale_read_bug=True),
                       depth_bound=200, preemption_bound=0)
        assert result.livelock is not None
