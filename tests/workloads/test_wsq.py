"""Work-stealing queue workload tests."""

from repro.checker import check
from repro.engine.results import Outcome
from repro.workloads.wsq import WorkStealingQueue, work_stealing_queue


class TestCorrectProtocol:
    def test_exhaustive_cb1_no_violation(self):
        result = check(work_stealing_queue(items=1, stealers=1),
                       depth_bound=300, preemption_bound=1)
        assert result.ok
        assert result.exploration.complete

    def test_bounded_cb2_no_violation(self):
        result = check(work_stealing_queue(items=1, stealers=1),
                       depth_bound=300, preemption_bound=2,
                       max_executions=4000)
        assert result.ok

    def test_sequential_schedule_consumes_everything(self):
        # Single random execution sanity check.
        result = check(work_stealing_queue(items=3, stealers=1),
                       strategy="random", random_executions=5,
                       depth_bound=2000)
        assert result.ok


class TestSeededBugs:
    def test_bug1_missing_publication_order(self):
        result = check(work_stealing_queue(items=1, stealers=1, bug=1),
                       depth_bound=300, preemption_bound=2, max_seconds=60)
        assert result.violation is not None
        assert "consumed twice" in str(result.violation.violation)

    def test_bug2_steal_from_empty(self):
        result = check(work_stealing_queue(items=1, stealers=1, bug=2),
                       depth_bound=300, preemption_bound=2, max_seconds=60)
        assert result.violation is not None

    def test_bug3_unrestored_tail(self):
        result = check(
            work_stealing_queue(items=2, stealers=1, bug=3,
                                interleaved=True),
            strategy="random", random_executions=500, depth_bound=500,
        )
        assert result.violation is not None

    def test_bug1_needs_a_racy_interleaving(self):
        """Bug 1 (the reordered tail publication) only fires when a steal
        is interleaved inside the owner's pop: the zero-preemption search
        passes, which is why stress testing misses it."""
        result = check(work_stealing_queue(items=1, stealers=1, bug=1),
                       depth_bound=300, preemption_bound=0)
        assert result.ok, "bug 1 fired without preemptions"


class TestQueueUnit:
    def run_sequential(self, body):
        from repro.runtime.vm import VirtualMachine

        vm = VirtualMachine()
        task = vm.spawn_task(body, name="t")
        while vm.enabled_threads():
            vm.step(task.tid)
        assert not task.failed, task.exception
        return task

    def test_push_pop_lifo_for_owner(self):
        queue = WorkStealingQueue()
        popped = []

        def body():
            yield from queue.push("a")
            yield from queue.push("b")
            popped.append((yield from queue.pop()))
            popped.append((yield from queue.pop()))
            popped.append((yield from queue.pop()))

        self.run_sequential(body)
        assert popped == [(True, "b"), (True, "a"), (False, None)]

    def test_steal_fifo_from_head(self):
        queue = WorkStealingQueue()
        stolen = []

        def body():
            yield from queue.push("a")
            yield from queue.push("b")
            stolen.append((yield from queue.steal()))
            stolen.append((yield from queue.steal()))
            stolen.append((yield from queue.steal()))

        self.run_sequential(body)
        assert stolen == [(True, "a"), (True, "b"), (False, None)]

    def test_overflow_is_violation(self):
        from repro.runtime.errors import AssertionViolation
        from repro.runtime.vm import VirtualMachine

        queue = WorkStealingQueue(capacity=2)

        def body():
            for i in range(3):
                yield from queue.push(i)

        vm = VirtualMachine()
        task = vm.spawn_task(body, name="t")
        import pytest

        with pytest.raises(AssertionViolation):
            while vm.enabled_threads():
                vm.step(task.tid)
