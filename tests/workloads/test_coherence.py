"""MSI cache-coherence workload tests."""

import pytest

from repro.checker import check
from repro.engine.results import DivergenceKind
from repro.workloads.coherence import CoherentSystem, coherence_program

WRITERS_ONLY = [[("w", 10)], [("w", 20)]]


class TestProtocolUnit:
    def run_alone(self, system, body):
        from repro.runtime.vm import VirtualMachine

        vm = VirtualMachine()
        task = vm.spawn_task(body, name="t")
        while vm.enabled_threads():
            vm.step(task.tid)
        assert not task.failed, task.exception

    def test_read_miss_loads_shared(self):
        system = CoherentSystem(2)
        values = []

        def body():
            values.append((yield from system.read(0)))

        self.run_alone(system, body)
        assert values == [0]
        assert system.lines[0].state == "S"

    def test_write_invalidates_peers(self):
        system = CoherentSystem(2)

        def body():
            yield from system.read(1)  # cache1 shared
            yield from system.write(0, 7)

        self.run_alone(system, body)
        assert system.lines[0].state == "M"
        assert system.lines[0].value == 7
        assert system.lines[1].state == "I"

    def test_read_after_peer_write_gets_writeback(self):
        system = CoherentSystem(2)
        values = []

        def body():
            yield from system.write(0, 42)
            values.append((yield from system.read(1)))

        self.run_alone(system, body)
        assert values == [42]
        assert system.lines[0].state == "S"  # downgraded by the snoop
        assert system.memory.peek() == 42

    def test_unknown_bug_rejected(self):
        with pytest.raises(ValueError):
            CoherentSystem(2, bug="meltdown")


class TestCheckedProtocol:
    def test_default_harness_passes(self):
        result = check(coherence_program(), depth_bound=300,
                       preemption_bound=2, max_executions=10_000)
        assert result.ok

    def test_writers_only_passes(self):
        result = check(coherence_program(WRITERS_ONLY), depth_bound=300,
                       max_executions=10_000)
        assert result.ok

    def test_invariants_hold_under_random_search(self):
        result = check(
            coherence_program([[("r", None), ("w", 1)], [("w", 2)],
                               [("r", None), ("r", None)]]),
            strategy="random", random_executions=300, depth_bound=2000,
        )
        assert result.ok


class TestUpgradeLivelock:
    def test_polite_writers_livelock(self):
        """Two writers that defer to each other's write intent spin
        forever — a protocol livelock, fair by construction."""
        result = check(coherence_program(WRITERS_ONLY,
                                         bug="upgrade-livelock"),
                       depth_bound=300, max_seconds=60)
        assert not result.ok
        record = result.livelock
        assert record is not None
        assert record.divergence.kind is DivergenceKind.LIVELOCK
        assert set(record.divergence.culprits) == {"cache0", "cache1"}

    def test_single_writer_cannot_livelock(self):
        result = check(coherence_program([[("w", 10)]],
                                         bug="upgrade-livelock"),
                       depth_bound=300, max_executions=5000)
        assert result.ok
