"""Worker pool workload tests (Figure 7)."""

from repro.checker import check
from repro.engine.results import DivergenceKind
from repro.workloads.workerpool import worker_pool


class TestBuggyPool:
    def test_gs_violation_found(self):
        result = check(worker_pool(tasks=1, workers=1), depth_bound=250)
        assert not result.ok
        record = result.gs_violation
        assert record is not None
        assert record.divergence.kind is \
            DivergenceKind.GOOD_SAMARITAN_VIOLATION
        assert "worker0" in record.divergence.culprits

    def test_spin_happens_in_the_shutdown_window(self):
        """The violation needs group.stop set while worker.stop is not:
        the divergent trace must show the controller mid-shutdown."""
        result = check(worker_pool(tasks=1, workers=1), depth_bound=250)
        trace_ops = [s.operation for s in result.gs_violation.trace]
        assert any("group.stop" in op and "store" in op for op in trace_ops)

    def test_two_workers_also_flagged(self):
        result = check(worker_pool(tasks=1, workers=2), depth_bound=250,
                       max_seconds=30)
        assert result.gs_violation is not None


class TestFixedPool:
    def test_fixed_pool_passes(self):
        result = check(worker_pool(tasks=1, workers=1, fixed=True),
                       depth_bound=250, max_executions=5000)
        assert result.ok

    def test_tasks_complete(self):
        result = check(worker_pool(tasks=2, workers=1, fixed=True),
                       strategy="random", random_executions=10,
                       depth_bound=2000)
        assert result.ok
