"""Dryad-channel workload tests (Table 3 bug reproductions)."""

from repro.checker import check
from repro.workloads.dryad_channels import (
    FifoChannel,
    dryad_fifo,
    dryad_pipeline,
)


class TestCorrectPipeline:
    def test_cb1_exhaustive_or_capped_pass(self):
        result = check(dryad_pipeline(items=1, capacity=1, transforms=0),
                       depth_bound=300, preemption_bound=1,
                       max_executions=5000)
        assert result.ok

    def test_random_runs_pass(self):
        result = check(dryad_pipeline(items=3, capacity=1, transforms=1),
                       strategy="random", random_executions=15,
                       depth_bound=3000)
        assert result.ok

    def test_fifo_lanes_pass(self):
        result = check(dryad_fifo(width=2, items=1), strategy="random",
                       random_executions=10, depth_bound=3000)
        assert result.ok


class TestSeededBugs:
    def test_bug1_check_then_act_pop(self):
        result = check(
            dryad_pipeline(items=1, capacity=1, transforms=0, sinks=2,
                           bug=1),
            depth_bound=300, preemption_bound=2, max_seconds=60,
        )
        assert result.violation is not None

    def test_bug2_capacity_race(self):
        result = check(
            dryad_pipeline(items=2, capacity=1, transforms=0, sources=2,
                           bug=2),
            strategy="random", random_executions=2000, depth_bound=400,
            seed=11,
        )
        assert result.violation is not None
        assert "capacity" in str(result.violation.violation)

    def test_bug3_lost_items_at_shutdown(self):
        result = check(dryad_pipeline(items=2, capacity=2, transforms=0,
                                      bug=3),
                       depth_bound=300, preemption_bound=2, max_seconds=30)
        assert result.violation is not None

    def test_bug4_fix_deadlocks(self):
        result = check(
            dryad_pipeline(items=1, capacity=1, transforms=0, sinks=2,
                           bug=4),
            depth_bound=300, preemption_bound=2, max_seconds=30,
        )
        record = result.violation
        assert record is not None
        # Bug 4 manifests as a deadlock (lock held at return).
        assert record.violation is None

    def test_parallel_endpoints_rejected_with_transforms(self):
        import pytest

        with pytest.raises(ValueError):
            dryad_pipeline(transforms=1, sources=2)


class TestChannelUnit:
    def run_sequential(self, body):
        from repro.runtime.vm import VirtualMachine

        vm = VirtualMachine()
        task = vm.spawn_task(body, name="t")
        while vm.enabled_threads():
            vm.step(task.tid)
        assert not task.failed, task.exception

    def test_send_recv_close_cycle(self):
        channel = FifoChannel(capacity=2)
        log = []

        def body():
            yield from channel.send("x")
            yield from channel.send("y")
            yield from channel.close()
            log.append((yield from channel.recv()))
            log.append((yield from channel.recv()))
            log.append((yield from channel.recv()))

        self.run_sequential(body)
        assert log == [(True, "x"), (True, "y"), (False, None)]

    def test_send_on_closed_is_violation(self):
        import pytest

        from repro.runtime.errors import AssertionViolation
        from repro.runtime.vm import VirtualMachine

        channel = FifoChannel()

        def body():
            yield from channel.close()
            yield from channel.send(1)

        vm = VirtualMachine()
        task = vm.spawn_task(body, name="t")
        with pytest.raises(AssertionViolation):
            while vm.enabled_threads():
                vm.step(task.tid)
