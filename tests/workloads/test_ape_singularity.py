"""APE and mini-Singularity workload tests."""

from repro.checker import check
from repro.workloads.ape import ape_program
from repro.workloads.singularity import singularity_boot


class TestApe:
    def test_exhaustive_small_config(self):
        result = check(ape_program(items=1, workers=1), depth_bound=300,
                       preemption_bound=2)
        assert result.ok
        assert result.exploration.complete

    def test_two_workers_capped(self):
        result = check(ape_program(items=2, workers=2), depth_bound=400,
                       preemption_bound=1, max_executions=4000)
        assert result.ok

    def test_random_runs(self):
        result = check(ape_program(items=3, workers=2), strategy="random",
                       random_executions=15, depth_bound=3000)
        assert result.ok

    def test_nonterminating_without_fairness(self):
        """The worker idle loops make APE nonterminating: unfair
        depth-bounded search hits the bound."""
        result = check(ape_program(items=1, workers=1), fairness=False,
                       depth_bound=40, max_executions=3000)
        assert result.exploration.nonterminating_executions > 0


class TestSingularity:
    def test_boot_under_the_checker(self):
        """The headline result in miniature: systematic testing of the
        entire boot + shutdown under fair scheduling."""
        result = check(singularity_boot(apps=1), depth_bound=600,
                       preemption_bound=1, max_executions=4000)
        assert result.ok

    def test_boot_random_schedules(self):
        result = check(singularity_boot(apps=2, requests_per_app=2),
                       strategy="random", random_executions=15,
                       depth_bound=5000)
        assert result.ok

    def test_boot_is_nonterminating_without_fairness(self):
        result = check(singularity_boot(apps=1), fairness=False,
                       depth_bound=60, max_executions=2000)
        assert result.exploration.nonterminating_executions > 0

    def test_thread_count_scales_with_apps(self):
        from repro.engine.executor import ExecutorConfig, GuidedChooser, run_execution
        from repro.core.policies import FairPolicy

        program = singularity_boot(apps=3)
        instance = program.instantiate()
        # 3 services + 3 apps + idle + boot controller = 8 threads.
        assert len(instance.thread_ids()) == 8
