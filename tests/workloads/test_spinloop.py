"""Figure 3 spin-loop workload tests."""

from repro.checker import Checker, check
from repro.engine.results import DivergenceKind, Outcome


from repro.workloads.spinloop import (
    spinloop,
    spinloop_no_yield,
    spinloop_with_event,
)


class TestFairChecking:
    def test_fair_search_terminates_and_passes(self):
        result = check(spinloop(), depth_bound=200)
        assert result.ok
        assert result.exploration.complete
        # The fair tree of this tiny program is small.
        assert result.exploration.executions < 100
        assert result.exploration.outcomes[Outcome.TERMINATED] == \
            result.exploration.executions

    def test_unfair_search_wastes_work(self):
        """Figure 2's phenomenon: without fairness the search keeps
        unrolling the spin cycle up to the depth bound."""
        result = check(spinloop(), fairness=False, depth_bound=25)
        assert result.ok
        assert result.exploration.nonterminating_executions > 0
        fair = check(spinloop(), depth_bound=200)
        assert fair.exploration.executions < result.exploration.executions


class TestGoodSamaritan:
    def test_no_yield_variant_flagged(self):
        result = check(spinloop_no_yield(), depth_bound=150)
        assert not result.ok
        record = result.gs_violation
        assert record is not None
        assert record.divergence.kind is \
            DivergenceKind.GOOD_SAMARITAN_VIOLATION
        assert "u" in record.divergence.culprits

    def test_divergent_schedule_is_replayable(self):
        checker = Checker(spinloop_no_yield(), depth_bound=150)
        result = checker.run()
        replayed = checker.replay(result.gs_violation)
        assert replayed.outcome is Outcome.DIVERGENCE


class TestManualModification:
    def test_event_version_terminates_even_without_fairness(self):
        """The Section 4.1 rewrite: after manual modification the program
        is terminating under every schedule."""
        result = check(spinloop_with_event(), fairness=False,
                       depth_bound=200)
        assert result.ok
        assert result.exploration.complete
        assert result.exploration.nonterminating_executions == 0

    def test_event_version_passes_fair_check_too(self):
        result = check(spinloop_with_event(), depth_bound=200)
        assert result.ok
