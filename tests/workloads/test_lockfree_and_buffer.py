"""Treiber stack (ABA) and bounded buffer (condvar bugs) tests."""

import pytest

from repro.checker import check
from repro.runtime.vm import VirtualMachine
from repro.workloads.boundedbuffer import BoundedBuffer, bounded_buffer_program
from repro.workloads.lockfree import TreiberStack, treiber_stack_program


def run_alone(body):
    vm = VirtualMachine()
    task = vm.spawn_task(body, name="t")
    while vm.enabled_threads():
        vm.step(task.tid)
    assert not task.failed, task.exception
    return task


class TestTreiberUnit:
    def test_lifo_order(self):
        stack = TreiberStack()
        popped = []

        def body():
            yield from stack.push("a")
            yield from stack.push("b")
            popped.append((yield from stack.pop()))
            popped.append((yield from stack.pop()))
            popped.append((yield from stack.pop()))

        run_alone(body)
        assert popped == [(True, "b"), (True, "a"), (False, None)]

    def test_free_list_recycles_nodes(self):
        stack = TreiberStack(reuse_nodes=True)
        nodes = []

        def body():
            yield from stack.push("a")
            nodes.append(stack.head.peek())
            yield from stack.pop()
            yield from stack.push("b")
            nodes.append(stack.head.peek())

        run_alone(body)
        assert nodes[0] is nodes[1]  # same object, different value

    def test_snapshot(self):
        stack = TreiberStack()

        def body():
            yield from stack.push(1)
            yield from stack.push(2)

        run_alone(body)
        assert stack.snapshot() == (2, 1)


class TestTreiberChecked:
    def test_fresh_nodes_pass(self):
        result = check(treiber_stack_program(items=1, poppers=2),
                       depth_bound=300, preemption_bound=1,
                       max_executions=8000)
        assert result.ok

    def test_aba_found_with_reuse(self):
        """The ABA corruption loses a node; the poppers then spin
        (politely, with yields) waiting for values that will never come —
        the checker reports it as a livelock, a *liveness* consequence of
        a memory-reuse race that no safety check ever fires on."""
        result = check(
            treiber_stack_program(items=3, poppers=2, reuse_nodes=True),
            strategy="random", random_executions=5000, depth_bound=600,
            seed=3,
        )
        assert not result.ok
        assert result.violation is not None or result.livelock is not None

    def test_fresh_nodes_survive_the_same_schedules(self):
        result = check(
            treiber_stack_program(items=3, poppers=2, reuse_nodes=False),
            strategy="random", random_executions=1000, depth_bound=600,
            seed=3,
        )
        assert result.ok


class TestBoundedBufferUnit:
    def test_put_take_roundtrip(self):
        buffer = BoundedBuffer(capacity=2)
        out = []

        def body():
            yield from buffer.put("x")
            yield from buffer.put("y")
            out.append((yield from buffer.take()))
            out.append((yield from buffer.take()))

        run_alone(body)
        assert out == ["x", "y"]

    def test_unknown_bug_rejected(self):
        with pytest.raises(ValueError):
            BoundedBuffer(bug="nonsense")


class TestBoundedBufferChecked:
    def test_correct_version_passes(self):
        result = check(
            bounded_buffer_program(items=2, consumers=2, capacity=1),
            depth_bound=400, preemption_bound=2, max_executions=8000,
        )
        assert result.ok

    def test_if_instead_of_while_found(self):
        result = check(
            bounded_buffer_program(items=2, consumers=2, capacity=2,
                                   bug="if", notify_all=True),
            depth_bound=400, preemption_bound=2, max_seconds=60,
        )
        assert result.violation is not None

    def test_missed_notify_deadlocks(self):
        result = check(
            bounded_buffer_program(items=2, consumers=2, capacity=2,
                                   bug="missed-notify"),
            depth_bound=400, preemption_bound=2, max_seconds=60,
        )
        record = result.violation
        assert record is not None
