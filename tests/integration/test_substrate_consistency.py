"""Cross-substrate consistency: the VM and the native-thread runtime
explore the *same* execution tree for the same logical program.

Both substrates expose identical scheduling points (one per instrumented
operation plus the implicit start transition), so systematic search must
produce identical execution counts and outcome distributions — a strong
end-to-end check that the native handshake neither loses nor invents
schedules.
"""

from repro.core.policies import fair_policy
from repro.engine.executor import ExecutorConfig
from repro.engine.strategies import ExplorationLimits, explore_dfs
from repro.runtime import native
from repro.runtime.api import yield_now
from repro.runtime.program import VMProgram
from repro.sync.atomics import SharedVar
from repro.sync.mutex import Mutex

LIMITS = ExplorationLimits(stop_on_first_violation=False,
                           stop_on_first_divergence=False)


def vm_spin():
    def setup(env):
        x = SharedVar(0, name="x")

        def t():
            yield from x.set(1)

        def u():
            while (yield from x.get()) != 1:
                yield from yield_now()

        env.spawn(t, name="t")
        env.spawn(u, name="u")

    return VMProgram(setup, name="spin")


def native_spin():
    def setup(env):
        x = native.NativeSharedVar(0, name="x")

        def t():
            x.set(1)

        def u():
            while x.get() != 1:
                native.yield_now()

        env.spawn(t, name="t")
        env.spawn(u, name="u")

    return native.NativeProgram(setup, name="spin")


def vm_locks():
    def setup(env):
        lock = Mutex(name="L")

        def worker():
            yield from lock.acquire()
            yield from lock.release()

        env.spawn(worker, name="a")
        env.spawn(worker, name="b")

    return VMProgram(setup, name="locks")


def native_locks():
    def setup(env):
        lock = native.NativeMutex(name="L")

        def worker():
            lock.acquire()
            lock.release()

        env.spawn(worker, name="a")
        env.spawn(worker, name="b")

    return native.NativeProgram(setup, name="locks")


class TestTreeEquivalence:
    def explore(self, program):
        return explore_dfs(program, fair_policy(),
                           ExecutorConfig(depth_bound=200), LIMITS)

    def test_spin_trees_identical(self):
        vm = self.explore(vm_spin())
        nat = self.explore(native_spin())
        assert vm.complete and nat.complete
        assert vm.executions == nat.executions
        assert dict(vm.outcomes) == dict(nat.outcomes)

    def test_lock_trees_identical(self):
        vm = self.explore(vm_locks())
        nat = self.explore(native_locks())
        assert vm.complete and nat.complete
        assert vm.executions == nat.executions
        assert dict(vm.outcomes) == dict(nat.outcomes)

    def test_same_traces_on_shared_schedule(self):
        import random

        from repro.core.policies import FairPolicy
        from repro.engine.executor import (
            GuidedChooser,
            RandomChooser,
            run_execution,
        )

        config = ExecutorConfig(depth_bound=100)
        # Record a random schedule on the VM, replay it on real threads.
        vm_rec = run_execution(vm_spin(), FairPolicy(),
                               RandomChooser(random.Random(5)), config)
        nat_rec = run_execution(native_spin(), FairPolicy(),
                                GuidedChooser(vm_rec.schedule), config)
        assert [s.operation for s in vm_rec.trace] == \
            [s.operation for s in nat_rec.trace]
        assert vm_rec.outcome == nat_rec.outcome
