"""Divergence confirmation: the paper's "increase the bound and rerun".

A divergence warning produced at a too-small depth bound may be a false
alarm; `Checker.confirm_divergence` replays the schedule at a much larger
bound.  Genuine livelocks stay divergent; spurious ones terminate.
"""

import pytest

from repro.checker import Checker
from repro.engine.results import DivergenceKind, Outcome
from repro.workloads.dining import dining_philosophers_livelock
from repro.workloads.spinloop import spinloop


class TestSpuriousDivergence:
    def test_small_bound_warning_dissolves_at_larger_bound(self):
        # At depth 25 the first divergent-looking execution of the spin
        # loop is just a long prefix of a terminating run.
        checker = Checker(spinloop(), fairness=False, depth_bound=25,
                          nonfair_completion="divergence",
                          stop_on_first_divergence=True)
        result = checker.run()
        record = result.divergence
        if record is None:
            pytest.skip("no divergence found at this bound")
        confirmed = checker.confirm_divergence(record)
        assert confirmed.outcome is Outcome.TERMINATED


class TestGenuineLivelock:
    def test_livelock_survives_confirmation(self):
        checker = Checker(dining_philosophers_livelock(2), depth_bound=150)
        result = checker.run()
        record = result.livelock
        assert record is not None
        confirmed = checker.confirm_divergence(record, factor=8)
        assert confirmed.outcome is Outcome.DIVERGENCE
        assert confirmed.divergence.kind is DivergenceKind.LIVELOCK
        # The confirmation ran 8x deeper.
        assert confirmed.steps >= 8 * record.steps

    def test_requires_depth_bound(self):
        checker = Checker(spinloop(), depth_bound=None)
        result = checker.run()
        fake = result.exploration  # no divergence anyway
        with pytest.raises(ValueError):
            checker.confirm_divergence(
                result.divergence or _dummy_record(), factor=2,
            )


def _dummy_record():
    from repro.engine.results import ExecutionResult, Outcome

    return ExecutionResult(outcome=Outcome.DIVERGENCE, decisions=[],
                           steps=0)
