"""End-to-end Checker facade tests across workloads and configurations."""

import pytest

from repro import Checker, CheckResult, check
from repro.checker import _merge_sweeps
from repro.engine.results import DivergenceKind, ExplorationResult
from repro.workloads.dining import (
    dining_philosophers,
    dining_philosophers_livelock,
)
from repro.workloads.spinloop import spinloop, spinloop_no_yield
from repro.workloads.wsq import work_stealing_queue


class TestVerdicts:
    def test_clean_program_passes(self):
        result = check(spinloop())
        assert result.ok
        assert result.violation is None
        assert result.livelock is None
        assert result.gs_violation is None

    def test_livelock_fails(self):
        result = check(dining_philosophers_livelock(2), depth_bound=300)
        assert not result.ok
        assert result.livelock is not None
        assert result.violation is None

    def test_gs_violation_fails(self):
        result = check(spinloop_no_yield(), depth_bound=200)
        assert not result.ok
        assert result.gs_violation is not None

    def test_safety_violation_fails(self):
        result = check(work_stealing_queue(items=1, stealers=1, bug=2),
                       preemption_bound=2, depth_bound=300)
        assert not result.ok
        assert result.violation is not None

    def test_unfair_divergence_is_warning_not_failure(self):
        # Without fairness, hitting the bound on a correct program by
        # starving a thread is noise: reported as a warning, ok stays
        # True.  (Spawn the spinner first so the unfair DFS's first
        # branch runs it forever.)
        from repro.runtime.program import VMProgram
        from repro.runtime.api import yield_now
        from repro.sync.atomics import SharedVar

        def setup(env):
            x = SharedVar(0, name="x")

            def spinner():
                while (yield from x.get()) != 1:
                    yield from yield_now()

            def writer():
                yield from x.set(1)

            env.spawn(spinner, name="u")
            env.spawn(writer, name="t")

        program = VMProgram(setup, name="spin-first")
        result = Checker(program, fairness=False, depth_bound=60,
                         nonfair_completion="divergence",
                         stop_on_first_divergence=True).run()
        assert result.ok
        assert result.warnings
        assert result.divergence.divergence.kind is DivergenceKind.UNFAIR


class TestReport:
    def test_report_contains_verdict_and_schedule(self):
        result = check(work_stealing_queue(items=1, stealers=1, bug=2),
                       preemption_bound=2, depth_bound=300)
        text = result.report()
        assert "FAIL" in text
        assert "replay schedule" in text
        assert "counterexample" in text

    def test_passing_report(self):
        text = check(spinloop()).report()
        assert "PASS" in text


class TestStrategies:
    def test_bfs_strategy(self):
        result = check(spinloop(), strategy="bfs", depth_bound=100,
                       max_executions=2000)
        assert result.ok

    def test_random_strategy(self):
        result = check(spinloop(), strategy="random", random_executions=25)
        assert result.ok
        assert result.exploration.executions == 25

    def test_icb_strategy_sweeps_bounds(self):
        result = check(work_stealing_queue(items=1, stealers=1, bug=1),
                       strategy="icb", preemption_bound=2, depth_bound=300)
        assert not result.ok
        assert result.exploration.strategy_name.startswith("icb")
        # ICB finds the one-preemption bug far faster than flat cb=2.
        flat = check(work_stealing_queue(items=1, stealers=1, bug=1),
                     preemption_bound=2, depth_bound=300)
        assert result.exploration.executions < flat.exploration.executions

    def test_icb_passes_clean_program(self):
        from repro.workloads.dining import dining_philosophers

        result = check(dining_philosophers(2), strategy="icb",
                       preemption_bound=2, depth_bound=300)
        assert result.ok
        assert result.exploration.complete

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            Checker(spinloop(), strategy="magic").run()

    def test_custom_policy_factory(self):
        from repro.core.policies import round_robin_policy

        result = Checker(spinloop(), policy_factory=round_robin_policy(),
                         depth_bound=200).run()
        # Round-robin is fair: the spin loop terminates.
        assert result.ok
        assert result.exploration.executions == 1  # deterministic!


class TestMergeSweeps:
    """Regression: the merged first-violation index must be offset by the
    executions of *earlier* sweeps only, not the running total."""

    @staticmethod
    def _sweep(executions, first_violation=None):
        from repro.engine.results import ExecutionResult, Outcome

        result = ExplorationResult(program_name="p", policy_name="fair",
                                   strategy_name="dfs(cb=0)",
                                   executions=executions,
                                   complete=True)
        if first_violation is not None:
            result.first_violation_execution = first_violation
            result.violations.append(
                ExecutionResult(outcome=Outcome.VIOLATION, decisions=[],
                                steps=1))
        return result

    def test_violation_index_offset_by_earlier_sweeps(self):
        merged = _merge_sweeps("p", "fair", [
            self._sweep(10),
            self._sweep(7, first_violation=3),
        ])
        # 10 executions in sweep 0, then 3 more into sweep 1.
        assert merged.first_violation_execution == 13
        assert merged.executions == 17
        assert merged.found_violation

    def test_first_sweep_with_violation_wins(self):
        merged = _merge_sweeps("p", "fair", [
            self._sweep(5, first_violation=2),
            self._sweep(9, first_violation=0),
        ])
        assert merged.first_violation_execution == 2
        assert len(merged.violations) == 2

    def test_no_violation_leaves_none(self):
        merged = _merge_sweeps("p", "fair", [self._sweep(4), self._sweep(6)])
        assert merged.first_violation_execution is None
        assert merged.executions == 10
        assert merged.complete

    def test_checker_icb_reports_global_index(self):
        result = check(work_stealing_queue(items=1, stealers=1, bug=1),
                       strategy="icb", preemption_bound=2, depth_bound=300)
        assert not result.ok
        first = result.exploration.first_violation_execution
        assert first is not None
        # A global (1-based) count: at most the executions actually run.
        # Before the fix this overcounted by the executions of the final
        # sweep, exceeding the total.
        assert 0 < first <= result.exploration.executions


class TestLimits:
    def test_time_limit_sets_warning(self):
        result = check(dining_philosophers(3), depth_bound=400,
                       max_seconds=0.05)
        assert any("resource limit" in w for w in result.warnings)

    def test_execution_limit(self):
        result = check(dining_philosophers(3), depth_bound=400,
                       max_executions=7)
        assert result.exploration.executions == 7


class TestKYield:
    def test_k_yield_parameter_flows_through(self):
        result = check(dining_philosophers(2), k_yield=2, depth_bound=400,
                       max_executions=20_000)
        assert result.ok
        baseline = check(dining_philosophers(2), depth_bound=400)
        # Weaker pruning with k=2: at least as many executions.
        assert result.exploration.executions >= \
            baseline.exploration.executions
