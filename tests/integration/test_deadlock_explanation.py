"""Deadlock post-mortem: the wait-for report."""

from repro.checker import Checker
from repro.runtime.program import VMProgram
from repro.sync.mutex import Mutex


def ab_ba_program():
    def setup(env):
        a, b = Mutex(name="A"), Mutex(name="B")

        def left():
            yield from a.acquire()
            yield from b.acquire()
            yield from b.release()
            yield from a.release()

        def right():
            yield from b.acquire()
            yield from a.acquire()
            yield from a.release()
            yield from b.release()

        env.spawn(left, name="left")
        env.spawn(right, name="right")

    return VMProgram(setup, name="ab-ba")


class TestExplanation:
    def test_wait_for_set_names_both_locks(self):
        checker = Checker(ab_ba_program(), depth_bound=100)
        result = checker.run()
        assert not result.ok
        record = result.violation  # deadlock record
        assert record is not None and record.violation is None
        explanation = checker.explain_deadlock(record)
        assert "left blocked on acquire(B)" in explanation
        assert "right blocked on acquire(A)" in explanation

    def test_non_deadlocked_schedule_reports_none(self):
        checker = Checker(ab_ba_program(), depth_bound=100)
        # Run-to-completion schedule: no deadlock.
        from repro.engine.executor import ExecutorConfig, GuidedChooser, run_execution
        from repro.core.policies import FairPolicy

        record = run_execution(ab_ba_program(), FairPolicy(),
                               GuidedChooser([0] * 20),
                               ExecutorConfig(depth_bound=100))
        explanation = checker.explain_deadlock(record)
        assert "did not deadlock" in explanation
