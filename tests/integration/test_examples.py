"""Smoke tests for the example scripts (the fast ones, in-process)."""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> None:
    sys.path.insert(0, str(EXAMPLES_DIR))
    try:
        module = importlib.import_module(name)
        module.main()
    finally:
        sys.path.remove(str(EXAMPLES_DIR))
        sys.modules.pop(name, None)


@pytest.mark.parametrize("name", [
    "quickstart",
    "dining_philosophers",
    "promise_livelock",
    "good_samaritan_worker_pool",
])
def test_example_runs(name, capsys):
    run_example(name)
    out = capsys.readouterr().out
    assert out.strip()
