"""Command-line interface tests (driven in-process via cli.main)."""

import pytest

from repro.cli import main


class TestDemos:
    def test_demos_lists_names(self, capsys):
        assert main(["demos"]) == 0
        out = capsys.readouterr().out
        assert "dining-livelock" in out
        assert "singularity" in out

    def test_demo_pass(self, capsys):
        code = main(["demo", "spinloop", "--depth-bound", "200"])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_demo_fail(self, capsys):
        code = main(["demo", "dining-livelock", "--depth-bound", "300"])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "livelock" in out

    def test_unknown_demo(self, capsys):
        assert main(["demo", "nonsense"]) == 2


class TestCheck:
    def test_check_by_spec_with_args(self, capsys):
        code = main([
            "check", "repro.workloads.dining:dining_philosophers",
            "-a", "2", "--depth-bound", "300",
        ])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_check_failing_program(self, capsys):
        code = main([
            "check",
            "repro.workloads.dining:dining_philosophers_livelock",
            "-a", "2", "--depth-bound", "300",
        ])
        assert code == 1

    def test_no_fairness_flag(self, capsys):
        code = main([
            "check", "repro.workloads.spinloop:spinloop",
            "--no-fairness", "--depth-bound", "25",
            "--max-executions", "500",
        ])
        assert code == 0
        assert "nonfair" in capsys.readouterr().out

    def test_bad_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(["check", "no-colon-here"])
        with pytest.raises(SystemExit):
            main(["check", "nonexistent.module:factory"])
        with pytest.raises(SystemExit):
            main(["check", "repro.workloads.dining:_HUNGRY"])


class TestReproRoundTrip:
    def test_save_and_replay(self, tmp_path, capsys):
        repro_file = str(tmp_path / "bug.json")
        code = main([
            "check", "repro.workloads.wsq:work_stealing_queue",
            "-a", "1", "--preemption-bound", "1", "--depth-bound", "300",
            "--save-repro", repro_file,
        ])
        # The correct queue passes; no repro file written.
        assert code == 0

        code = main([
            "demo", "wsq-bug1", "--depth-bound", "300",
            "--save-repro", repro_file,
        ])
        assert code == 1
        assert "repro file written" in capsys.readouterr().out

        # Replay it through the CLI against the same factory parameters
        # (items=1, stealers=1, bug=1): the violation reproduces.
        code = main([
            "replay", repro_file,
            "repro.workloads.wsq:work_stealing_queue",
            "-a", "1", "-a", "1", "-a", "1",
            "--preemption-bound", "2", "--depth-bound", "300",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "violation" in out

    def test_replay_against_wrong_program_rejected(self, tmp_path):
        repro_file = str(tmp_path / "bug.json")
        code = main([
            "demo", "wsq-bug1", "--depth-bound", "300",
            "--save-repro", repro_file,
        ])
        assert code == 1
        import pytest as _pytest

        with _pytest.raises(ValueError):
            main([
                "replay", repro_file,
                "repro.workloads.spinloop:spinloop",
            ])
