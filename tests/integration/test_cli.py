"""Command-line interface tests (driven in-process via cli.main)."""

import pytest

from repro.cli import main


class TestDemos:
    def test_demos_lists_names(self, capsys):
        assert main(["demos"]) == 0
        out = capsys.readouterr().out
        assert "dining-livelock" in out
        assert "singularity" in out

    def test_demo_pass(self, capsys):
        code = main(["demo", "spinloop", "--depth-bound", "200"])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_demo_fail(self, capsys):
        code = main(["demo", "dining-livelock", "--depth-bound", "300"])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "livelock" in out

    def test_unknown_demo(self, capsys):
        assert main(["demo", "nonsense"]) == 2


class TestCheck:
    def test_check_by_spec_with_args(self, capsys):
        code = main([
            "check", "repro.workloads.dining:dining_philosophers",
            "-a", "2", "--depth-bound", "300",
        ])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_check_failing_program(self, capsys):
        code = main([
            "check",
            "repro.workloads.dining:dining_philosophers_livelock",
            "-a", "2", "--depth-bound", "300",
        ])
        assert code == 1

    def test_no_fairness_flag(self, capsys):
        code = main([
            "check", "repro.workloads.spinloop:spinloop",
            "--no-fairness", "--depth-bound", "25",
            "--max-executions", "500",
        ])
        assert code == 0
        assert "nonfair" in capsys.readouterr().out

    def test_bad_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(["check", "no-colon-here"])
        with pytest.raises(SystemExit):
            main(["check", "nonexistent.module:factory"])
        with pytest.raises(SystemExit):
            main(["check", "repro.workloads.dining:_HUNGRY"])


class TestReproRoundTrip:
    def test_save_and_replay(self, tmp_path, capsys):
        repro_file = str(tmp_path / "bug.json")
        code = main([
            "check", "repro.workloads.wsq:work_stealing_queue",
            "-a", "1", "--preemption-bound", "1", "--depth-bound", "300",
            "--save-repro", repro_file,
        ])
        # The correct queue passes; no repro file written.
        assert code == 0

        code = main([
            "demo", "wsq-bug1", "--depth-bound", "300",
            "--save-repro", repro_file,
        ])
        assert code == 1
        assert "repro file written" in capsys.readouterr().out

        # Replay it through the CLI against the same factory parameters
        # (items=1, stealers=1, bug=1): the violation reproduces.
        code = main([
            "replay", repro_file,
            "repro.workloads.wsq:work_stealing_queue",
            "-a", "1", "-a", "1", "-a", "1",
            "--preemption-bound", "2", "--depth-bound", "300",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "violation" in out

    def test_replay_against_wrong_program_rejected(self, tmp_path):
        repro_file = str(tmp_path / "bug.json")
        code = main([
            "demo", "wsq-bug1", "--depth-bound", "300",
            "--save-repro", repro_file,
        ])
        assert code == 1
        import pytest as _pytest

        with _pytest.raises(ValueError):
            main([
                "replay", repro_file,
                "repro.workloads.spinloop:spinloop",
            ])


class TestTelemetryFlags:
    DINING = ["check", "repro.workloads.dining:dining_philosophers",
              "-a", "2", "--depth-bound", "300"]

    def test_stats_prints_phases_and_metrics(self, capsys):
        assert main(self.DINING + ["--stats"]) == 0
        out = capsys.readouterr().out
        assert "phase timings" in out
        for phase in ("policy", "schedule", "execute"):
            assert phase in out
        assert "executions" in out

    def test_metrics_json_export(self, tmp_path, capsys):
        import json

        path = str(tmp_path / "metrics.json")
        assert main(self.DINING + ["--metrics-json", path]) == 0
        assert "metrics written to" in capsys.readouterr().out
        data = json.loads(open(path).read())
        assert data["counters"]["executions"] >= 1
        assert data["counters"]["transitions"] >= 1
        assert "policy" in data["phases"]
        # The acceptance bar: at least 8 distinct metrics exported.
        names = (list(data["counters"]) + list(data["gauges"])
                 + list(data["histograms"]))
        assert len(names) >= 8

    def test_trace_out_recovers_the_schedule(self, tmp_path, capsys):
        from repro.obs import read_jsonl, schedule_from_events

        path = str(tmp_path / "trace.jsonl")
        code = main([
            "check",
            "repro.workloads.wsq:work_stealing_queue",
            "-a", "1", "-a", "1", "-a", "1",
            "--preemption-bound", "2", "--depth-bound", "300",
            "--trace-out", path,
        ])
        assert code == 1
        assert "event trace written" in capsys.readouterr().out
        events = list(read_jsonl(path))
        # The decision events of the failing execution form a replayable
        # guide (replay itself is covered in tests/obs/test_observer.py).
        guide = schedule_from_events(events)
        assert guide

    def test_progress_writes_to_stderr(self, capsys):
        assert main(self.DINING + ["--progress",
                                   "--progress-interval", "0"]) == 0
        err = capsys.readouterr().err
        assert "[progress]" in err
        assert "exec/s=" in err

    def test_no_flags_no_observer(self, capsys):
        assert main(self.DINING) == 0
        out = capsys.readouterr().out
        assert "phase timings" not in out
        assert "metrics written" not in out
