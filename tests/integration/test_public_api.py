"""Public API surface: everything the README/docs promise is importable
and minimally functional."""

import importlib

import pytest


class TestTopLevelExports:
    def test_all_names_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__

    def test_subpackage_all_names_resolve(self):
        for module_name in ("repro.core", "repro.engine", "repro.sync",
                            "repro.runtime", "repro.statespace",
                            "repro.engine.strategies"):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module_name}.{name}"


class TestReadmeQuickstart:
    def test_quickstart_snippet_works(self):
        from repro import Checker, VMProgram, sync

        def make_program():
            def setup(env):
                x = sync.SharedVar(0, name="x")

                def writer():
                    yield from x.set(1)

                def spinner():
                    while (yield from x.get()) != 1:
                        yield from sync.yield_now()

                env.spawn(writer, name="t")
                env.spawn(spinner, name="u")

            return VMProgram(setup, name="spinloop")

        result = Checker(make_program()).run()
        assert result.ok
        assert "PASS" in result.report()

    def test_check_convenience(self):
        from repro import check
        from repro.workloads.spinloop import spinloop

        assert check(spinloop()).ok


class TestWorkloadRegistry:
    def test_every_workload_module_builds_a_program(self):
        from repro.core.model import Program

        factories = [
            ("repro.workloads.spinloop", "spinloop", ()),
            ("repro.workloads.dining", "dining_philosophers", (2,)),
            ("repro.workloads.wsq", "work_stealing_queue", ()),
            ("repro.workloads.promise", "promise_program", ()),
            ("repro.workloads.workerpool", "worker_pool", ()),
            ("repro.workloads.dryad_channels", "dryad_pipeline", ()),
            ("repro.workloads.ape", "ape_program", ()),
            ("repro.workloads.singularity", "singularity_boot", ()),
            ("repro.workloads.lockfree", "treiber_stack_program", ()),
            ("repro.workloads.boundedbuffer", "bounded_buffer_program", ()),
            ("repro.workloads.coherence", "coherence_program", ()),
        ]
        for module_name, factory_name, args in factories:
            module = importlib.import_module(module_name)
            program = getattr(module, factory_name)(*args)
            assert isinstance(program, Program), factory_name
            instance = program.instantiate()
            assert instance.thread_ids()
            closer = getattr(instance, "close", None)
            if closer:
                closer()

    def test_cli_demos_all_build(self):
        from repro.cli import _demos
        from repro.core.model import Program

        for name, factory in _demos().items():
            program = factory()
            assert isinstance(program, Program), name
