"""Differential suite: snapshot cache on == snapshot cache off.

The prefix-snapshot cache is a pure performance optimization — for every
strategy and every snapshot interval, a cached search must report exactly
the totals, decisions, verdicts and coverage of an uncached one.  These
tests run the same checker configuration twice (cache off, cache on) and
compare everything observable.
"""

import pytest

from repro.chaos.faults import FaultPlan, FaultRule, fault_plan
from repro.checker import Checker
from repro.obs import Observer
from repro.runtime.native import NativeMutex, NativeProgram, NativeSharedVar
from repro.workloads.boundedbuffer import bounded_buffer_program
from repro.workloads.dining import dining_philosophers
from repro.workloads.wsq import work_stealing_queue

STRATEGIES = ["dfs", "bfs", "por", "icb", "random"]
INTERVALS = [1, 4, 16]


def native_counter_program():
    """A small native-thread workload (two locked increments + a reader)."""
    def setup(env):
        lock = NativeMutex(name="L")
        counter = NativeSharedVar(0, name="n")

        def worker():
            lock.acquire()
            value = counter.get()
            counter.set(value + 1)
            lock.release()

        for i in range(2):
            env.spawn(worker, name=f"w{i}")

        def reader():
            counter.get()

        env.spawn(reader, name="r")
        env.set_state_fn(lambda: (counter.peek(), lock.owner_name()))

    return NativeProgram(setup, name="native-counter-diff")


def _run(program_factory, *, snapshot_cache, snapshot_interval=16,
         strategy="dfs", coverage=False, **kwargs):
    observer = Observer()
    checker = Checker(
        program_factory(),
        strategy=strategy,
        observer=observer,
        collect_coverage=coverage,
        snapshot_cache=snapshot_cache,
        snapshot_interval=snapshot_interval,
        stop_on_first_violation=False,
        stop_on_first_divergence=False,
        **kwargs,
    )
    result = checker.run()
    metrics = observer.metrics
    fingerprint = {
        "ok": result.ok,
        "executions": result.exploration.executions,
        "transitions": result.exploration.transitions,
        "violations": sorted(
            v.schedule for v in result.exploration.violations),
        "deadlocks": sorted(
            d.schedule for d in result.exploration.deadlocks),
        "divergences": len(result.exploration.divergences),
        "states.new": metrics.counter("states.new").value,
        "states.revisited": metrics.counter("states.revisited").value,
    }
    return fingerprint, metrics


class TestStrategyIntervalMatrix:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("interval", INTERVALS)
    def test_identical_results(self, strategy, interval):
        kwargs = dict(depth_bound=120, max_executions=120)
        if strategy == "random":
            kwargs["random_executions"] = 30
        baseline, _ = _run(
            lambda: dining_philosophers(2), strategy=strategy,
            snapshot_cache=False, snapshot_interval=interval, **kwargs)
        cached, metrics = _run(
            lambda: dining_philosophers(2), strategy=strategy,
            snapshot_cache=True, snapshot_interval=interval, **kwargs)
        assert cached == baseline
        if strategy != "random" and interval == 1:
            # Guided strategies must actually use the cache.  (At larger
            # intervals short reduced executions may never reach a
            # capture point, which is fine — full replay is the
            # documented fallback.)
            assert metrics.counter("snapshot.hits").value > 0


class TestWorkloadDifferentials:
    """The two measured workloads, with coverage tracking on, so state
    totals are part of the comparison."""

    @pytest.mark.parametrize("interval", [4])
    def test_bounded_buffer(self, interval):
        kwargs = dict(depth_bound=200, preemption_bound=2,
                      max_executions=250, coverage=True)
        baseline, _ = _run(
            lambda: bounded_buffer_program(items=2, consumers=2),
            snapshot_cache=False, snapshot_interval=interval, **kwargs)
        cached, metrics = _run(
            lambda: bounded_buffer_program(items=2, consumers=2),
            snapshot_cache=True, snapshot_interval=interval, **kwargs)
        assert cached == baseline
        assert metrics.counter("snapshot.hits").value > 0
        restored = metrics.counter("executions.restored_steps").value
        replayed = metrics.counter("executions.replayed_steps").value
        assert restored > replayed  # the cache carries most of the prefix

    @pytest.mark.parametrize("interval", [4])
    def test_work_stealing_queue_with_bug(self, interval):
        kwargs = dict(depth_bound=200, preemption_bound=2,
                      max_executions=250, coverage=True, fairness=False)
        baseline, _ = _run(
            lambda: work_stealing_queue(items=1, stealers=1, bug=1),
            snapshot_cache=False, snapshot_interval=interval, **kwargs)
        cached, metrics = _run(
            lambda: work_stealing_queue(items=1, stealers=1, bug=1),
            snapshot_cache=True, snapshot_interval=interval, **kwargs)
        assert cached == baseline
        assert metrics.counter("snapshot.hits").value > 0


class TestNativeRuntimeDifferentials:
    """The native runtime now advertises ``supports_snapshot`` (restore
    drives fresh OS threads through the recorded decision log), so the
    bit-for-bit guarantee must hold there too — across the same
    strategy × interval matrix as the VM."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("interval", INTERVALS)
    def test_identical_results(self, strategy, interval):
        kwargs = dict(depth_bound=120, max_executions=80)
        if strategy == "random":
            kwargs["random_executions"] = 20
        baseline, _ = _run(
            native_counter_program, strategy=strategy,
            snapshot_cache=False, snapshot_interval=interval, **kwargs)
        cached, metrics = _run(
            native_counter_program, strategy=strategy,
            snapshot_cache=True, snapshot_interval=interval, **kwargs)
        assert cached == baseline
        if strategy != "random" and interval == 1:
            assert metrics.counter("snapshot.hits").value > 0

    def test_native_coverage_totals_match(self):
        kwargs = dict(depth_bound=120, max_executions=80, coverage=True)
        baseline, _ = _run(native_counter_program, snapshot_cache=False,
                           snapshot_interval=4, **kwargs)
        cached, metrics = _run(native_counter_program, snapshot_cache=True,
                               snapshot_interval=4, **kwargs)
        assert cached == baseline
        assert metrics.counter("snapshot.hits").value > 0
        restored = metrics.counter("executions.restored_steps").value
        replayed = metrics.counter("executions.replayed_steps").value
        assert restored > replayed  # the cache carries most of the prefix


class TestRestoreCrashFallback:
    """Chaos plane at the ``snapshot.restore`` fault point: an injected
    restore failure must clear the cache and transparently fall back to
    a full replay, leaving the results bit-for-bit unchanged."""

    @pytest.mark.parametrize("make_program,label", [
        (lambda: dining_philosophers(2), "vm"),
        (native_counter_program, "native"),
    ])
    def test_injected_restore_fault_falls_back(self, make_program, label):
        kwargs = dict(depth_bound=120, max_executions=80)
        baseline, _ = _run(make_program, snapshot_cache=False,
                           snapshot_interval=1, **kwargs)
        # Every restore attempt faults: the cache is cleared on the
        # first hit, repopulates, and faults again on the next lookup.
        plan = FaultPlan(rules=[FaultRule(point="snapshot.restore",
                                          kind="eio", at=1, times=10 ** 9)],
                         name="restore-eio")
        with fault_plan(plan) as injector:
            faulted, metrics = _run(make_program, snapshot_cache=True,
                                    snapshot_interval=1, **kwargs)
        assert faulted == baseline
        assert any(f.point == "snapshot.restore" for f in injector.fired)
        # Nothing was ever restored: every hit fell back to full replay.
        assert metrics.counter("executions.restored_steps").value == 0

    def test_single_restore_fault_recovers(self):
        kwargs = dict(depth_bound=120, max_executions=80)
        baseline, _ = _run(native_counter_program, snapshot_cache=False,
                           snapshot_interval=1, **kwargs)
        plan = FaultPlan(rules=[FaultRule(point="snapshot.restore",
                                          kind="eio", at=1, times=1)],
                         name="restore-eio-once")
        with fault_plan(plan):
            faulted, metrics = _run(native_counter_program,
                                    snapshot_cache=True,
                                    snapshot_interval=1, **kwargs)
        assert faulted == baseline
        # After the one fault the repopulated cache serves hits again.
        assert metrics.counter("executions.restored_steps").value > 0
